//! Cross-crate input-modality test: a generated workload, saved as
//! monitored data and replayed through the trace-driven engine, drives a
//! model to exactly the same state as the in-memory trace — the
//! generator/monitored-data round trip of the taxonomy's input axis.

use lsds::core::{Ctx, Model, SimTime, TraceDriven};
use lsds::stats::{Dist, SimRng};
use lsds::trace::{read_trace, write_trace, MonitorRecord, Trace, WorkloadGenerator};

/// Toy consumer: accumulates per-metric totals.
#[derive(Default)]
struct Accumulator {
    events: u64,
    total_value: f64,
    last_time: f64,
}

impl Model for Accumulator {
    type Event = MonitorRecord;
    fn handle(&mut self, rec: MonitorRecord, ctx: &mut Ctx<'_, MonitorRecord>) {
        assert!(
            ctx.now() == SimTime::new(rec.time),
            "delivered at record time"
        );
        assert!(rec.time >= self.last_time);
        self.last_time = rec.time;
        self.events += 1;
        self.total_value += rec.value;
    }
}

fn replay(trace: Trace) -> (u64, f64) {
    let mut sim = TraceDriven::new(Accumulator::default(), trace.into_source());
    sim.run();
    let m = sim.model();
    (m.events, m.total_value)
}

#[test]
fn generated_trace_replays_identically_after_disk_roundtrip() {
    let mut generator = WorkloadGenerator::new(
        vec!["T0".into(), "T1-0".into(), "T1-1".into()],
        "job_arrival",
        0.8,
        Dist::exp_mean(50.0),
        SimRng::new(33),
    );
    let trace = generator.generate(500.0);
    let expected_len = trace.len();
    assert!(expected_len > 400, "workload is non-trivial");

    // in-memory replay
    let direct = replay(trace.clone());

    // disk round trip (JSON lines), then replay
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let loaded = read_trace(buf.as_slice()).unwrap();
    assert_eq!(trace, loaded);
    let replayed = replay(loaded);

    assert_eq!(direct, replayed);
    assert_eq!(direct.0, expected_len as u64);
}

#[test]
fn trace_driven_engine_counts_replayed_records() {
    let trace = Trace::from_records(vec![
        MonitorRecord::new(1.0, "a", "m", 1.0),
        MonitorRecord::new(2.0, "a", "m", 2.0),
        MonitorRecord::new(3.0, "a", "m", 3.0),
    ]);
    let mut sim = TraceDriven::new(Accumulator::default(), trace.into_source());
    let stats = sim.run();
    assert_eq!(stats.events, 3);
    assert_eq!(sim.replayed(), 3);
    assert_eq!(sim.model().total_value, 6.0);
}
