//! Monitored data driving the full grid — the taxonomy's input-data axis
//! at system level: a job-arrival trace (as a monitoring system would
//! record it) is replayed into `GridModel` via `GridEvent::Submit`, so
//! the same grid runs from generators *or* from collected data, like
//! MONARC 2 with its MonALISA feeds.

use lsds::core::SimTime;
use lsds::grid::job::JobSpec;
use lsds::grid::model::{GridConfig, GridEvent, GridModel};
use lsds::grid::organization::{flat_grid, SiteSpec};
use lsds::grid::scheduler::LeastLoaded;
use lsds::grid::{JobId, ReplicationPolicy};
use lsds::stats::{Dist, SimRng};
use lsds::trace::{read_trace, write_trace, MonitorRecord, Trace, WorkloadGenerator};

fn empty_grid_config(seed: u64) -> GridConfig {
    GridConfig {
        grid: flat_grid(vec![SiteSpec::default(); 3], lsds::net::mbps(622.0), 0.005),
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::None,
        activities: vec![], // no generators: the trace is the only source
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed,
    }
}

/// Converts a `job_arrival` monitoring record into a job spec: the
/// record's value is the job's CPU work.
fn job_from(idx: usize, rec: &MonitorRecord) -> JobSpec {
    JobSpec {
        id: JobId(1_000_000 + idx as u64),
        owner: 0,
        work: rec.value.max(1e-6),
        inputs: vec![],
        output_bytes: 0.0,
        submitted: SimTime::new(rec.time), // restamped at delivery
        deadline: None,
        budget: None,
    }
}

fn run_from_trace(trace: &Trace) -> Vec<(u64, u64)> {
    let mut sim = GridModel::build(empty_grid_config(1));
    for (i, rec) in trace.records().iter().enumerate() {
        sim.schedule(SimTime::new(rec.time), GridEvent::Submit(job_from(i, rec)));
    }
    sim.run_until(SimTime::new(1.0e7));
    sim.model()
        .report()
        .records
        .iter()
        .map(|r| (r.id.0, r.finished.seconds().to_bits()))
        .collect()
}

#[test]
fn monitored_job_trace_drives_the_grid() {
    // 1. a workload generator produces the trace (and could equally have
    //    come from a real monitoring feed)
    let mut generator = WorkloadGenerator::new(
        vec!["site0".into(), "site1".into(), "site2".into()],
        "job_arrival",
        12.0,
        Dist::exp_mean(45.0), // value = CPU work
        SimRng::new(99),
    );
    let trace = generator.generate(2_000.0);
    assert!(trace.len() > 100, "non-trivial workload: {}", trace.len());

    // 2. persist and reload it, as a monitoring pipeline would
    let mut buf = Vec::new();
    write_trace(&trace, &mut buf).unwrap();
    let loaded = read_trace(buf.as_slice()).unwrap();

    // 3. the replayed trace drives the grid deterministically
    let a = run_from_trace(&loaded);
    let b = run_from_trace(&loaded);
    assert_eq!(a.len(), trace.len(), "every recorded arrival executed");
    assert_eq!(a, b, "replay is reproducible");
}

#[test]
fn injected_jobs_are_stamped_at_delivery_time() {
    let mut sim = GridModel::build(empty_grid_config(2));
    let rec = MonitorRecord::new(123.0, "site0", "job_arrival", 10.0);
    sim.schedule(SimTime::new(123.0), GridEvent::Submit(job_from(0, &rec)));
    sim.run_until(SimTime::new(1.0e6));
    let records = sim.model().report().records;
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].submitted, SimTime::new(123.0));
    // one job on one space-shared core at speed 1.0
    assert!((records[0].exec_time() - 10.0).abs() < 1e-9);
}
