//! Cross-crate invariant of the tracing layer (`lsds::obs::prof`): a
//! tracer only *observes*. Enabling causal tracing on any engine — the
//! four centralized engines and both conservative parallel engines — must
//! leave event order, final model state, and exported metric values
//! bit-identical to the untraced run, across seeds (the property the
//! `NoopTracer`/`RingTracer` split is designed to guarantee).

use lsds::core::engine::HybridModel;
use lsds::core::{Ctx, EventDriven, Hybrid, Model, SimTime, TimeDriven, TraceDriven};
use lsds::obs::{MetricsRecorder, RingTracer, SpanKind, TraceConfig};
use lsds::parallel::cmb::InitialEvents;
use lsds::parallel::{
    run_cmb, run_cmb_traced, run_timestep, run_timestep_traced, LogicalProcess, LpCtx,
};
use lsds::stats::SimRng;
use lsds::trace::snapshot_to_json_string;

const SEEDS: [u64; 5] = [1, 7, 42, 1234, 0xDEAD];

/// A branching cascade: each event spawns 0–2 children at random offsets,
/// and the model fingerprints every delivery `(time bits, payload)`.
struct Cascade {
    rng: SimRng,
    fingerprint: Vec<(u64, u64)>,
    budget: u64,
}

impl Cascade {
    fn new(seed: u64) -> Self {
        Cascade {
            rng: SimRng::new(seed),
            fingerprint: Vec::new(),
            budget: 2000,
        }
    }
}

impl Model for Cascade {
    type Event = u64;

    fn trace_kind(&self, ev: &u64) -> SpanKind {
        if ev.is_multiple_of(2) {
            SpanKind::tagged("cascade.even", *ev)
        } else {
            SpanKind::tagged("cascade.odd", *ev)
        }
    }

    fn trace_track(&self, ev: &u64) -> u32 {
        (*ev % 4) as u32
    }

    fn handle(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
        self.fingerprint.push((ctx.now().seconds().to_bits(), ev));
        if self.budget == 0 {
            return;
        }
        let children = self.rng.range_u64(0, 3);
        for c in 0..children {
            self.budget = self.budget.saturating_sub(1);
            let dt = self.rng.range_f64(0.1, 5.0);
            ctx.schedule_in(dt, ev.wrapping_mul(31).wrapping_add(c));
        }
    }
}

/// Runs `sim` body under both tracer variants and returns
/// `(fingerprint, metrics JSON, trace length)` — the traced side.
fn event_driven_run(seed: u64, traced: bool) -> (Vec<(u64, u64)>, String, usize) {
    let sim = EventDriven::with_recorder(Cascade::new(seed), MetricsRecorder::new());
    if traced {
        let mut sim = sim.with_tracer(RingTracer::new(TraceConfig::default()));
        for k in 0..4 {
            sim.schedule(SimTime::new(k as f64), k);
        }
        sim.run_until(SimTime::new(500.0));
        let metrics = snapshot_to_json_string(&sim.recorder().registry().snapshot(500.0));
        let (model, tracer) = sim.into_model_and_tracer();
        (model.fingerprint, metrics, tracer.finish().len())
    } else {
        let mut sim = sim;
        for k in 0..4 {
            sim.schedule(SimTime::new(k as f64), k);
        }
        sim.run_until(SimTime::new(500.0));
        let metrics = snapshot_to_json_string(&sim.recorder().registry().snapshot(500.0));
        (sim.into_model().fingerprint, metrics, 0)
    }
}

#[test]
fn event_driven_traced_is_bit_identical() {
    for seed in SEEDS {
        let (plain, plain_metrics, _) = event_driven_run(seed, false);
        let (traced, traced_metrics, spans) = event_driven_run(seed, true);
        assert_eq!(plain, traced, "seed {seed}: event order/state diverged");
        assert_eq!(
            plain_metrics, traced_metrics,
            "seed {seed}: metrics diverged"
        );
        assert_eq!(spans, plain.len(), "seed {seed}: one span per event");
    }
}

#[test]
fn time_driven_traced_is_bit_identical() {
    for seed in SEEDS {
        let run = |traced: bool| {
            let sim = TimeDriven::new(Cascade::new(seed), 0.5);
            if traced {
                let mut sim = sim.with_tracer(RingTracer::new(TraceConfig::default()));
                sim.schedule(SimTime::ZERO, 1);
                sim.run_until(SimTime::new(300.0));
                let len = sim.tracer().len();
                (sim.into_model().fingerprint, len)
            } else {
                let mut sim = sim;
                sim.schedule(SimTime::ZERO, 1);
                sim.run_until(SimTime::new(300.0));
                (sim.into_model().fingerprint, 0)
            }
        };
        let (plain, _) = run(false);
        let (traced, spans) = run(true);
        assert_eq!(plain, traced, "seed {seed}: trajectories diverged");
        assert_eq!(spans, plain.len(), "seed {seed}: one span per event");
    }
}

/// Trace-driven replay that also schedules internal follow-ups, so the
/// identity check covers the mixed replayed/internal event stream.
struct Replayer {
    fingerprint: Vec<(u64, u64)>,
}

impl Model for Replayer {
    type Event = u64;

    fn trace_kind(&self, _ev: &u64) -> SpanKind {
        SpanKind::new("replay")
    }

    fn handle(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
        self.fingerprint.push((ctx.now().seconds().to_bits(), ev));
        if ev.is_multiple_of(3) && ev < 1000 {
            ctx.schedule_in(0.25, ev + 1000);
        }
    }
}

#[test]
fn trace_driven_traced_is_bit_identical() {
    let records: Vec<(SimTime, u64)> = (0..200)
        .map(|i| (SimTime::new(i as f64 * 0.7), i))
        .collect();
    let run = |traced: bool| {
        let sim = TraceDriven::new(
            Replayer {
                fingerprint: Vec::new(),
            },
            records.clone().into_iter(),
        );
        if traced {
            let mut sim = sim.with_tracer(RingTracer::new(TraceConfig::default()));
            sim.run();
            let len = sim.tracer().len();
            (sim.into_model().fingerprint, len)
        } else {
            let mut sim = sim;
            sim.run();
            (sim.into_model().fingerprint, 0)
        }
    };
    let (plain, _) = run(false);
    let (traced, spans) = run(true);
    assert_eq!(plain, traced, "replayed+internal stream diverged");
    assert_eq!(spans, plain.len());
}

/// Hybrid: exponential decay doubled by discrete events; fingerprints the
/// continuous state at each event.
struct Decay {
    log: Vec<(u64, u64)>,
}

impl HybridModel for Decay {
    type Event = u32;

    fn trace_kind(&self, _ev: &u32) -> SpanKind {
        SpanKind::new("decay.double")
    }

    fn derivatives(&self, _t: SimTime, y: &[f64], dydt: &mut [f64]) {
        dydt[0] = -0.3 * y[0];
    }

    fn handle(&mut self, ev: u32, y: &mut [f64], ctx: &mut Ctx<'_, u32>) {
        y[0] *= 1.5;
        self.log
            .push((ctx.now().seconds().to_bits(), y[0].to_bits()));
        if ev < 20 {
            ctx.schedule_in(1.3, ev + 1);
        }
    }
}

#[test]
fn hybrid_traced_is_bit_identical() {
    let run = |traced: bool| {
        let sim = Hybrid::new(Decay { log: Vec::new() }, vec![1.0], 0.1);
        if traced {
            let mut sim = sim.with_tracer(RingTracer::new(TraceConfig::default()));
            sim.schedule(SimTime::new(0.5), 0);
            sim.run_until(SimTime::new(40.0));
            let state = sim.state().to_vec();
            let len = sim.tracer().len();
            (sim.into_parts().0.log, state, len)
        } else {
            let mut sim = sim;
            sim.schedule(SimTime::new(0.5), 0);
            sim.run_until(SimTime::new(40.0));
            let state = sim.state().to_vec();
            (sim.into_parts().0.log, state, 0)
        }
    };
    let (plain_log, plain_y, _) = run(false);
    let (traced_log, traced_y, spans) = run(true);
    assert_eq!(plain_log, traced_log, "event/state log diverged");
    assert_eq!(plain_y, traced_y, "final continuous state diverged");
    assert_eq!(spans, plain_log.len());
}

/// Ring of LPs passing a token, for both parallel engines.
struct Ring {
    n: usize,
    seen: Vec<(u64, u64)>,
    delay: f64,
}

impl LogicalProcess for Ring {
    type Msg = u64;

    fn trace_kind(&self, _msg: &u64) -> SpanKind {
        SpanKind::new("ring.hop")
    }

    fn handle(&mut self, now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
        self.seen.push((now.seconds().to_bits(), hop));
        ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
    }

    fn lookahead(&self) -> f64 {
        self.delay
    }
}

impl InitialEvents for Ring {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

fn ring_lps(n: usize, delay: f64) -> Vec<Ring> {
    (0..n)
        .map(|_| Ring {
            n,
            seen: Vec::new(),
            delay,
        })
        .collect()
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

#[test]
fn cmb_traced_is_bit_identical() {
    let n = 4;
    let plain = run_cmb(ring_lps(n, 0.7), &ring_edges(n), SimTime::new(80.0));
    let (traced, trace) = run_cmb_traced(
        ring_lps(n, 0.7),
        &ring_edges(n),
        SimTime::new(80.0),
        TraceConfig::default(),
    );
    for i in 0..n {
        assert_eq!(plain.lps[i].seen, traced.lps[i].seen, "LP {i} diverged");
    }
    // `blocks` and `nulls_sent` are scheduler-dependent: nulls go out
    // only when an LP blocks, and a drain that picks up two arrivals at
    // once skips the intermediate bound — so under host load two runs
    // can legitimately differ by a few nulls. The deterministic fields
    // (events processed, model-driven messages sent) must match exactly.
    for (p, t) in plain.stats.iter().zip(&traced.stats) {
        assert_eq!(p.events, t.events, "event counts diverged");
        assert_eq!(p.remote_sent, t.remote_sent, "remote-send counts diverged");
    }
    assert_eq!(trace.len() as u64, traced.total_events());
    // merged deterministically: non-decreasing (vt, id)
    assert!(trace
        .spans
        .windows(2)
        .all(|w| (w[0].vt, w[0].id) <= (w[1].vt, w[1].id)));
}

#[test]
fn timestep_traced_is_bit_identical() {
    let n = 4;
    let plain = run_timestep(ring_lps(n, 1.0), 1.0, SimTime::new(80.0));
    let (traced, trace) = run_timestep_traced(
        ring_lps(n, 1.0),
        1.0,
        SimTime::new(80.0),
        TraceConfig::default(),
    );
    for i in 0..n {
        assert_eq!(plain.lps[i].seen, traced.lps[i].seen, "LP {i} diverged");
    }
    assert_eq!(plain.events, traced.events);
    assert_eq!(trace.len() as u64, traced.total_events());
    assert!(trace
        .spans
        .windows(2)
        .all(|w| (w[0].vt, w[0].id) <= (w[1].vt, w[1].id)));
}

#[test]
fn ring_buffer_overflow_evicts_oldest_without_touching_results() {
    let (plain, _, _) = event_driven_run(3, false);
    // capacity far below the event count: eviction must kick in
    let sim = EventDriven::new(Cascade::new(3))
        .with_tracer(RingTracer::new(TraceConfig::with_capacity(16)));
    let mut sim = sim;
    for k in 0..4 {
        sim.schedule(SimTime::new(k as f64), k);
    }
    sim.run_until(SimTime::new(500.0));
    let (model, tracer) = sim.into_model_and_tracer();
    assert_eq!(plain, model.fingerprint, "eviction changed the trajectory");
    assert!(plain.len() > 16);
    let dropped = tracer.dropped();
    let trace = tracer.finish();
    assert_eq!(trace.len(), 16, "ring keeps exactly its capacity");
    assert_eq!(dropped as usize, plain.len() - 16);
    // the survivors are the newest spans: the capped ring's contents equal
    // the tail of a full-capacity trace of the same (deterministic) run
    let mut full =
        EventDriven::new(Cascade::new(3)).with_tracer(RingTracer::new(TraceConfig::default()));
    for k in 0..4 {
        full.schedule(SimTime::new(k as f64), k);
    }
    full.run_until(SimTime::new(500.0));
    let full_trace = full.into_tracer().finish();
    let tail: Vec<u64> = full_trace.spans[full_trace.len() - 16..]
        .iter()
        .map(|s| s.id)
        .collect();
    let kept: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
    assert_eq!(kept, tail, "ring must evict oldest-first");
}

#[test]
fn sampling_thins_spans_without_touching_results() {
    let (plain, _, _) = event_driven_run(9, false);
    let sim = EventDriven::new(Cascade::new(9))
        .with_tracer(RingTracer::new(TraceConfig::default().sampled(4)));
    let mut sim = sim;
    for k in 0..4 {
        sim.schedule(SimTime::new(k as f64), k);
    }
    sim.run_until(SimTime::new(500.0));
    let (model, tracer) = sim.into_model_and_tracer();
    assert_eq!(plain, model.fingerprint, "sampling changed the trajectory");
    let trace = tracer.finish();
    assert!(trace.len() < plain.len() / 2, "1-in-4 sampling must thin");
    assert!(trace.spans.iter().all(|s| s.id.is_multiple_of(4)));
}
