//! E14 — the taxonomy's behavior axis, end to end: "repeating the same
//! simulation will always return the same simulation results."
//!
//! Full-stack scenarios (grid + network + middleware + applications) are
//! run twice under the same seed and must agree bit for bit; a different
//! seed must produce different results (the probabilistic half of the
//! axis).

use lsds::grid::ReplicationPolicy;
use lsds::simulators::monarc::Monarc;
use lsds::simulators::optorsim::OptorSim;

fn optorsim_fingerprint(seed: u64) -> Vec<(u64, u64, u64)> {
    let rep = OptorSim {
        jobs: 60,
        strategy: ReplicationPolicy::PullLru,
        seed,
        ..OptorSim::default()
    }
    .run(1.0e6);
    rep.records
        .iter()
        .map(|r| (r.id.0, r.site.0 as u64, r.finished.seconds().to_bits()))
        .collect()
}

#[test]
fn optorsim_bit_for_bit_reproducible() {
    let a = optorsim_fingerprint(42);
    let b = optorsim_fingerprint(42);
    assert_eq!(a, b);
    assert_eq!(a.len(), 60);
}

#[test]
fn optorsim_seed_sensitivity() {
    assert_ne!(optorsim_fingerprint(1), optorsim_fingerprint(2));
}

fn monarc_fingerprint(seed: u64) -> (u64, u64, u64) {
    let rep = Monarc {
        datasets: 20,
        analysis_jobs: 10,
        uplink_gbps: 10.0,
        seed,
        ..Monarc::default()
    }
    .run(1.0e6);
    (
        rep.shipped,
        rep.mean_availability_lag.to_bits(),
        rep.grid.mean_makespan.to_bits(),
    )
}

#[test]
fn monarc_bit_for_bit_reproducible() {
    assert_eq!(monarc_fingerprint(7), monarc_fingerprint(7));
}

fn monarc_outage_fingerprint(seed: u64) -> Vec<(u64, u64, u64)> {
    let rep = Monarc {
        datasets: 20,
        analysis_jobs: 10,
        uplink_gbps: 10.0,
        // cut the shared T0 uplink twice mid-run: aborts, backoff
        // retries, and re-shipments are all on the event timeline
        uplink_outages: vec![(500.0, 900.0), (4000.0, 300.0)],
        seed,
        ..Monarc::default()
    }
    .run(1.0e6);
    rep.grid
        .records
        .iter()
        .map(|r| (r.id.0, r.site.0 as u64, r.finished.seconds().to_bits()))
        .chain(std::iter::once((
            rep.shipped,
            rep.grid.transfer_retries,
            rep.mean_availability_lag.to_bits(),
        )))
        .collect()
}

#[test]
fn monarc_fault_injected_run_is_bit_for_bit_reproducible() {
    let a = monarc_outage_fingerprint(7);
    let b = monarc_outage_fingerprint(7);
    assert_eq!(a, b, "same-seed faulty runs must be bit-identical");
}

#[test]
fn deterministic_components_yield_deterministic_simulation() {
    // a model with only Dist::Deterministic components has *no* random
    // events: even different seeds give identical results (the strong
    // "deterministic" class of the taxonomy)
    use lsds::core::SimTime;
    use lsds::grid::model::{GridConfig, GridModel};
    use lsds::grid::organization::{flat_grid, SiteSpec};
    use lsds::grid::scheduler::RoundRobin;
    use lsds::grid::Activity;
    use lsds::stats::{Dist, SimRng};

    let run = |seed: u64| {
        let grid = flat_grid(vec![SiteSpec::default(); 3], lsds::net::mbps(100.0), 0.01);
        let mut activity = Activity::compute(
            0,
            1.0, // ignored: interarrival overridden below
            Dist::constant(10.0),
            SimRng::new(seed),
        )
        .with_limit(20);
        activity.interarrival = Dist::constant(5.0);
        let cfg = GridConfig {
            grid,
            policy: Box::new(RoundRobin::default()),
            replication: ReplicationPolicy::None,
            activities: vec![activity],
            production: None,
            agent: None,
            eligible: None,
            initial_files: vec![],
            seed,
        };
        let mut sim = GridModel::build(cfg);
        sim.run_until(SimTime::new(1.0e5));
        sim.model()
            .report()
            .records
            .iter()
            .map(|r| (r.id.0, r.finished.seconds().to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run(1),
        run(999),
        "no stochastic components → seed-independent"
    );
}

#[test]
fn monitored_run_is_bit_identical_to_unmonitored() {
    // the observability layer must be pure read-only instrumentation:
    // an engine-level MetricsRecorder plus grid/net monitoring may not
    // perturb a single job record bit
    use lsds::core::{EventDriven, SimTime};
    use lsds::grid::model::{GridConfig, GridEvent, GridModel};
    use lsds::grid::organization::{flat_grid, SiteSpec};
    use lsds::grid::scheduler::LeastLoaded;
    use lsds::grid::{Activity, SiteId};
    use lsds::obs::MetricsRecorder;
    use lsds::stats::{Dist, SimRng};

    let cfg = |seed: u64| GridConfig {
        grid: flat_grid(vec![SiteSpec::default(); 4], lsds::net::mbps(622.0), 0.005),
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::PullLru,
        activities: vec![Activity::analysis(
            0,
            5.0,
            Dist::exp_mean(20.0),
            2,
            8,
            0.8,
            SimRng::new(seed),
        )
        .with_limit(40)],
        production: None,
        agent: None,
        eligible: None,
        initial_files: (0..8).map(|_| (0.5e9, SiteId(0))).collect(),
        seed,
    };
    let fingerprint = |monitored: bool| {
        let mut model = GridModel::new(cfg(17));
        if monitored {
            model.enable_monitor();
        }
        let records = if monitored {
            let mut sim = EventDriven::with_recorder(model, MetricsRecorder::new());
            sim.schedule(SimTime::ZERO, GridEvent::Init);
            sim.run_until(SimTime::new(1.0e6));
            sim.into_model().report().records
        } else {
            let mut sim = EventDriven::new(model);
            sim.schedule(SimTime::ZERO, GridEvent::Init);
            sim.run_until(SimTime::new(1.0e6));
            sim.into_model().report().records
        };
        records
            .iter()
            .map(|r| {
                (
                    r.id.0,
                    r.site.0 as u64,
                    r.staged.seconds().to_bits(),
                    r.started.seconds().to_bits(),
                    r.finished.seconds().to_bits(),
                    r.staged_bytes.to_bits(),
                )
            })
            .collect::<Vec<_>>()
    };
    let monitored = fingerprint(true);
    let plain = fingerprint(false);
    assert_eq!(monitored.len(), 40);
    assert_eq!(monitored, plain, "monitoring changed simulation results");
}
