//! The taxonomy's interactivity axis (§3): "allowing the user to stop,
//! suspend, resume, restart, change parameters or query the results
//! database while the simulation is running."
//!
//! The engines expose exactly that: `run_until` suspends at any horizon,
//! the model is queryable and mutable between runs, and resuming
//! continues the same simulation.

use lsds::core::SimTime;
use lsds::grid::model::{GridConfig, GridModel};
use lsds::grid::organization::{flat_grid, SiteSpec};
use lsds::grid::scheduler::LeastLoaded;
use lsds::grid::{Activity, ReplicationPolicy};
use lsds::stats::{Dist, SimRng};

fn config(seed: u64) -> GridConfig {
    GridConfig {
        grid: flat_grid(vec![SiteSpec::default(); 3], lsds::net::mbps(622.0), 0.005),
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::None,
        activities: vec![
            Activity::compute(0, 10.0, Dist::exp_mean(40.0), SimRng::new(seed)).with_limit(100),
        ],
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed,
    }
}

#[test]
fn suspend_query_resume_equals_uninterrupted_run() {
    // uninterrupted reference
    let mut whole = GridModel::build(config(5));
    whole.run_until(SimTime::new(1.0e6));
    let reference: Vec<(u64, u64)> = whole
        .model()
        .report()
        .records
        .iter()
        .map(|r| (r.id.0, r.finished.seconds().to_bits()))
        .collect();

    // suspend every 200 simulated seconds, query in between, resume
    let mut sim = GridModel::build(config(5));
    let mut horizon = 0.0;
    let mut observed_progress = Vec::new();
    while sim.model().report().records.len() < 100 {
        horizon += 200.0;
        sim.run_until(SimTime::new(horizon));
        // "query the results database while the simulation is running"
        observed_progress.push(sim.model().report().records.len());
        assert!(horizon < 1.0e6, "runaway");
    }
    let interrupted: Vec<(u64, u64)> = sim
        .model()
        .report()
        .records
        .iter()
        .map(|r| (r.id.0, r.finished.seconds().to_bits()))
        .collect();

    assert_eq!(reference, interrupted, "suspend/resume must not perturb");
    assert!(
        observed_progress.windows(2).all(|w| w[0] <= w[1]),
        "progress is monotone across suspensions"
    );
    assert!(observed_progress.len() > 3, "actually suspended repeatedly");
}

#[test]
fn parameters_changeable_while_suspended() {
    use lsds::grid::model::GridEvent;

    // stop mid-run…
    let mut sim = GridModel::build(config(9));
    sim.run_until(SimTime::new(300.0));
    let before = sim.model().report().records.len();
    assert!(before > 0 && before < 100, "mid-run ({before} done)");

    // …change parameters at the console: inject one extra submission
    // tick for activity 0 beyond its configured limit…
    sim.schedule(SimTime::new(301.0), GridEvent::Activity { idx: 0 });

    // …and resume
    sim.run_until(SimTime::new(1.0e6));
    assert_eq!(
        sim.model().report().records.len(),
        101,
        "the injected submission ran alongside the original 100"
    );
}
