//! Cross-crate validation (the §5 regime, end to end): grid substrate
//! components must match their queueing-theory references when driven
//! with Markovian workloads — "the comparison … should be made at least
//! for the networking protocols, for the computing nodes and the storage
//! facilities."

use lsds::core::SimTime;
use lsds::grid::cpu::{Discipline, Sharing};
use lsds::grid::model::{GridConfig, GridModel};
use lsds::grid::organization::{flat_grid, SiteSpec};
use lsds::grid::scheduler::FixedSite;
use lsds::grid::{Activity, ReplicationPolicy, SiteId};
use lsds::queueing::MMC;
use lsds::stats::{Dist, SimRng, Summary};

/// A single site with c space-shared cores fed Poisson jobs with
/// exponential work is an M/M/c station; the grid model's measured mean
/// sojourn must match the Erlang-C prediction.
#[test]
fn grid_site_behaves_like_mmc() {
    let cores = 3;
    let lambda = 2.0; // jobs/s
    let mu = 1.0; // service rate per core (work mean 1.0, speed 1.0)
    let jobs = 40_000u64;

    let grid = flat_grid(
        vec![SiteSpec {
            cores,
            speed: 1.0,
            sharing: Sharing::Space,
            discipline: Discipline::Fifo,
            disk: 1.0e12,
            price: 1.0,
        }],
        lsds::net::mbps(1000.0),
        0.001,
    );
    let master = SimRng::new(77);
    let cfg = GridConfig {
        grid,
        policy: Box::new(FixedSite(SiteId(0))),
        replication: ReplicationPolicy::None,
        activities: vec![Activity::compute(
            0,
            1.0 / lambda,
            Dist::Exponential { rate: mu },
            master.fork(1),
        )
        .with_limit(jobs)],
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed: 77,
    };
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e9));
    let rep = sim.model().report();
    assert_eq!(rep.records.len() as u64, jobs);

    // discard the first 10% as warm-up
    let mut w = Summary::new();
    for r in rep.records.iter().skip(jobs as usize / 10) {
        w.add(r.makespan());
    }
    let analytic = MMC::new(lambda, mu, cores as u32).w();
    let rel = (w.mean() - analytic).abs() / analytic;
    assert!(
        rel < 0.05,
        "grid site W = {w} vs M/M/c W = {analytic} (rel err {rel})",
        w = w.mean()
    );
}

/// The same site under processor sharing is an M/G/1-PS queue, whose mean
/// sojourn equals the M/M/1 value (PS is insensitive to the service
/// distribution): W = 1/(μ−λ).
#[test]
fn time_shared_site_behaves_like_processor_sharing() {
    let lambda = 0.7;
    let mu = 1.0;
    // PS sojourn times are strongly autocorrelated at this load; the
    // estimator needs a long run to settle
    let jobs = 200_000u64;
    let grid = flat_grid(
        vec![SiteSpec {
            cores: 1,
            speed: 1.0,
            sharing: Sharing::Time,
            discipline: Discipline::Fifo,
            disk: 1.0e12,
            price: 1.0,
        }],
        lsds::net::mbps(1000.0),
        0.001,
    );
    let master = SimRng::new(78);
    let cfg = GridConfig {
        grid,
        policy: Box::new(FixedSite(SiteId(0))),
        replication: ReplicationPolicy::None,
        activities: vec![Activity::compute(
            0,
            1.0 / lambda,
            Dist::Exponential { rate: mu },
            master.fork(1),
        )
        .with_limit(jobs)],
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed: 78,
    };
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e9));
    let rep = sim.model().report();
    assert_eq!(rep.records.len() as u64, jobs);
    let mut w = Summary::new();
    for r in rep.records.iter().skip(jobs as usize / 10) {
        w.add(r.makespan());
    }
    let analytic = 1.0 / (mu - lambda);
    let rel = (w.mean() - analytic).abs() / analytic;
    assert!(
        rel < 0.05,
        "PS site W = {w} vs analytic {analytic} (rel err {rel})",
        w = w.mean()
    );
}
