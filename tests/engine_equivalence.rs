//! Cross-crate invariant: swapping the event-list structure (the paper's
//! O(1) vs O(log n) design axis) changes simulator *performance*, never
//! simulation *results*. A full grid scenario must produce identical
//! records under all four queue structures.

use lsds::core::{EventDriven, QueueKind, SimTime};
use lsds::grid::model::{GridConfig, GridEvent, GridModel};
use lsds::grid::organization::{flat_grid, SiteSpec};
use lsds::grid::scheduler::LeastLoaded;
use lsds::grid::{Activity, ReplicationPolicy, SiteId};
use lsds::stats::{Dist, SimRng};

fn scenario(seed: u64) -> GridConfig {
    let grid = flat_grid(vec![SiteSpec::default(); 4], lsds::net::mbps(622.0), 0.005);
    let initial_files = (0..8).map(|i| (0.7e9, SiteId(i % 4))).collect();
    let master = SimRng::new(seed);
    GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::PullLru,
        activities: vec![Activity::analysis(
            0,
            8.0,
            Dist::exp_mean(40.0),
            2,
            8,
            0.9,
            master.fork(1),
        )
        .with_limit(50)],
        production: None,
        agent: None,
        eligible: None,
        initial_files,
        seed,
    }
}

fn run_with(kind: QueueKind) -> Vec<(u64, usize, u64)> {
    let model = GridModel::new(scenario(11));
    let mut sim = EventDriven::with_queue(model, kind.build::<GridEvent>());
    sim.schedule(SimTime::ZERO, GridEvent::Init);
    sim.run_until(SimTime::new(1.0e6));
    sim.model()
        .report()
        .records
        .iter()
        .map(|r| (r.id.0, r.site.0, r.finished.seconds().to_bits()))
        .collect()
}

#[test]
fn all_queue_structures_agree_on_full_grid_scenario() {
    let heap = run_with(QueueKind::BinaryHeap);
    assert_eq!(heap.len(), 50);
    for kind in [
        QueueKind::SortedList,
        QueueKind::Calendar,
        QueueKind::Ladder,
    ] {
        let other = run_with(kind);
        assert_eq!(heap, other, "{} diverged from binary-heap", kind.name());
    }
}
