//! `lsds` — Large Scale Distributed Systems Simulation.
//!
//! Umbrella crate re-exporting the full framework. See the workspace
//! README for the architecture overview and DESIGN.md for the mapping to
//! the reproduced paper (Dobre, Pop, Cristea — "New Trends in Large Scale
//! Distributed Systems Simulation", ICPP 2009).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use lsds_core as core;
pub use lsds_grid as grid;
pub use lsds_net as net;
pub use lsds_obs as obs;
pub use lsds_parallel as parallel;
pub use lsds_queueing as queueing;
pub use lsds_simulators as simulators;
pub use lsds_stats as stats;
pub use lsds_trace as trace;
