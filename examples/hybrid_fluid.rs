//! The taxonomy's third mechanics class: "a hybrid simulation comprises
//! both continuous and discrete-event simulations" (§3).
//!
//! A WAN link's backlog is modeled as a continuous fluid buffer
//! (dB/dt = offered − capacity, clamped at 0) integrated with RK4, while
//! discrete events interrupt it: bursts dump bytes instantaneously and
//! capacity changes (the 2.5 → 30 Gbps upgrade of E6, in miniature) take
//! effect at an instant.
//!
//! ```sh
//! cargo run --release --example hybrid_fluid
//! ```

use lsds::core::engine::HybridModel;
use lsds::core::{Ctx, Hybrid, SimTime};
use lsds::trace::{ScatterPlot, Series};

/// Continuous state: y[0] = link backlog (GB).
struct FluidLink {
    /// Offered fluid rate (GB/s).
    offered: f64,
    /// Link capacity (GB/s).
    capacity: f64,
    /// Sampled (time, backlog) curve.
    samples: Vec<(f64, f64)>,
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Instantaneous burst of `gb` gigabytes.
    Burst(f64),
    /// The link is upgraded to a new capacity.
    Upgrade(f64),
    /// Periodic backlog sample.
    Sample,
}

impl HybridModel for FluidLink {
    type Event = Ev;

    fn derivatives(&self, _t: SimTime, y: &[f64], dydt: &mut [f64]) {
        let drain = self.capacity;
        // fluid buffer: drains only while non-empty
        dydt[0] = if y[0] > 0.0 {
            self.offered - drain
        } else {
            (self.offered - drain).max(0.0)
        };
    }

    fn handle(&mut self, ev: Ev, y: &mut [f64], ctx: &mut Ctx<'_, Ev>) {
        match ev {
            Ev::Burst(gb) => y[0] += gb,
            Ev::Upgrade(cap) => self.capacity = cap,
            Ev::Sample => {
                self.samples.push((ctx.now().seconds(), y[0]));
                ctx.schedule_in(5.0, Ev::Sample);
            }
        }
    }

    fn on_step(&mut self, _t: SimTime, y: &mut [f64], _ctx: &mut Ctx<'_, Ev>) {
        if y[0] < 0.0 {
            y[0] = 0.0; // integration may overshoot the empty buffer
        }
    }
}

fn main() {
    // offered 3 GB/s into a 2.5 GB/s link: backlog climbs ~0.5 GB/s
    let mut sim = Hybrid::new(
        FluidLink {
            offered: 3.0,
            capacity: 2.5,
            samples: Vec::new(),
        },
        vec![0.0],
        0.05,
    );
    sim.schedule(SimTime::ZERO, Ev::Sample);
    // production bursts every 50 s
    for k in 0..12 {
        sim.schedule(SimTime::new(25.0 + 50.0 * k as f64), Ev::Burst(40.0));
    }
    // the upgrade lands at t = 400 s
    sim.schedule(SimTime::new(400.0), Ev::Upgrade(30.0));
    let stats = sim.run_until(SimTime::new(600.0));

    let mut series = Series::new("backlog_gb");
    for &(t, b) in &sim.model().samples {
        series.push(t, b);
    }
    println!("hybrid fluid-link model: continuous backlog + discrete events");
    println!(
        "({} RK4 steps, {} discrete events)\n",
        stats.ticks, stats.events
    );
    let plot = ScatterPlot {
        width: 70,
        height: 18,
        log_y: false,
    };
    print!("{}", plot.render(&[series]));
    println!(
        "\nReading: backlog ramps under the 2.5 GB/s link (growth + bursts),\n\
         then the t=400 s capacity upgrade drains it — the E6 story told by\n\
         the hybrid engine in one continuous state variable."
    );
    let final_backlog = sim.state()[0];
    assert!(final_backlog < 1.0, "upgrade must drain the buffer");
    println!("final backlog: {final_backlog:.3} GB");
}
