//! The LHC replication scenario with the MonALISA-style observability
//! layer switched on: an engine-level [`MetricsRecorder`] counts events
//! and samples the pending-queue length, while the grid/net monitors
//! sample per-site CPU/disk occupancy and per-link utilization as the
//! simulation runs. Everything is merged into one registry and exported
//! as a JSON snapshot through `lsds-trace`.
//!
//! Monitoring is strictly read-only: the simulated trajectory is
//! bit-for-bit identical to an unmonitored run (see
//! `tests/determinism.rs`).
//!
//! ```sh
//! cargo run --release --example monitored_run
//! ```

use lsds::core::{EventDriven, SimTime};
use lsds::grid::model::{GridConfig, GridEvent, GridModel, Production};
use lsds::grid::organization::{tiered_grid, SiteSpec};
use lsds::grid::scheduler::LeastLoaded;
use lsds::grid::{Activity, ReplicationPolicy, SiteId};
use lsds::net::gbps;
use lsds::obs::MetricsRecorder;
use lsds::stats::{Dist, SimRng};

fn main() {
    // A small MONARC-style tier hierarchy: one T0 production center,
    // three T1 regional centers, 100 GB datasets produced every 320 s
    // and shipped by the replication agent, plus analysis activity at
    // the T1s pulling from a pre-produced catalog.
    let n_t1 = 3;
    let datasets = 16usize;
    let master = SimRng::new(42);
    let grid = tiered_grid(
        SiteSpec {
            cores: 4,
            disk: 1.0e16,
            ..SiteSpec::default()
        },
        n_t1,
        SiteSpec {
            cores: 32,
            disk: 1.0e15,
            ..SiteSpec::default()
        },
        0,
        SiteSpec::default(),
        gbps(10.0),
        gbps(10.0),
        0.01,
    );
    let activities = (0..n_t1)
        .map(|i| {
            Activity::analysis(
                i as u32,
                60.0,
                Dist::exp_mean(600.0),
                1,
                datasets,
                0.8,
                master.fork(i as u64 + 10),
            )
            .with_limit(12)
        })
        .collect();
    let cfg = GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::PullLru,
        activities,
        production: Some(Production {
            site: SiteId(0),
            interarrival: Dist::constant(320.0),
            size: Dist::constant(100.0e9),
            limit: Some(20),
        }),
        agent: Some(n_t1 * 2),
        eligible: None,
        initial_files: (0..datasets).map(|_| (100.0e9, SiteId(0))).collect(),
        seed: 42,
    };

    // Monitoring on: sim-time sampling inside the model + an engine
    // recorder counting events and queue operations.
    let mut model = GridModel::new(cfg);
    model.enable_monitor();
    let mut sim = EventDriven::with_recorder(model, MetricsRecorder::new());
    sim.schedule(SimTime::ZERO, GridEvent::Init);
    sim.run_until(SimTime::new(1.0e6));
    let t_end = sim.now().seconds();

    // Merge engine-level and model-level metrics into one registry.
    let mut reg = sim.recorder().registry().clone();
    sim.model().export_metrics(&mut reg);
    let snap = reg.snapshot(t_end);

    eprintln!(
        "monitored LHC replication run: {} engine events over {:.0} s of sim time",
        snap.counters
            .iter()
            .find(|(k, _)| k == "engine.events")
            .map(|&(_, v)| v)
            .unwrap_or(0),
        t_end
    );
    eprintln!(
        "{} counters, {} gauges, {} time series, {} summaries",
        snap.counters.len(),
        snap.gauges.len(),
        snap.series.len(),
        snap.summaries.len()
    );
    // the incremental fair-share engine's scope counters: how many
    // links/flows each reshare actually touched, and how often the
    // pairwise route cache short-circuited a path walk
    eprintln!("network sharing scope:");
    for (name, v) in reg.counters_with_prefix("net.") {
        eprintln!("  {name} = {v}");
    }
    eprintln!();
    println!("{}", lsds::trace::snapshot_to_json_string(&snap));
}
