//! Quickstart: build a small grid, run a stochastic workload, read the
//! report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lsds::core::SimTime;
use lsds::grid::model::{GridConfig, GridModel};
use lsds::grid::organization::{flat_grid, SiteSpec};
use lsds::grid::scheduler::LeastLoaded;
use lsds::grid::{Activity, ReplicationPolicy, SiteId};
use lsds::stats::{Dist, SimRng};

fn main() {
    // 1. Infrastructure: four equal sites on a 622 Mbps star.
    let grid = flat_grid(vec![SiteSpec::default(); 4], lsds::net::mbps(622.0), 0.005);

    // 2. Data: ten 1 GB files, spread round-robin over the sites.
    let initial_files = (0..10).map(|i| (1.0e9, SiteId(i % 4))).collect();

    // 3. Applications: one user submitting 100 analysis jobs (Poisson
    //    arrivals, exponential CPU demand, Zipf-popular inputs).
    let master = SimRng::new(2026);
    let activities = vec![Activity::analysis(
        0,    // owner
        30.0, // mean inter-arrival (s)
        Dist::exp_mean(120.0),
        2,   // files per job
        10,  // catalog size
        0.9, // Zipf exponent
        master.fork(1),
    )
    .with_limit(100)];

    // 4. Middleware: least-loaded brokering + LRU pull replication.
    let cfg = GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::PullLru,
        activities,
        production: None,
        agent: None,
        eligible: None,
        initial_files,
        seed: 2026,
    };

    // 5. Simulate.
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e6));

    // 6. Report.
    let rep = sim.model().report();
    println!("jobs completed     : {}", rep.records.len());
    println!("mean makespan      : {:.1} s", rep.mean_makespan);
    println!("mean staging time  : {:.1} s", rep.mean_stage_time);
    println!("WAN bytes staged   : {:.2} GB", rep.wan_bytes / 1e9);
    println!("simulated time     : {:.0} s", sim.now().seconds());
    println!("events processed   : {}", sim.processed());

    let slowest = rep
        .records
        .iter()
        .max_by(|a, b| a.makespan().total_cmp(&b.makespan()))
        .expect("non-empty");
    println!(
        "slowest job        : #{} at site {} ({:.1} s, {:.1} s staging)",
        slowest.id.0,
        slowest.site.0,
        slowest.makespan(),
        slowest.stage_time()
    );
}
