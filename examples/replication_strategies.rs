//! OptorSim-style comparison of replica optimization strategies (E7) and
//! the push-vs-pull contrast with ChicagoSim (E8 preview).
//!
//! ```sh
//! cargo run --release --example replication_strategies
//! ```

use lsds::grid::ReplicationPolicy;
use lsds::simulators::chicagosim::ChicagoSim;
use lsds::simulators::optorsim::OptorSim;
use lsds::trace::TextTable;

fn main() {
    let mut table = TextTable::with_columns(&[
        "strategy",
        "mean job time (s)",
        "mean staging (s)",
        "WAN (GB)",
    ]);
    println!("OptorSim: 200 Zipf-skewed analysis jobs, 5 sites, tight disks\n");
    for strategy in [
        ReplicationPolicy::None,
        ReplicationPolicy::PullLru,
        ReplicationPolicy::PullLfu,
        ReplicationPolicy::PullEconomic,
    ] {
        let rep = OptorSim {
            strategy,
            seed: 4,
            ..OptorSim::default()
        }
        .run(1.0e7);
        table.row(vec![
            strategy.name().to_string(),
            format!("{:.1}", rep.mean_makespan),
            format!("{:.1}", rep.mean_stage_time),
            format!("{:.1}", rep.wan_bytes / 1e9),
        ]);
    }
    print!("{}", table.render());

    println!("\nChicagoSim (push model, data-aware schedulers):\n");
    let rep = ChicagoSim {
        seed: 4,
        ..ChicagoSim::default()
    }
    .run(1.0e7);
    println!("  jobs completed : {}", rep.records.len());
    println!("  pushes         : {}", rep.pushes);
    println!("  mean job time  : {:.1} s", rep.mean_makespan);
    println!("  WAN traffic    : {:.1} GB", rep.wan_bytes / 1e9);
}
