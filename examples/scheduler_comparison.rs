//! SimGrid-style scheduling study (E5 preview): compile-time vs runtime
//! scheduling of a heterogeneous bag of tasks, with the analytic
//! validation of Casanova (2001) — the simulated makespan of the static
//! schedule must equal the analytically computed one.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison
//! ```

use lsds::simulators::simgrid::{SchedulingMode, SimGrid};
use lsds::stats::SimRng;
use lsds::trace::TextTable;

fn main() {
    let mut rng = SimRng::new(17);
    let hosts: Vec<f64> = (0..8).map(|_| rng.range_f64(0.5, 4.0)).collect();
    let tasks: Vec<f64> = (0..200).map(|_| rng.range_f64(1.0, 50.0)).collect();

    println!(
        "bag of {} tasks on {} heterogeneous hosts (speeds {:.2}–{:.2})\n",
        tasks.len(),
        hosts.len(),
        hosts.iter().cloned().fold(f64::INFINITY, f64::min),
        hosts.iter().cloned().fold(0.0, f64::max),
    );

    let lb =
        SimGrid::new(hosts.clone(), tasks.clone(), SchedulingMode::Runtime).analytic_lower_bound();

    let mut table =
        TextTable::with_columns(&["mode", "makespan (s)", "vs lower bound", "validation"]);
    for mode in [SchedulingMode::CompileTime, SchedulingMode::Runtime] {
        let sg = SimGrid::new(hosts.clone(), tasks.clone(), mode);
        let report = sg.run();
        let validation = match mode {
            SchedulingMode::CompileTime => {
                let (_, analytic) = sg.static_schedule();
                let err = (report.makespan - analytic).abs();
                format!("analytic {analytic:.3} (|err| = {err:.1e})")
            }
            SchedulingMode::Runtime => "online — no closed form".to_string(),
        };
        table.row(vec![
            match mode {
                SchedulingMode::CompileTime => "compile-time (LPT)".to_string(),
                SchedulingMode::Runtime => "runtime (work queue)".to_string(),
            },
            format!("{:.3}", report.makespan),
            format!("{:.3}x", report.makespan / lb),
            validation,
        ]);
    }
    print!("{}", table.render());
    println!("\nanalytic lower bound: {lb:.3} s");
}
