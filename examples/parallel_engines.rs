//! Distributed execution (E4 preview): the same multi-LP workload under
//! the conservative Chandy–Misra–Bryant engine at several lookaheads,
//! showing the null-message overhead the paper attributes to
//! conservative synchronization — then under the optimistic Time Warp
//! engine, which replaces blocking with speculation + rollback and does
//! not care how small the lookahead is.
//!
//! ```sh
//! cargo run --release --example parallel_engines
//! ```

use lsds::core::SimTime;
use lsds::parallel::cmb::InitialEvents;
use lsds::parallel::{run_cmb, run_timestep, run_timewarp, LogicalProcess, LpCtx, SaveState};
use lsds::trace::TextTable;

/// A site LP: processes local work and forwards results around a ring.
#[derive(Clone)]
struct SiteLp {
    n: usize,
    delay: f64,
    la: f64,
    handled: u64,
}

impl LogicalProcess for SiteLp {
    type Msg = u64;
    fn handle(&mut self, _now: SimTime, job: u64, ctx: &mut LpCtx<'_, u64>) {
        self.handled += 1;
        ctx.send((ctx.me() + 1) % self.n, self.delay, job + 1);
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for SiteLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        // a single token: traffic is sparse, so idle LPs must block and
        // the conservative engine lives off null-message promises — the
        // regime where lookahead really costs (dense self-clocking
        // traffic needs almost no nulls)
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

impl SaveState for SiteLp {
    type Saved = u64;
    fn save(&self) -> u64 {
        self.handled
    }
    fn restore(&mut self, saved: u64) {
        self.handled = saved;
    }
}

fn lps(n: usize, la: f64) -> Vec<SiteLp> {
    (0..n)
        .map(|_| SiteLp {
            n,
            delay: 1.0,
            la,
            handled: 0,
        })
        .collect()
}

fn edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

fn main() {
    let n = 4;
    let t_end = SimTime::new(2000.0);

    println!("conservative (CMB) execution of a {n}-LP ring to t = 2000 s\n");
    let mut table = TextTable::with_columns(&[
        "lookahead",
        "events",
        "real msgs",
        "null msgs",
        "nulls per event",
    ]);
    for la in [1.0, 0.5, 0.25, 0.1] {
        let report = run_cmb(lps(n, la), &edges(n), t_end);
        let ev = report.total_events();
        let nulls = report.total_nulls();
        table.row(vec![
            format!("{la:.2}"),
            format!("{ev}"),
            format!("{}", report.total_remote()),
            format!("{nulls}"),
            format!("{:.2}", nulls as f64 / ev as f64),
        ]);
    }
    print!("{}", table.render());

    let ts = run_timestep(lps(n, 1.0), 1.0, t_end);
    println!(
        "\ntime-stepped engine (window = lookahead): {} events over {} windows",
        ts.total_events(),
        ts.windows
    );

    // The optimistic engine ignores the declared lookahead entirely: it
    // speculates ahead and repairs mis-speculation with rollbacks and
    // anti-messages, so its cost is wasted work, not null messages.
    let tw = run_timewarp(lps(n, 1.0), &edges(n), t_end);
    println!(
        "\noptimistic (Time Warp) engine: {} events committed, {} executed \
         ({} rolled back in {} rollbacks, {} anti-messages), efficiency {:.2}",
        tw.total_events(),
        tw.total_processed(),
        tw.total_rolled_back(),
        tw.total_rollbacks(),
        tw.total_antis(),
        tw.efficiency()
    );
    println!("same results, different synchronization cost — the E4 trade-off.");
}
