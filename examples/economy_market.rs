//! GridSim-style computational economy (E9 preview): deadline-and-budget
//! constrained scheduling over priced resources, optimizing cost or time.
//!
//! ```sh
//! cargo run --release --example economy_market
//! ```

use lsds::grid::scheduler::EconomyGoal;
use lsds::simulators::gridsim::GridSim;
use lsds::trace::TextTable;

fn main() {
    println!("GridSim economy: 200-task farm over 3 priced resource classes");
    println!("(1x/2x/4x speed at 1/3/8 currency per CPU-second)\n");

    let mut table = TextTable::with_columns(&[
        "goal",
        "budget factor",
        "completed",
        "rejected",
        "total cost",
        "mean time (s)",
        "deadline hits",
    ]);
    for goal in [EconomyGoal::CostMin, EconomyGoal::TimeMin] {
        for budget_factor in [1.5, 4.0, 10.0] {
            let rep = GridSim {
                goal,
                budget_factor,
                deadline_factor: 6.0,
                seed: 9,
                ..GridSim::default()
            }
            .run(1.0e7);
            table.row(vec![
                match goal {
                    EconomyGoal::CostMin => "cost-min".to_string(),
                    EconomyGoal::TimeMin => "time-min".to_string(),
                },
                format!("{budget_factor:.1}"),
                format!("{}", rep.records.len()),
                format!("{}", rep.rejected),
                format!("{:.0}", rep.total_cost),
                format!("{:.1}", rep.mean_makespan),
                format!("{:.0}%", rep.deadline_hit_rate * 100.0),
            ]);
        }
    }
    print!("{}", table.render());
    println!("\nTighter budgets force the broker onto cheaper/slower resources");
    println!("(or into rejection); time optimization buys speed with budget.");
}
