//! The MONARC T0/T1 replication study (Legrand et al. 2005, §5 of the
//! paper): sweep the shared T0 uplink from 0.6 to 30 Gbps and report
//! whether shipping the production stream to the tier-1 centers keeps
//! pace — "the existing capacity of 2.5 Gbps was not sufficient and …
//! the link was upgraded to a current 30 Gbps".
//!
//! The final section injects a deterministic T0-uplink outage into the
//! same scenario: transfers caught on the link abort and ride the
//! retry/backoff path, and the replication agent's eager shipping is
//! compared against on-demand pulls under the failure.
//!
//! ```sh
//! cargo run --release --example lhc_replication
//! ```

use lsds::simulators::monarc::Monarc;
use lsds::trace::TextTable;

fn main() {
    let mut table = TextTable::with_columns(&[
        "uplink (Gbps)",
        "offered (Gbps)",
        "shipped",
        "mean lag (s)",
        "max lag (s)",
        "verdict",
    ]);
    println!("MONARC LHC T0→T1 study: 5 tier-1 centers, 100 GB datasets");
    println!("produced every 320 s (≈2.5 Gbps of raw production)\n");
    for uplink in [0.6, 1.25, 2.5, 5.0, 10.0, 15.0, 30.0] {
        let rep = Monarc {
            uplink_gbps: uplink,
            datasets: 40,
            ..Monarc::default()
        }
        .run(1.0e6);
        table.row(vec![
            format!("{uplink:.2}"),
            format!("{:.1}", rep.offered_gbps),
            format!("{}/{}", rep.shipped, rep.produced * 5),
            format!("{:.0}", rep.mean_availability_lag),
            format!("{:.0}", rep.max_availability_lag),
            if rep.sustainable {
                "sufficient".to_string()
            } else {
                "NOT sufficient".to_string()
            },
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("The agent's role (10 Gbps uplink, 20 analysis jobs per tier-1):");
    for agent in [false, true] {
        let rep = Monarc {
            agent,
            analysis_jobs: 20,
            datasets: 10,
            uplink_gbps: 10.0,
            ..Monarc::default()
        }
        .run(1.0e6);
        println!(
            "  agent {}: mean stage time {:>7.1} s, mean job makespan {:>7.1} s",
            if agent { "ON " } else { "OFF" },
            rep.grid.mean_stage_time,
            rep.grid.mean_makespan
        );
    }
    println!();
    println!("Resilience under a T0 uplink outage (down t=1000 s for 1 h,");
    println!("10 Gbps uplink, 20 analysis jobs per tier-1):");
    for agent in [false, true] {
        let rep = Monarc {
            agent,
            analysis_jobs: 20,
            datasets: 10,
            uplink_gbps: 10.0,
            uplink_outages: vec![(1000.0, 3600.0)],
            ..Monarc::default()
        }
        .run(1.0e6);
        println!(
            "  agent {}: mean stage time {:>7.1} s, mean makespan {:>7.1} s, \
             {} retries, {} failures",
            if agent { "ON " } else { "OFF" },
            rep.grid.mean_stage_time,
            rep.grid.mean_makespan,
            rep.grid.transfer_retries,
            rep.grid.transfer_failures,
        );
    }
    println!();
    println!("Every aborted transfer is retried with exponential backoff;");
    println!("pre-staged replicas (agent ON) shield analysis from the outage.");
}
