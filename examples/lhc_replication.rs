//! The MONARC T0/T1 replication study (Legrand et al. 2005, §5 of the
//! paper): sweep the shared T0 uplink from 0.6 to 30 Gbps and report
//! whether shipping the production stream to the tier-1 centers keeps
//! pace — "the existing capacity of 2.5 Gbps was not sufficient and …
//! the link was upgraded to a current 30 Gbps".
//!
//! The final section injects a deterministic T0-uplink outage into the
//! same scenario: transfers caught on the link abort and ride the
//! retry/backoff path, and the replication agent's eager shipping is
//! compared against on-demand pulls under the failure.
//!
//! The closing profiling section re-runs the 2.5 Gbps scenario with
//! causal tracing enabled, prints the per-handler wall-time profile and
//! the virtual-time critical path, and writes a Chrome trace-event file
//! (`lhc_replication.trace.json`, loadable in Perfetto).
//!
//! ```sh
//! cargo run --release --example lhc_replication
//! ```

use lsds::obs::TraceConfig;
use lsds::simulators::monarc::Monarc;
use lsds::trace::{write_chrome_trace, TextTable};

fn main() {
    let mut table = TextTable::with_columns(&[
        "uplink (Gbps)",
        "offered (Gbps)",
        "shipped",
        "mean lag (s)",
        "max lag (s)",
        "verdict",
    ]);
    println!("MONARC LHC T0→T1 study: 5 tier-1 centers, 100 GB datasets");
    println!("produced every 320 s (≈2.5 Gbps of raw production)\n");
    for uplink in [0.6, 1.25, 2.5, 5.0, 10.0, 15.0, 30.0] {
        let rep = Monarc {
            uplink_gbps: uplink,
            datasets: 40,
            ..Monarc::default()
        }
        .run(1.0e6);
        table.row(vec![
            format!("{uplink:.2}"),
            format!("{:.1}", rep.offered_gbps),
            format!("{}/{}", rep.shipped, rep.produced * 5),
            format!("{:.0}", rep.mean_availability_lag),
            format!("{:.0}", rep.max_availability_lag),
            if rep.sustainable {
                "sufficient".to_string()
            } else {
                "NOT sufficient".to_string()
            },
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("The agent's role (10 Gbps uplink, 20 analysis jobs per tier-1):");
    for agent in [false, true] {
        let rep = Monarc {
            agent,
            analysis_jobs: 20,
            datasets: 10,
            uplink_gbps: 10.0,
            ..Monarc::default()
        }
        .run(1.0e6);
        println!(
            "  agent {}: mean stage time {:>7.1} s, mean job makespan {:>7.1} s",
            if agent { "ON " } else { "OFF" },
            rep.grid.mean_stage_time,
            rep.grid.mean_makespan
        );
    }
    println!();
    println!("Resilience under a T0 uplink outage (down t=1000 s for 1 h,");
    println!("10 Gbps uplink, 20 analysis jobs per tier-1):");
    for agent in [false, true] {
        let rep = Monarc {
            agent,
            analysis_jobs: 20,
            datasets: 10,
            uplink_gbps: 10.0,
            uplink_outages: vec![(1000.0, 3600.0)],
            ..Monarc::default()
        }
        .run(1.0e6);
        println!(
            "  agent {}: mean stage time {:>7.1} s, mean makespan {:>7.1} s, \
             {} retries, {} failures",
            if agent { "ON " } else { "OFF" },
            rep.grid.mean_stage_time,
            rep.grid.mean_makespan,
            rep.grid.transfer_retries,
            rep.grid.transfer_failures,
        );
    }
    println!();
    println!("Every aborted transfer is retried with exponential backoff;");
    println!("pre-staged replicas (agent ON) shield analysis from the outage.");

    println!();
    println!("Profiling the historical 2.5 Gbps scenario (tracing ON):");
    let (rep, spans) = Monarc {
        uplink_gbps: 2.5,
        datasets: 40,
        ..Monarc::default()
    }
    .run_traced(1.0e6, TraceConfig::default());
    println!(
        "  {} spans recorded ({} evicted), shipped {}/{}",
        spans.len(),
        spans.dropped,
        rep.shipped,
        rep.produced * 5
    );
    let profile = spans.profile();
    let mut prof_table =
        TextTable::with_columns(&["handler", "count", "p50 (µs)", "p99 (µs)", "total (ms)"]);
    let mut kinds = profile.kinds;
    kinds.sort_by(|a, b| b.wall_ns.sum().total_cmp(&a.wall_ns.sum()));
    for k in kinds.iter().take(6) {
        prof_table.row(vec![
            k.name.to_string(),
            format!("{}", k.wall_ns.count()),
            format!("{:.1}", k.wall_ns.p50() / 1e3),
            format!("{:.1}", k.wall_ns.p99() / 1e3),
            format!("{:.2}", k.wall_ns.sum() / 1e6),
        ]);
    }
    print!("{}", prof_table.render());
    let path = spans.critical_path();
    let share = path.by_kind();
    println!(
        "  critical path: {} events over {:.0} s of virtual time{}",
        path.steps.len(),
        path.makespan,
        if path.complete { "" } else { " (truncated)" }
    );
    for (kind, vt, n) in share.iter().take(3) {
        println!("    {kind}: {n} events, {vt:.0} s of the path");
    }
    let file = "lhc_replication.trace.json";
    match std::fs::File::create(file).and_then(|f| write_chrome_trace(&spans, f)) {
        Ok(()) => println!("  Chrome trace written to {file} (open in Perfetto)"),
        Err(e) => println!("  could not write {file}: {e}"),
    }
}
