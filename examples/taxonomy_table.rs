//! Regenerates the paper's Table 1 — "Design comparison of surveyed Grid
//! simulation projects" — from the six simulator models'
//! self-classifications under the taxonomy of §3.
//!
//! ```sh
//! cargo run --example taxonomy_table           # aligned text
//! cargo run --example taxonomy_table -- --csv  # CSV
//! ```

use lsds::simulators::table1;

fn main() {
    let table = table1();
    let csv = std::env::args().any(|a| a == "--csv");
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("Table 1. Design comparison of surveyed Grid simulation projects");
        println!("(generated from the models' self-classifications)\n");
        print!("{}", table.render());
    }
}
