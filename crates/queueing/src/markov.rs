//! Closed-form results for the classical Markovian stations.
//!
//! Conventions: `lambda` = arrival rate, `mu` = per-server service rate,
//! all quantities in jobs and seconds. `l`/`lq` are time-average numbers
//! in system/queue, `w`/`wq` mean times in system/queue (Little's law
//! connects them, which the tests verify).

use crate::erlang::erlang_c;

/// M/M/1: Poisson arrivals, exponential service, one server.
#[derive(Debug, Clone, Copy)]
pub struct MM1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
}

impl MM1 {
    /// Creates a stable station; panics if ρ ≥ 1.
    pub fn new(lambda: f64, mu: f64) -> Self {
        assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
        assert!(lambda < mu, "unstable: rho >= 1");
        MM1 { lambda, mu }
    }

    /// Utilization ρ = λ/μ.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Mean number in system L = ρ/(1−ρ).
    pub fn l(&self) -> f64 {
        let r = self.rho();
        r / (1.0 - r)
    }

    /// Mean number in queue Lq = ρ²/(1−ρ).
    pub fn lq(&self) -> f64 {
        let r = self.rho();
        r * r / (1.0 - r)
    }

    /// Mean time in system W = 1/(μ−λ).
    pub fn w(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time Wq = ρ/(μ−λ).
    pub fn wq(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }

    /// Steady-state probability of `n` in system.
    pub fn p_n(&self, n: u32) -> f64 {
        let r = self.rho();
        (1.0 - r) * r.powi(n as i32)
    }
}

/// M/M/c: Poisson arrivals, exponential service, `c` servers.
#[derive(Debug, Clone, Copy)]
pub struct MMC {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Per-server service rate μ.
    pub mu: f64,
    /// Server count.
    pub c: u32,
}

impl MMC {
    /// Creates a stable station; panics if λ ≥ cμ.
    pub fn new(lambda: f64, mu: f64, c: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0 && c > 0);
        assert!(lambda < c as f64 * mu, "unstable: rho >= 1");
        MMC { lambda, mu, c }
    }

    /// Offered load a = λ/μ (in Erlangs).
    pub fn offered(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Per-server utilization ρ = a/c.
    pub fn rho(&self) -> f64 {
        self.offered() / self.c as f64
    }

    /// Probability an arrival waits (Erlang C).
    pub fn p_wait(&self) -> f64 {
        erlang_c(self.c, self.offered())
    }

    /// Mean queue length Lq.
    pub fn lq(&self) -> f64 {
        self.p_wait() * self.rho() / (1.0 - self.rho())
    }

    /// Mean waiting time Wq.
    pub fn wq(&self) -> f64 {
        self.lq() / self.lambda
    }

    /// Mean time in system W.
    pub fn w(&self) -> f64 {
        self.wq() + 1.0 / self.mu
    }

    /// Mean number in system L (Little).
    pub fn l(&self) -> f64 {
        self.lambda * self.w()
    }
}

/// M/M/1/K: one server, at most `K` jobs in the system (arrivals finding
/// the system full are lost).
#[derive(Debug, Clone, Copy)]
pub struct MM1K {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Service rate μ.
    pub mu: f64,
    /// System capacity (including the job in service).
    pub k: u32,
}

impl MM1K {
    /// Creates the station (any ρ is allowed — capacity bounds it).
    pub fn new(lambda: f64, mu: f64, k: u32) -> Self {
        assert!(lambda > 0.0 && mu > 0.0 && k > 0);
        MM1K { lambda, mu, k }
    }

    /// Offered utilization ρ = λ/μ (may exceed 1).
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Probability of `n` in system.
    pub fn p_n(&self, n: u32) -> f64 {
        assert!(n <= self.k);
        let r = self.rho();
        if (r - 1.0).abs() < 1e-12 {
            1.0 / (self.k + 1) as f64
        } else {
            (1.0 - r) * r.powi(n as i32) / (1.0 - r.powi(self.k as i32 + 1))
        }
    }

    /// Blocking probability (arrival finds the system full).
    pub fn p_block(&self) -> f64 {
        self.p_n(self.k)
    }

    /// Effective (admitted) arrival rate.
    pub fn lambda_eff(&self) -> f64 {
        self.lambda * (1.0 - self.p_block())
    }

    /// Mean number in system.
    pub fn l(&self) -> f64 {
        (0..=self.k).map(|n| n as f64 * self.p_n(n)).sum()
    }

    /// Mean time in system for admitted jobs (Little with λ_eff).
    pub fn w(&self) -> f64 {
        self.l() / self.lambda_eff()
    }
}

/// M/G/1 via the Pollaczek–Khinchine formula.
#[derive(Debug, Clone, Copy)]
pub struct MG1 {
    /// Arrival rate λ.
    pub lambda: f64,
    /// Mean service time E\[S\].
    pub es: f64,
    /// Squared coefficient of variation of service: Var\[S\]/E\[S\]².
    pub scv: f64,
}

impl MG1 {
    /// Creates a stable station; panics if ρ = λ·E\[S\] ≥ 1.
    pub fn new(lambda: f64, es: f64, scv: f64) -> Self {
        assert!(lambda > 0.0 && es > 0.0 && scv >= 0.0);
        assert!(lambda * es < 1.0, "unstable: rho >= 1");
        MG1 { lambda, es, scv }
    }

    /// Utilization ρ = λE\[S\].
    pub fn rho(&self) -> f64 {
        self.lambda * self.es
    }

    /// Mean waiting time (P–K): Wq = λE\[S²\]/(2(1−ρ)).
    pub fn wq(&self) -> f64 {
        let es2 = self.es * self.es * (1.0 + self.scv);
        self.lambda * es2 / (2.0 * (1.0 - self.rho()))
    }

    /// Mean time in system.
    pub fn w(&self) -> f64 {
        self.wq() + self.es
    }

    /// Mean number in system (Little).
    pub fn l(&self) -> f64 {
        self.lambda * self.w()
    }
}

/// M/D/1: deterministic service — the M/G/1 special case with SCV 0.
/// This is the analytic model of a network link serializing fixed-size
/// packets, used to validate the packet substrate in E11.
#[derive(Debug, Clone, Copy)]
pub struct MD1 {
    inner: MG1,
}

impl MD1 {
    /// Creates a stable station with fixed service time `d`.
    pub fn new(lambda: f64, d: f64) -> Self {
        MD1 {
            inner: MG1::new(lambda, d, 0.0),
        }
    }

    /// Utilization.
    pub fn rho(&self) -> f64 {
        self.inner.rho()
    }

    /// Mean waiting time: half the M/M/1 value at equal ρ.
    pub fn wq(&self) -> f64 {
        self.inner.wq()
    }

    /// Mean time in system.
    pub fn w(&self) -> f64 {
        self.inner.w()
    }

    /// Mean number in system.
    pub fn l(&self) -> f64 {
        self.inner.l()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_values() {
        // λ=2, μ=3: ρ=2/3, L=2, W=1, Wq=2/3, Lq=4/3
        let q = MM1::new(2.0, 3.0);
        assert!((q.rho() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.l() - 2.0).abs() < 1e-12);
        assert!((q.w() - 1.0).abs() < 1e-12);
        assert!((q.wq() - 2.0 / 3.0).abs() < 1e-12);
        assert!((q.lq() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mm1_littles_law() {
        let q = MM1::new(0.7, 1.0);
        assert!((q.l() - q.lambda * q.w()).abs() < 1e-12);
        assert!((q.lq() - q.lambda * q.wq()).abs() < 1e-12);
    }

    #[test]
    fn mm1_probabilities_sum_to_one() {
        let q = MM1::new(0.8, 1.0);
        let total: f64 = (0..200).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn mm1_unstable_rejected() {
        MM1::new(1.0, 1.0);
    }

    #[test]
    fn mmc_reduces_to_mm1_for_c1() {
        let a = MM1::new(0.6, 1.0);
        let b = MMC::new(0.6, 1.0, 1);
        assert!((a.lq() - b.lq()).abs() < 1e-10);
        assert!((a.w() - b.w()).abs() < 1e-10);
    }

    #[test]
    fn mmc_textbook_value() {
        // λ=2, μ=1, c=3: a=2, ρ=2/3; Erlang C = 4/9 ≈ 0.4444;
        // Lq = C·ρ/(1−ρ) = 8/9; W = Wq + 1 = 4/9 + 1
        let q = MMC::new(2.0, 1.0, 3);
        assert!((q.p_wait() - 4.0 / 9.0).abs() < 1e-9, "{}", q.p_wait());
        assert!((q.lq() - 8.0 / 9.0).abs() < 1e-9);
        assert!((q.wq() - 4.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn mmc_more_servers_less_waiting() {
        let w2 = MMC::new(1.5, 1.0, 2).wq();
        let w4 = MMC::new(1.5, 1.0, 4).wq();
        assert!(w4 < w2);
    }

    #[test]
    fn mm1k_blocks_and_bounds() {
        let q = MM1K::new(2.0, 1.0, 5); // overloaded but bounded
        let total: f64 = (0..=5).map(|n| q.p_n(n)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(q.p_block() > 0.4, "heavy overload blocks a lot");
        assert!(q.l() <= 5.0);
        assert!(q.lambda_eff() < 1.0 + 1e-9, "throughput capped by mu");
    }

    #[test]
    fn mm1k_rho_one_uniform() {
        let q = MM1K::new(1.0, 1.0, 4);
        for n in 0..=4 {
            assert!((q.p_n(n) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn mm1k_converges_to_mm1_for_large_k() {
        let bounded = MM1K::new(0.5, 1.0, 60);
        let unbounded = MM1::new(0.5, 1.0);
        assert!((bounded.l() - unbounded.l()).abs() < 1e-6);
    }

    #[test]
    fn mg1_with_scv1_is_mm1() {
        let pk = MG1::new(0.7, 1.0, 1.0);
        let mm = MM1::new(0.7, 1.0);
        assert!((pk.wq() - mm.wq()).abs() < 1e-12);
        assert!((pk.l() - mm.l()).abs() < 1e-12);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        let md = MD1::new(0.7, 1.0);
        let mm = MM1::new(0.7, 1.0);
        assert!((md.wq() - mm.wq() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mg1_variance_hurts() {
        let low = MG1::new(0.7, 1.0, 0.5);
        let high = MG1::new(0.7, 1.0, 4.0);
        assert!(high.wq() > low.wq());
    }
}
