//! `lsds-queueing` — analytical queueing models and simulation validation.
//!
//! §5 of the paper identifies queueing theory as the key validation
//! mechanism for LSDS simulators: "the formalism provided by the queuing
//! models is important for the definition and validation of the simulation
//! stochastic models. They provide an analytical model to the problem of
//! testing the randomness introduced by various mathematical
//! distributions."
//!
//! This crate provides the closed forms (M/M/1, M/M/c, M/M/1/K, M/D/1,
//! M/G/1 via Pollaczek–Khinchine, Erlang B/C, open Jackson networks) and a
//! generic simulated station ([`validate::Station`]) so experiment E11 can
//! hold every stochastic substrate in the workspace against theory —
//! computing nodes as M/M/c, deterministic-service links as M/D/1, and
//! multi-hop paths as Jackson networks, exactly the per-component
//! validation regime the paper prescribes.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod erlang;
pub mod jackson;
pub mod markov;
pub mod validate;

pub use erlang::{erlang_b, erlang_c};
pub use jackson::{JacksonNetwork, NodeResult};
pub use markov::{MD1, MG1, MM1, MM1K, MMC};
pub use validate::{simulate_station, Station, StationResult};
