//! Simulated G/G/c station for validation against the closed forms.
//!
//! "A well-design simulator must present comparisons between experiments
//! modeling small distributed systems against equivalent real-world
//! testbeds … If this simplified form of evaluation is conducted for each
//! of the simulated component a general conclusion can be drawn, with
//! higher confidence, for the entire simulation model" (§5). In place of
//! a physical testbed the analytic models play the reference role: this
//! module simulates a single queueing station on the `lsds-core` engine
//! and reports the estimators the closed forms predict.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_stats::{Dist, SimRng, Summary, TimeWeighted};
use std::collections::VecDeque;

/// A single queueing station specification.
#[derive(Debug, Clone)]
pub struct Station {
    /// Inter-arrival time distribution.
    pub interarrival: Dist,
    /// Service time distribution.
    pub service: Dist,
    /// Number of identical servers.
    pub servers: u32,
    /// System capacity (including in-service); `None` = unbounded.
    pub capacity: Option<u32>,
}

/// Measured station behavior.
#[derive(Debug, Clone)]
pub struct StationResult {
    /// Jobs that completed service.
    pub completed: u64,
    /// Arrivals rejected by a full system.
    pub blocked: u64,
    /// Arrivals (admitted + blocked).
    pub arrivals: u64,
    /// Mean time in system (admitted jobs).
    pub mean_w: f64,
    /// Mean waiting time before service.
    pub mean_wq: f64,
    /// Time-average number in system.
    pub time_avg_l: f64,
    /// Time-average busy servers / server count.
    pub utilization: f64,
    /// 95% CI half-width of the mean time in system.
    pub w_ci: f64,
}

enum Ev {
    Arrival,
    Departure,
}

struct StationModel {
    spec: Station,
    rng: SimRng,
    busy: u32,
    queue: VecDeque<SimTime>,
    in_service_since: VecDeque<SimTime>,
    warmup: f64,
    w: Summary,
    wq: Summary,
    l: TimeWeighted,
    busy_tw: TimeWeighted,
    completed: u64,
    blocked: u64,
    arrivals: u64,
    horizon: f64,
}

impl StationModel {
    fn in_system(&self) -> u32 {
        self.busy + self.queue.len() as u32
    }

    fn start_service(&mut self, arrived: SimTime, ctx: &mut Ctx<'_, Ev>) {
        self.busy += 1;
        self.busy_tw.update(ctx.now().seconds(), self.busy as f64);
        if ctx.now().seconds() >= self.warmup && arrived.seconds() >= self.warmup {
            self.wq.add(ctx.now() - arrived);
        }
        self.in_service_since.push_back(arrived);
        let s = self.spec.service.sample_at_least(&mut self.rng, 1e-12);
        ctx.schedule_in(s, Ev::Departure);
    }
}

impl Model for StationModel {
    type Event = Ev;

    fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
        let now = ctx.now().seconds();
        match ev {
            Ev::Arrival => {
                // next arrival
                if now < self.horizon {
                    let dt = self.spec.interarrival.sample_at_least(&mut self.rng, 1e-12);
                    ctx.schedule_in(dt, Ev::Arrival);
                }
                self.arrivals += 1;
                if let Some(cap) = self.spec.capacity {
                    if self.in_system() >= cap {
                        self.blocked += 1;
                        return;
                    }
                }
                self.l.update(now, self.in_system() as f64 + 1.0);
                if self.busy < self.spec.servers {
                    self.start_service(ctx.now(), ctx);
                } else {
                    self.queue.push_back(ctx.now());
                }
            }
            Ev::Departure => {
                // FIFO: the longest-serving job leaves (exact identity is
                // irrelevant for the collected statistics)
                let arrived = self
                    .in_service_since
                    .pop_front()
                    .expect("departure with no job in service");
                self.busy -= 1;
                self.completed += 1;
                self.l.update(now, self.in_system() as f64);
                self.busy_tw.update(now, self.busy as f64);
                if now >= self.warmup && arrived.seconds() >= self.warmup {
                    self.w.add(ctx.now() - arrived);
                }
                if let Some(next) = self.queue.pop_front() {
                    self.start_service(next, ctx);
                }
            }
        }
    }
}

/// Simulates the station for `horizon` simulated seconds. Sojourn-time
/// samples are collected after a warm-up of `0.1 × horizon`; time-average
/// estimators run from an empty start, whose bias is negligible at the
/// horizons the validation uses.
pub fn simulate_station(spec: &Station, horizon: f64, seed: u64) -> StationResult {
    assert!(horizon > 0.0);
    let warmup = 0.1 * horizon;
    let model = StationModel {
        spec: spec.clone(),
        rng: SimRng::new(seed),
        busy: 0,
        queue: VecDeque::new(),
        in_service_since: VecDeque::new(),
        warmup,
        w: Summary::new(),
        wq: Summary::new(),
        l: TimeWeighted::new(0.0, 0.0),
        busy_tw: TimeWeighted::new(0.0, 0.0),
        completed: 0,
        blocked: 0,
        arrivals: 0,
        horizon,
    };
    let mut sim = EventDriven::new(model);
    sim.schedule(SimTime::ZERO, Ev::Arrival);
    sim.run_until(SimTime::new(horizon));
    let m = sim.model();
    StationResult {
        completed: m.completed,
        blocked: m.blocked,
        arrivals: m.arrivals,
        mean_w: m.w.mean(),
        mean_wq: m.wq.mean(),
        time_avg_l: m.l.average(horizon),
        utilization: m.busy_tw.average(horizon) / m.spec.servers as f64,
        w_ci: m.w.ci_half_width(0.95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::{MD1, MM1, MM1K, MMC};

    fn rel_err(measured: f64, analytic: f64) -> f64 {
        (measured - analytic).abs() / analytic
    }

    #[test]
    fn mm1_simulation_matches_theory() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 0.7 },
            service: Dist::Exponential { rate: 1.0 },
            servers: 1,
            capacity: None,
        };
        let r = simulate_station(&spec, 200_000.0, 42);
        let q = MM1::new(0.7, 1.0);
        assert!(
            rel_err(r.mean_w, q.w()) < 0.05,
            "W {} vs {}",
            r.mean_w,
            q.w()
        );
        assert!(
            rel_err(r.mean_wq, q.wq()) < 0.05,
            "Wq {} vs {}",
            r.mean_wq,
            q.wq()
        );
        assert!(
            rel_err(r.time_avg_l, q.l()) < 0.05,
            "L {} vs {}",
            r.time_avg_l,
            q.l()
        );
        assert!(rel_err(r.utilization, q.rho()) < 0.02);
        assert_eq!(r.blocked, 0);
    }

    #[test]
    fn mmc_simulation_matches_theory() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 2.0 },
            service: Dist::Exponential { rate: 1.0 },
            servers: 3,
            capacity: None,
        };
        let r = simulate_station(&spec, 200_000.0, 7);
        let q = MMC::new(2.0, 1.0, 3);
        assert!(
            rel_err(r.mean_w, q.w()) < 0.05,
            "W {} vs {}",
            r.mean_w,
            q.w()
        );
        assert!(rel_err(r.time_avg_l, q.l()) < 0.05);
        assert!(rel_err(r.utilization, q.rho()) < 0.02);
    }

    #[test]
    fn md1_simulation_matches_pollaczek_khinchine() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 0.7 },
            service: Dist::constant(1.0),
            servers: 1,
            capacity: None,
        };
        let r = simulate_station(&spec, 200_000.0, 9);
        let q = MD1::new(0.7, 1.0);
        assert!(
            rel_err(r.mean_wq, q.wq()) < 0.05,
            "Wq {} vs {}",
            r.mean_wq,
            q.wq()
        );
    }

    #[test]
    fn mm1k_simulation_matches_blocking() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 2.0 },
            service: Dist::Exponential { rate: 1.0 },
            servers: 1,
            capacity: Some(5),
        };
        let r = simulate_station(&spec, 200_000.0, 11);
        let q = MM1K::new(2.0, 1.0, 5);
        let measured_block = r.blocked as f64 / r.arrivals as f64;
        assert!(
            rel_err(measured_block, q.p_block()) < 0.05,
            "block {measured_block} vs {}",
            q.p_block()
        );
        assert!(rel_err(r.time_avg_l, q.l()) < 0.05);
    }

    #[test]
    fn deterministic_under_seed() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 0.5 },
            service: Dist::Exponential { rate: 1.0 },
            servers: 1,
            capacity: None,
        };
        let a = simulate_station(&spec, 10_000.0, 3);
        let b = simulate_station(&spec, 10_000.0, 3);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_w, b.mean_w);
    }

    #[test]
    fn ci_shrinks_with_horizon() {
        let spec = Station {
            interarrival: Dist::Exponential { rate: 0.5 },
            service: Dist::Exponential { rate: 1.0 },
            servers: 1,
            capacity: None,
        };
        let short = simulate_station(&spec, 5_000.0, 3);
        let long = simulate_station(&spec, 500_000.0, 3);
        assert!(long.w_ci < short.w_ci);
    }
}
