//! Erlang B and C formulas.
//!
//! Erlang B gives the blocking probability of an M/M/c/c loss system
//! (c servers, no queue); Erlang C gives the probability an arrival waits
//! in an M/M/c delay system. Both are computed with the standard
//! numerically stable recurrences rather than raw factorials.

/// Erlang B: blocking probability with `c` servers and offered load `a`
/// Erlangs. Computed by the recurrence
/// `B(0) = 1; B(k) = a·B(k−1) / (k + a·B(k−1))`.
pub fn erlang_b(c: u32, a: f64) -> f64 {
    assert!(a >= 0.0, "offered load must be non-negative");
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (k as f64 + a * b);
    }
    b
}

/// Erlang C: probability of waiting with `c` servers and offered load `a`
/// Erlangs (requires `a < c` for stability). Derived from Erlang B via
/// `C = c·B / (c − a(1−B))`.
pub fn erlang_c(c: u32, a: f64) -> f64 {
    assert!(a >= 0.0 && a < c as f64, "need a < c");
    let b = erlang_b(c, a);
    let c_f = c as f64;
    c_f * b / (c_f - a * (1.0 - b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erlang_b_single_server() {
        // B(1, a) = a / (1 + a)
        for a in [0.1, 0.5, 1.0, 2.0, 10.0] {
            assert!((erlang_b(1, a) - a / (1.0 + a)).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_b_textbook_value() {
        // classic: c=5, a=3 → B ≈ 0.1101
        let b = erlang_b(5, 3.0);
        assert!((b - 0.11005).abs() < 1e-4, "{b}");
    }

    #[test]
    fn erlang_b_monotone_in_load_and_servers() {
        assert!(erlang_b(5, 4.0) > erlang_b(5, 2.0));
        assert!(erlang_b(10, 4.0) < erlang_b(5, 4.0));
    }

    #[test]
    fn erlang_b_zero_load() {
        assert_eq!(erlang_b(3, 0.0), 0.0);
    }

    #[test]
    fn erlang_c_single_server_is_rho() {
        // C(1, a) = a for a < 1 (an arrival waits iff the server is busy)
        for a in [0.2, 0.5, 0.9] {
            assert!((erlang_c(1, a) - a).abs() < 1e-12);
        }
    }

    #[test]
    fn erlang_c_textbook_value() {
        // c=3, a=2 → C = 4/9
        assert!((erlang_c(3, 2.0) - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_c_exceeds_erlang_b() {
        // queueing delays more arrivals than pure loss blocks
        for (c, a) in [(3, 2.0), (5, 3.0), (10, 8.0)] {
            assert!(erlang_c(c, a) > erlang_b(c, a));
        }
    }

    #[test]
    fn erlang_c_bounded_by_one() {
        assert!(erlang_c(4, 3.999) <= 1.0);
        assert!(erlang_c(4, 3.999) > 0.95);
    }
}
