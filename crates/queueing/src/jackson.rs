//! Open Jackson networks.
//!
//! A network of M/M/c stations with Markovian routing has a product-form
//! solution: solve the traffic equations `λ_i = γ_i + Σ_j λ_j p_{ji}`,
//! then treat each station as an independent M/M/c_i with arrival rate
//! λ_i. This is the analytic model for multi-hop grid paths (job chain:
//! broker → CPU → storage) in validation experiment E11.

use crate::markov::MMC;

/// Per-node solution of a Jackson network.
#[derive(Debug, Clone, Copy)]
pub struct NodeResult {
    /// Effective arrival rate λ_i from the traffic equations.
    pub lambda: f64,
    /// Per-server utilization.
    pub rho: f64,
    /// Mean number in system at this node.
    pub l: f64,
    /// Mean time in system per visit.
    pub w: f64,
}

/// An open Jackson network.
#[derive(Debug, Clone)]
pub struct JacksonNetwork {
    /// External Poisson arrival rate into each node (γ_i).
    pub external: Vec<f64>,
    /// Routing matrix: `routing[i][j]` = P(job leaving i goes to j); row
    /// sums ≤ 1, the deficit is the departure probability.
    pub routing: Vec<Vec<f64>>,
    /// Per-node service rate μ_i.
    pub mu: Vec<f64>,
    /// Per-node server count c_i.
    pub servers: Vec<u32>,
}

impl JacksonNetwork {
    /// Validates shapes and probability constraints.
    pub fn new(
        external: Vec<f64>,
        routing: Vec<Vec<f64>>,
        mu: Vec<f64>,
        servers: Vec<u32>,
    ) -> Self {
        let n = external.len();
        assert_eq!(routing.len(), n);
        assert_eq!(mu.len(), n);
        assert_eq!(servers.len(), n);
        for row in &routing {
            assert_eq!(row.len(), n);
            let sum: f64 = row.iter().sum();
            assert!(
                row.iter().all(|&p| (0.0..=1.0).contains(&p)) && sum <= 1.0 + 1e-12,
                "bad routing row"
            );
        }
        JacksonNetwork {
            external,
            routing,
            mu,
            servers,
        }
    }

    /// Solves the traffic equations by fixed-point iteration (the open
    /// network's spectral radius < 1 guarantees convergence).
    #[allow(clippy::needless_range_loop)] // matrix indexing reads clearer
    pub fn traffic(&self) -> Vec<f64> {
        let n = self.external.len();
        let mut lambda = self.external.clone();
        for _ in 0..10_000 {
            let mut next = self.external.clone();
            for j in 0..n {
                for i in 0..n {
                    next[j] += lambda[i] * self.routing[i][j];
                }
            }
            let diff: f64 = lambda.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            lambda = next;
            if diff < 1e-13 {
                break;
            }
        }
        lambda
    }

    /// Solves every node; panics if any node is unstable.
    pub fn solve(&self) -> Vec<NodeResult> {
        let lambda = self.traffic();
        lambda
            .iter()
            .enumerate()
            .map(|(i, &li)| {
                if li <= 0.0 {
                    return NodeResult {
                        lambda: 0.0,
                        rho: 0.0,
                        l: 0.0,
                        w: 0.0,
                    };
                }
                let station = MMC::new(li, self.mu[i], self.servers[i]);
                NodeResult {
                    lambda: li,
                    rho: station.rho(),
                    l: station.l(),
                    w: station.w(),
                }
            })
            .collect()
    }

    /// Total mean number of jobs in the network.
    pub fn total_l(&self) -> f64 {
        self.solve().iter().map(|r| r.l).sum()
    }

    /// Mean end-to-end sojourn time of an external arrival (Little over
    /// the whole network).
    pub fn total_w(&self) -> f64 {
        let gamma: f64 = self.external.iter().sum();
        assert!(gamma > 0.0, "no external arrivals");
        self.total_l() / gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::markov::MM1;

    #[test]
    fn single_node_is_mm1() {
        let net = JacksonNetwork::new(vec![0.5], vec![vec![0.0]], vec![1.0], vec![1]);
        let r = &net.solve()[0];
        let mm1 = MM1::new(0.5, 1.0);
        assert!((r.l - mm1.l()).abs() < 1e-9);
        assert!((r.w - mm1.w()).abs() < 1e-9);
    }

    #[test]
    fn tandem_line_traffic() {
        // A → B → out: both see the same λ
        let net = JacksonNetwork::new(
            vec![0.4, 0.0],
            vec![vec![0.0, 1.0], vec![0.0, 0.0]],
            vec![1.0, 2.0],
            vec![1, 1],
        );
        let lambda = net.traffic();
        assert!((lambda[0] - 0.4).abs() < 1e-9);
        assert!((lambda[1] - 0.4).abs() < 1e-9);
        // end-to-end W = W1 + W2 for a tandem line
        let w = net.total_w();
        let expect = MM1::new(0.4, 1.0).w() + MM1::new(0.4, 2.0).w();
        assert!((w - expect).abs() < 1e-9);
    }

    #[test]
    fn feedback_loop_inflates_traffic() {
        // one node, 30% feedback: λ = γ/(1−0.3)
        let net = JacksonNetwork::new(vec![0.35], vec![vec![0.3]], vec![1.0], vec![1]);
        let lambda = net.traffic();
        assert!((lambda[0] - 0.5).abs() < 1e-9, "{}", lambda[0]);
    }

    #[test]
    fn three_node_grid_chain() {
        // broker → {cpu 70%, storage 30%}; cpu → storage 50%, out 50%;
        // storage → out
        let net = JacksonNetwork::new(
            vec![1.0, 0.0, 0.0],
            vec![
                vec![0.0, 0.7, 0.3],
                vec![0.0, 0.0, 0.5],
                vec![0.0, 0.0, 0.0],
            ],
            vec![2.0, 1.0, 1.5],
            vec![1, 2, 1],
        );
        let lambda = net.traffic();
        assert!((lambda[0] - 1.0).abs() < 1e-9);
        assert!((lambda[1] - 0.7).abs() < 1e-9);
        assert!((lambda[2] - (0.3 + 0.35)).abs() < 1e-9);
        assert!(net.total_l() > 0.0);
        assert!(net.total_w() > 0.0);
    }

    #[test]
    fn multi_server_node_uses_mmc() {
        let net = JacksonNetwork::new(vec![2.0], vec![vec![0.0]], vec![1.0], vec![3]);
        let r = &net.solve()[0];
        let mmc = MMC::new(2.0, 1.0, 3);
        assert!((r.l - mmc.l()).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn unstable_node_panics() {
        let net = JacksonNetwork::new(vec![2.0], vec![vec![0.0]], vec![1.0], vec![1]);
        net.solve();
    }
}
