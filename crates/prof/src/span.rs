//! The span record: one handled event, with its causal parent.

/// Sentinel parent id for spans with no recorded cause — events scheduled
/// from outside any handler (initial events, replayed trace records).
pub const NO_PARENT: u64 = u64::MAX;

/// Sentinel tag for spans that carry no domain id (flow id, job id, …).
pub const NO_TAG: u64 = u64::MAX;

/// A static label plus an optional domain id, classifying a span.
///
/// `name` is the handler kind (`"net.flow_complete"`, `"grid.submit"`, …)
/// and `tag` an optional entity id within that kind — a flow id, job id, or
/// site index — so exported traces can be filtered per entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanKind {
    /// Handler kind label; one histogram per distinct name.
    pub name: &'static str,
    /// Domain id within the kind, or [`NO_TAG`].
    pub tag: u64,
}

impl SpanKind {
    /// The kind models fall back to when they don't classify events.
    pub const DEFAULT: SpanKind = SpanKind::new("event");

    /// An untagged kind.
    pub const fn new(name: &'static str) -> Self {
        SpanKind { name, tag: NO_TAG }
    }

    /// A kind carrying a domain id (flow, job, site, …).
    pub const fn tagged(name: &'static str, tag: u64) -> Self {
        SpanKind { name, tag }
    }
}

impl Default for SpanKind {
    fn default() -> Self {
        SpanKind::DEFAULT
    }
}

/// One handled event: identity, causal parent, location, and cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Unique event id within the run (the engine's scheduling sequence
    /// number; the cross-LP tie key in the parallel engines).
    pub id: u64,
    /// Id of the event whose handler scheduled this one, or [`NO_PARENT`].
    pub parent: u64,
    /// Track the event was handled on: entity index or LP id.
    pub track: u32,
    /// Virtual (simulated) time the event was delivered at.
    pub vt: f64,
    /// Wall-clock nanoseconds the handler took.
    pub wall_ns: u64,
    /// Handler classification.
    pub kind: SpanKind,
}
