//! Post-run trace containers and analyses: deterministic merge,
//! per-handler wall-time profiles, and the virtual-time critical path.

use crate::span::{Span, NO_PARENT};
use lsds_stats::Summary;
use std::collections::BTreeMap;

/// A collected run trace: spans ordered by `(virtual time, event id)`.
///
/// Named `SpanTrace` (not `Trace`) because `lsds-trace` already exports a
/// `Trace` of monitored input records; this is the *output* causality DAG.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTrace {
    /// The retained spans, sorted by `(vt, id)`.
    pub spans: Vec<Span>,
    /// Spans lost to ring-buffer eviction (not sampling).
    pub dropped: u64,
}

impl SpanTrace {
    /// An empty trace.
    pub fn new() -> Self {
        SpanTrace::default()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the trace holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Restores the canonical `(vt, id)` order.
    pub fn sort(&mut self) {
        self.spans
            .sort_by(|a, b| a.vt.total_cmp(&b.vt).then(a.id.cmp(&b.id)));
    }

    /// Merges per-LP traces into one, deterministically ordered by
    /// `(vt, id)`. Event ids are unique across LPs (the cross-LP tie
    /// key embeds the source LP), so the merged order is total and
    /// independent of thread interleaving.
    pub fn merge(parts: Vec<SpanTrace>) -> SpanTrace {
        let mut out = SpanTrace::new();
        for part in parts {
            out.dropped += part.dropped;
            out.spans.extend(part.spans);
        }
        out.sort();
        out
    }

    /// Per-handler-kind wall-time profile.
    pub fn profile(&self) -> HandlerProfile {
        let mut by_kind: BTreeMap<&'static str, Summary> = BTreeMap::new();
        for s in &self.spans {
            by_kind
                .entry(s.kind.name)
                .or_default()
                .add(s.wall_ns as f64);
        }
        HandlerProfile {
            kinds: by_kind
                .into_iter()
                .map(|(name, wall_ns)| KindProfile { name, wall_ns })
                .collect(),
        }
    }

    /// Total handler wall-time per track (entity/LP id), in nanoseconds.
    ///
    /// This is the measured-cost vector profile-guided partitioning
    /// consumes (`lsds-parallel`'s `partition::profiled_from_trace`):
    /// index `i` is the wall time spent handling events on track `i`.
    /// Spans on tracks `≥ n_tracks` are ignored (they belong to an
    /// entity outside the requested range).
    pub fn track_costs(&self, n_tracks: usize) -> Vec<f64> {
        let mut costs = vec![0.0; n_tracks];
        for s in &self.spans {
            if let Some(c) = costs.get_mut(s.track as usize) {
                *c += s.wall_ns as f64;
            }
        }
        costs
    }

    /// Extracts the longest virtual-time-weighted causal chain.
    ///
    /// Every event has exactly one causal parent, so the causality DAG is
    /// a forest and the virtual-time weight of any root-to-span chain
    /// telescopes to the final span's delivery time. The critical path is
    /// therefore the parent chain ending at the latest-delivered span
    /// (ties broken by id, matching engine delivery order).
    ///
    /// `complete` is `false` when the walk stops at a span whose recorded
    /// parent was evicted or sampled away, i.e. the head of the chain is
    /// missing from the trace.
    pub fn critical_path(&self) -> CriticalPath {
        let mut by_id: BTreeMap<u64, &Span> = BTreeMap::new();
        for s in &self.spans {
            by_id.insert(s.id, s);
        }
        // latest (vt, id): last span in canonical order, or scan if unsorted
        let last = self
            .spans
            .iter()
            .max_by(|a, b| a.vt.total_cmp(&b.vt).then(a.id.cmp(&b.id)));
        let Some(last) = last else {
            return CriticalPath {
                steps: Vec::new(),
                makespan: 0.0,
                complete: true,
            };
        };
        let mut rev: Vec<&Span> = Vec::new();
        let mut cur = last;
        let mut complete = true;
        loop {
            rev.push(cur);
            if cur.parent == NO_PARENT {
                break;
            }
            match by_id.get(&cur.parent) {
                // cycle guard: a corrupt trace must not hang the walker
                Some(p) if rev.len() <= self.spans.len() => cur = p,
                _ => {
                    complete = false;
                    break;
                }
            }
        }
        rev.reverse();
        let mut steps = Vec::with_capacity(rev.len());
        let mut prev_vt = 0.0;
        for s in rev {
            steps.push(CriticalStep {
                id: s.id,
                kind: s.kind,
                track: s.track,
                vt: s.vt,
                vt_delta: s.vt - prev_vt,
                wall_ns: s.wall_ns,
            });
            prev_vt = s.vt;
        }
        CriticalPath {
            makespan: last.vt,
            steps,
            complete,
        }
    }
}

/// Wall-time statistics for one handler kind.
#[derive(Debug, Clone)]
pub struct KindProfile {
    /// Handler kind label.
    pub name: &'static str,
    /// Wall-clock nanoseconds per invocation (count, mean, percentiles).
    pub wall_ns: Summary,
}

/// Per-handler-kind wall-time profile, sorted by kind name.
#[derive(Debug, Clone, Default)]
pub struct HandlerProfile {
    /// One entry per distinct handler kind, name-sorted.
    pub kinds: Vec<KindProfile>,
}

impl HandlerProfile {
    /// Looks up a kind's profile by name.
    pub fn kind(&self, name: &str) -> Option<&KindProfile> {
        self.kinds.iter().find(|k| k.name == name)
    }
}

/// One hop on the critical path.
#[derive(Debug, Clone, Copy)]
pub struct CriticalStep {
    /// Event id of the span.
    pub id: u64,
    /// Handler classification.
    pub kind: crate::span::SpanKind,
    /// Entity/LP track the event ran on.
    pub track: u32,
    /// Virtual time the event was delivered at.
    pub vt: f64,
    /// Virtual time attributed to this hop (delivery minus the parent's
    /// delivery; for the chain head, delivery time itself).
    pub vt_delta: f64,
    /// Wall-clock nanoseconds the handler took.
    pub wall_ns: u64,
}

/// The longest virtual-time-weighted causal chain of a trace.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// The chain, causally ordered (root first).
    pub steps: Vec<CriticalStep>,
    /// Virtual time of the final span — the makespan the chain explains.
    pub makespan: f64,
    /// `false` when the chain head's parent was evicted or sampled away.
    pub complete: bool,
}

impl CriticalPath {
    /// Virtual time on the path attributed to each handler kind, sorted by
    /// descending share: `(kind name, total vt, hop count)`.
    pub fn by_kind(&self) -> Vec<(&'static str, f64, usize)> {
        let mut agg: BTreeMap<&'static str, (f64, usize)> = BTreeMap::new();
        for s in &self.steps {
            let e = agg.entry(s.kind.name).or_insert((0.0, 0));
            e.0 += s.vt_delta;
            e.1 += 1;
        }
        let mut out: Vec<(&'static str, f64, usize)> =
            agg.into_iter().map(|(k, (vt, n))| (k, vt, n)).collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(b.0)));
        out
    }

    /// Distinct tracks visited by the path, in first-appearance order.
    ///
    /// These are the entities whose handler chain bounds the makespan;
    /// profile-guided partitioning boosts their weight so the chain is
    /// spread across logical processes instead of queueing on one.
    pub fn tracks(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for s in &self.steps {
            if !out.contains(&s.track) {
                out.push(s.track);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    fn span(id: u64, parent: u64, vt: f64, name: &'static str) -> Span {
        Span {
            id,
            parent,
            track: 0,
            vt,
            wall_ns: 10 * (id + 1),
            kind: SpanKind::new(name),
        }
    }

    #[test]
    fn critical_path_walks_parents_to_root() {
        // two chains: 0→1→3 (ends vt 5.0) and 2→4 (ends vt 9.0)
        let trace = SpanTrace {
            spans: vec![
                span(0, NO_PARENT, 1.0, "a"),
                span(1, 0, 2.0, "b"),
                span(2, NO_PARENT, 3.0, "a"),
                span(3, 1, 5.0, "c"),
                span(4, 2, 9.0, "b"),
            ],
            dropped: 0,
        };
        let cp = trace.critical_path();
        assert!(cp.complete);
        assert_eq!(cp.makespan, 9.0);
        let ids: Vec<u64> = cp.steps.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 4]);
        assert_eq!(cp.steps[0].vt_delta, 3.0);
        assert_eq!(cp.steps[1].vt_delta, 6.0);
        // deltas telescope to the makespan
        let total: f64 = cp.steps.iter().map(|s| s.vt_delta).sum();
        assert_eq!(total, cp.makespan);
        let by_kind = cp.by_kind();
        assert_eq!(by_kind[0], ("b", 6.0, 1));
        assert_eq!(by_kind[1], ("a", 3.0, 1));
    }

    #[test]
    fn critical_path_reports_incomplete_on_missing_parent() {
        let trace = SpanTrace {
            spans: vec![span(7, 3, 4.0, "x")], // parent 3 was evicted
            dropped: 1,
        };
        let cp = trace.critical_path();
        assert!(!cp.complete);
        assert_eq!(cp.steps.len(), 1);
        assert_eq!(cp.steps[0].id, 7);
    }

    #[test]
    fn critical_path_of_empty_trace_is_empty() {
        let cp = SpanTrace::new().critical_path();
        assert!(cp.steps.is_empty());
        assert!(cp.complete);
        assert_eq!(cp.makespan, 0.0);
    }

    #[test]
    fn critical_path_survives_parent_cycles() {
        // corrupt input: 1 and 2 claim each other as parents
        let trace = SpanTrace {
            spans: vec![span(1, 2, 1.0, "x"), span(2, 1, 2.0, "x")],
            dropped: 0,
        };
        let cp = trace.critical_path();
        assert!(!cp.complete);
        assert!(cp.steps.len() <= 3);
    }

    #[test]
    fn merge_is_deterministic_and_order_independent() {
        let a = SpanTrace {
            spans: vec![span(10, NO_PARENT, 2.0, "a"), span(12, 10, 4.0, "a")],
            dropped: 1,
        };
        let b = SpanTrace {
            spans: vec![span(11, NO_PARENT, 2.0, "b"), span(13, 11, 3.0, "b")],
            dropped: 2,
        };
        let m1 = SpanTrace::merge(vec![a.clone(), b.clone()]);
        let m2 = SpanTrace::merge(vec![b, a]);
        assert_eq!(m1, m2);
        assert_eq!(m1.dropped, 3);
        let ids: Vec<u64> = m1.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![10, 11, 13, 12]);
    }

    #[test]
    fn track_costs_sum_wall_time_per_track() {
        let mut s0 = span(0, NO_PARENT, 1.0, "a"); // wall 10
        let mut s1 = span(1, 0, 2.0, "a"); // wall 20
        let mut s2 = span(2, 1, 3.0, "a"); // wall 30
        s0.track = 0;
        s1.track = 2;
        s2.track = 2;
        let out_of_range = Span {
            track: 9,
            ..span(3, 2, 4.0, "a")
        };
        let trace = SpanTrace {
            spans: vec![s0, s1, s2, out_of_range],
            dropped: 0,
        };
        assert_eq!(trace.track_costs(3), vec![10.0, 0.0, 50.0]);
        assert_eq!(trace.track_costs(0), Vec::<f64>::new());
    }

    #[test]
    fn critical_path_tracks_dedup_in_order() {
        let mut s0 = span(0, NO_PARENT, 1.0, "a");
        let mut s1 = span(1, 0, 2.0, "a");
        let mut s2 = span(2, 1, 3.0, "a");
        s0.track = 4;
        s1.track = 1;
        s2.track = 4;
        let trace = SpanTrace {
            spans: vec![s0, s1, s2],
            dropped: 0,
        };
        let cp = trace.critical_path();
        assert_eq!(cp.tracks(), vec![4, 1]);
    }

    #[test]
    fn profile_groups_by_kind_name() {
        let trace = SpanTrace {
            spans: vec![
                span(0, NO_PARENT, 1.0, "a"),
                span(1, 0, 2.0, "b"),
                span(2, 1, 3.0, "a"),
            ],
            dropped: 0,
        };
        let prof = trace.profile();
        assert_eq!(prof.kinds.len(), 2);
        let a = prof.kind("a").expect("kind a profiled");
        assert_eq!(a.wall_ns.count(), 2);
        assert_eq!(a.wall_ns.min(), 10.0);
        assert_eq!(a.wall_ns.max(), 30.0);
        assert!(prof.kind("b").is_some());
        assert!(prof.kind("zzz").is_none());
    }
}
