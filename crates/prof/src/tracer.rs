//! The engine-side tracing hook: zero-cost no-op and the ring-buffer
//! collector.

use crate::analysis::SpanTrace;
use crate::span::{Span, SpanKind};
use std::collections::VecDeque;
use std::time::Instant;

/// Hook the engines invoke around every delivered event.
///
/// Mirrors `lsds_obs`'s `Recorder` zero-cost pattern: engines are generic
/// over `T: Tracer` with [`NoopTracer`] as the default, so untraced builds
/// monomorphize the hooks away entirely. `ENABLED` lets engines skip even
/// the computation of a [`SpanKind`] when the tracer is the no-op.
///
/// A tracer only *observes*. It must never influence scheduling, event
/// ordering, or model state — traced runs are required (and property
/// tested) to be bit-identical to untraced runs.
pub trait Tracer {
    /// `false` for the no-op tracer; engines guard kind computation on it.
    const ENABLED: bool;

    /// Carried from [`Tracer::begin`] to [`Tracer::record`] across the
    /// handler call (the wall-clock start, when the span is sampled in).
    type Token: Copy;

    /// Called immediately before the handler for event `id` runs.
    fn begin(&mut self, id: u64) -> Self::Token;

    /// Called immediately after the handler returns. `vt` is the virtual
    /// time the event was delivered at; `track` the entity/LP it ran on.
    fn record(
        &mut self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        track: u32,
        vt: f64,
        token: Self::Token,
    );

    /// Records a span whose wall time was measured externally, in one call.
    ///
    /// Optimistic engines execute events speculatively and may roll them
    /// back; they buffer `(kind, wall_ns)` per executed event and commit
    /// the span only once the event is irrevocable (behind GVT), so the
    /// `begin`/`record` bracket cannot be used. Each committed event is
    /// reported exactly once, keeping traced optimistic runs causally
    /// consistent with the final (post-rollback) execution.
    fn commit_span(
        &mut self,
        _id: u64,
        _parent: u64,
        _kind: SpanKind,
        _track: u32,
        _vt: f64,
        _wall_ns: u64,
    ) {
    }
}

/// The zero-cost default tracer: does nothing, costs nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    const ENABLED: bool = false;
    type Token = ();

    #[inline(always)]
    fn begin(&mut self, _id: u64) -> Self::Token {}

    #[inline(always)]
    fn record(
        &mut self,
        _id: u64,
        _parent: u64,
        _kind: SpanKind,
        _track: u32,
        _vt: f64,
        _token: Self::Token,
    ) {
    }
}

/// Configuration for a [`RingTracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum retained spans; the oldest are evicted past this.
    pub capacity: usize,
    /// Keep one span in `sample` (by event id); `1` keeps everything.
    pub sample: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 16,
            sample: 1,
        }
    }
}

impl TraceConfig {
    /// Config keeping every span, bounded at `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig {
            capacity,
            ..TraceConfig::default()
        }
    }

    /// Sets 1-in-`sample` sampling (`0` is treated as `1`: keep all).
    pub fn sampled(mut self, sample: u64) -> Self {
        self.sample = sample.max(1);
        self
    }
}

/// A bounded ring-buffer span collector with optional 1-in-N sampling.
///
/// Sampling is decided in [`Tracer::begin`] by event id, so skipped events
/// pay neither the wall-clock read nor the buffer write. When the ring is
/// full the *oldest* span is evicted (`dropped` counts evictions), keeping
/// the most recent window of the run.
#[derive(Debug, Clone)]
pub struct RingTracer {
    cfg: TraceConfig,
    spans: VecDeque<Span>,
    dropped: u64,
}

impl RingTracer {
    /// A tracer with the given config.
    pub fn new(cfg: TraceConfig) -> Self {
        RingTracer {
            cfg,
            spans: VecDeque::with_capacity(cfg.capacity.min(1 << 16)),
            dropped: 0,
        }
    }

    /// Spans evicted (ring overflow) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Spans currently retained.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The config this tracer was built with.
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Ring insert shared by [`Tracer::record`] and [`Tracer::commit_span`]:
    /// capacity 0 collects nothing, a full ring evicts the oldest span.
    #[inline]
    fn push_span(&mut self, span: Span) {
        if self.cfg.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.spans.len() >= self.cfg.capacity {
            self.spans.pop_front();
            self.dropped += 1;
        }
        self.spans.push_back(span);
    }

    /// Consumes the tracer, yielding the collected trace sorted by
    /// `(virtual time, event id)`.
    pub fn finish(self) -> SpanTrace {
        let mut trace = SpanTrace {
            spans: self.spans.into(),
            dropped: self.dropped,
        };
        trace.sort();
        trace
    }
}

impl Default for RingTracer {
    fn default() -> Self {
        RingTracer::new(TraceConfig::default())
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    /// `Some(start)` when the span is sampled in, `None` when skipped.
    type Token = Option<Instant>;

    #[inline]
    fn begin(&mut self, id: u64) -> Self::Token {
        if self.cfg.sample > 1 && !id.is_multiple_of(self.cfg.sample) {
            return None;
        }
        // lsds-lint: allow(wall-clock) reason="profiler measures host handler cost; never feeds back into simulated time"
        Some(Instant::now())
    }

    #[inline]
    fn record(
        &mut self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        track: u32,
        vt: f64,
        token: Self::Token,
    ) {
        let Some(start) = token else {
            return;
        };
        let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.push_span(Span {
            id,
            parent,
            track,
            vt,
            wall_ns,
            kind,
        });
    }

    #[inline]
    fn commit_span(
        &mut self,
        id: u64,
        parent: u64,
        kind: SpanKind,
        track: u32,
        vt: f64,
        wall_ns: u64,
    ) {
        // same 1-in-N policy `begin` applies, so sampled commit-time traces
        // match sampled record-time traces event-for-event
        if self.cfg.sample > 1 && !id.is_multiple_of(self.cfg.sample) {
            return;
        }
        self.push_span(Span {
            id,
            parent,
            track,
            vt,
            wall_ns,
            kind,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::NO_PARENT;

    fn record_n(tracer: &mut RingTracer, n: u64) {
        for i in 0..n {
            let tok = tracer.begin(i);
            tracer.record(i, NO_PARENT, SpanKind::new("k"), 0, i as f64, tok);
        }
    }

    #[test]
    fn noop_tracer_is_a_unit() {
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
        const _: () = assert!(!NoopTracer::ENABLED);
        let mut t = NoopTracer;
        t.begin(1);
        t.record(1, NO_PARENT, SpanKind::DEFAULT, 0, 0.0, ());
    }

    #[test]
    fn ring_overflow_evicts_oldest() {
        let mut tracer = RingTracer::new(TraceConfig::with_capacity(4));
        record_n(&mut tracer, 10);
        assert_eq!(tracer.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        let trace = tracer.finish();
        let ids: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9], "most recent window survives");
        assert_eq!(trace.dropped, 6);
    }

    #[test]
    fn sampling_keeps_one_in_n_without_counting_drops() {
        let mut tracer = RingTracer::new(TraceConfig::default().sampled(4));
        record_n(&mut tracer, 16);
        let trace = tracer.finish();
        let ids: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 4, 8, 12]);
        // sampled-out events are not "dropped": they were never collected
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn zero_capacity_collects_nothing() {
        let mut tracer = RingTracer::new(TraceConfig::with_capacity(0));
        record_n(&mut tracer, 3);
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 3);
    }

    #[test]
    fn finish_sorts_by_vt_then_id() {
        let mut tracer = RingTracer::default();
        let tok = tracer.begin(5);
        tracer.record(5, NO_PARENT, SpanKind::new("b"), 0, 2.0, tok);
        let tok = tracer.begin(3);
        tracer.record(3, NO_PARENT, SpanKind::new("a"), 0, 1.0, tok);
        let tok = tracer.begin(4);
        tracer.record(4, NO_PARENT, SpanKind::new("c"), 0, 1.0, tok);
        let trace = tracer.finish();
        let keys: Vec<(f64, u64)> = trace.spans.iter().map(|s| (s.vt, s.id)).collect();
        assert_eq!(keys, vec![(1.0, 3), (1.0, 4), (2.0, 5)]);
    }
}
