//! Causal event tracing and handler profiling for LSDS engines.
//!
//! The paper's scalability argument (Section 5) is that engine work must be
//! guided by visibility into where simulation time goes. PR 1's metrics
//! (`lsds-obs`) count *how much* happened; this crate records *why*: every
//! handled event becomes a [`Span`] carrying its causal parent, so the
//! collected trace is the event-causality DAG of the run. From it we derive
//! per-handler wall-time profiles and the virtual-time critical path — the
//! causal chain that bounds the makespan.
//!
//! The design rides the same zero-cost pattern as `lsds_obs`'s `Recorder`:
//! engines are generic over a [`Tracer`], the default [`NoopTracer`]
//! monomorphizes to nothing, and an enabled [`RingTracer`] only observes —
//! simulation results stay bit-identical with tracing on or off.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod analysis;
mod span;
mod tracer;

pub use analysis::{CriticalPath, CriticalStep, HandlerProfile, KindProfile, SpanTrace};
pub use span::{Span, SpanKind, NO_PARENT, NO_TAG};
pub use tracer::{NoopTracer, RingTracer, TraceConfig, Tracer};
