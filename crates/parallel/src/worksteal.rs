//! Work-stealing execution: logical processes decoupled from OS threads.
//!
//! The thread-per-LP engines ([`crate::cmb`], [`crate::timewarp`]) hand
//! scheduling to the OS the moment LPs outnumber cores — the common case
//! for fine-grained partitions (`BENCH_timewarp.json` ran 4 LPs on one
//! core), where a single slow LP stalls every null-message round while
//! its peers burn context switches. This engine inverts the mapping: a
//! fixed pool of **worker threads** pulls *runnable LPs* from per-worker
//! deques, stealing from the tail of a peer's deque when idle, and an LP
//! that cannot progress simply is not queued — blocked-on-neighbor waits
//! become yields instead of parked OS threads.
//!
//! Synchronization is conservative, but shared memory replaces the null
//! message: each LP keeps per-in-edge **channel clocks** exactly as CMB
//! does, and a sender *writes its new lower bound directly into the
//! receiver's state* (under the receiver's lock) instead of mailing a
//! null. The classical liveness argument is unchanged — positive
//! lookahead makes bounds strictly increase around any cycle — but a
//! bound update costs one mutex acquisition instead of a channel
//! round-trip plus an OS thread wake-up. (The optimistic analog — an LP
//! is runnable when it holds unprocessed events above GVT — drops into
//! the same scheduler skeleton; [`crate::timewarp`] keeps thread-per-LP
//! for now and shares the ordering helpers in `lp.rs` instead.)
//!
//! Determinism is inherited wholesale: events carry the same `(time,
//! source LP, sequence)` tie keys, each LP delivers in ascending
//! `(time, tie)` order gated by its safe time, and neither worker count,
//! steal order, batch size, nor migration can reorder a delivery — so a
//! run reproduces [`crate::run_sequential`] bit-for-bit (property-tested
//! under adversarial imbalance in `tests/worksteal_properties.rs`).
//!
//! **Adaptive rebalancing** ([`WsConfig::migration_epoch`]): every epoch
//! (a global budget of processed events) the scheduler re-partitions LP
//! *home workers* by measured per-LP host cost, longest-processing-time
//! first — the Erlang-PDES lever of migrating simulation load between
//! schedulers. Migration happens only at a safe point: an LP is re-homed
//! strictly between activations, when it sits in no deque and no worker
//! holds its lock, so placement changes scheduling and nothing else.
//!
//! ## Why per-LP activations are serialized
//!
//! The `queued` flag is cleared only *after* an activation has delivered
//! its staged events and published its channel bounds. This makes the
//! whole activation (process → deliver → promise) atomic per LP: if a
//! second worker could start the next batch while staged events from the
//! previous one were still in flight, it would publish a bound computed
//! from the drained queue — above the in-flight events' timestamps — and
//! the receiver could run past a message that had not landed yet.

use crate::cmb::InitialEvents;
use crate::lp::{tie_key, validate_edges, LogicalProcess, LpCtx, LpId, Outgoing};
use lsds_core::{BinaryHeapQueue, EventQueue, PooledQueue, ScheduledEvent, SimTime, NO_PARENT};
use lsds_obs::{
    EngineTelemetry, NoopTelemetry, Registry, Telemetry, TelemetryConfig, TelemetryReport,
};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Condvar, Mutex};

/// Tuning knobs for the work-stealing engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsConfig {
    /// Worker threads. `0` (the default) uses the host's available
    /// parallelism; any value is clamped to the LP count. On an
    /// oversubscribed host *fewer* workers than LPs is the whole point —
    /// see the "choosing worker count" note in the README.
    pub workers: usize,
    /// Maximum events one activation processes before the LP is
    /// re-queued at the back of its deque (≥ 1). Small batches improve
    /// fairness under skew; large batches amortize locking.
    pub batch: u32,
    /// Adaptive rebalancing period in globally processed events: at each
    /// epoch boundary the scheduler re-homes LPs onto workers by
    /// measured per-LP cost (longest-processing-time first). `None`
    /// disables migration. Placement only — results are bit-identical
    /// with migration on or off.
    pub migration_epoch: Option<u64>,
}

impl Default for WsConfig {
    fn default() -> Self {
        WsConfig {
            workers: 0,
            batch: 64,
            migration_epoch: None,
        }
    }
}

/// Per-LP execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WsStats {
    /// Events (local + remote) processed by this LP.
    pub events: u64,
    /// Batches run for this LP, including spurious activations that
    /// found nothing safe to process.
    pub activations: u64,
    /// Real messages sent to other LPs.
    pub remote_sent: u64,
}

/// Scheduler-wide counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WsSchedStats {
    /// Worker threads the run actually used.
    pub workers: usize,
    /// Activations taken from another worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep with no runnable LP anywhere.
    pub parks: u64,
    /// Channel-clock advances written into neighbor state — the
    /// shared-memory analog of CMB null messages.
    pub bound_updates: u64,
    /// Rebalancing epochs that ran.
    pub epochs: u64,
    /// LP home-worker changes applied at epoch boundaries.
    pub migrations: u64,
}

/// Result of a work-stealing run.
#[derive(Debug)]
pub struct WsReport<L> {
    /// The logical processes, in id order, with their final state.
    pub lps: Vec<L>,
    /// Per-LP counters, in id order.
    pub stats: Vec<WsStats>,
    /// Scheduler-wide counters.
    pub sched: WsSchedStats,
    /// Final home worker of each LP, in id order. With
    /// [`WsConfig::migration_epoch`] set this is the placement the epoch
    /// rebalancer converged to from *observed* per-LP cost — the online
    /// analog of a [`crate::partition::profiled`] assignment, available
    /// with no prior profiling run.
    pub homes: Vec<usize>,
    /// Cumulative host nanoseconds of handler work per LP, in id order.
    /// Unlike the epoch-local accumulator that drives rebalancing, this
    /// never resets, so it weights [`WsReport::observed_imbalance`] over
    /// the whole run.
    pub cost_ns: Vec<u64>,
}

impl<L> WsReport<L> {
    /// Total events processed across all LPs.
    pub fn total_events(&self) -> u64 {
        self.stats.iter().map(|s| s.events).sum()
    }

    /// Total real inter-LP messages.
    pub fn total_remote(&self) -> u64 {
        self.stats.iter().map(|s| s.remote_sent).sum()
    }

    /// Weighted load imbalance of the final placement: max worker load
    /// over mean worker load, where an LP's load is its observed
    /// cumulative host cost. `1.0` is perfect balance; returns `1.0`
    /// for degenerate runs (no workers or no measured cost).
    pub fn observed_imbalance(&self) -> f64 {
        if self.sched.workers == 0 {
            return 1.0;
        }
        let mut load = vec![0u64; self.sched.workers];
        for (lp, &home) in self.homes.iter().enumerate() {
            load[home % self.sched.workers] += self.cost_ns[lp];
        }
        let total: u64 = load.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = load.iter().copied().max().unwrap_or(0) as f64;
        max / (total as f64 / self.sched.workers as f64)
    }

    /// Exports the run's scheduling counters into a metrics registry:
    /// aggregate `ws.*` counters plus per-LP event counts.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("ws.events", self.total_events());
        reg.inc("ws.remote_sent", self.total_remote());
        reg.inc(
            "ws.activations",
            self.stats.iter().map(|s| s.activations).sum(),
        );
        reg.inc("ws.steals", self.sched.steals);
        reg.inc("ws.parks", self.sched.parks);
        reg.inc("ws.bound_updates", self.sched.bound_updates);
        reg.inc("ws.epochs", self.sched.epochs);
        reg.inc("ws.migrations", self.sched.migrations);
        reg.set_gauge("ws.lps", self.lps.len() as f64);
        reg.set_gauge("ws.workers", self.sched.workers as f64);
        for (i, st) in self.stats.iter().enumerate() {
            reg.inc(&format!("ws.lp.{i}.events"), st.events);
        }
        for (i, &c) in self.cost_ns.iter().enumerate() {
            reg.inc(&format!("ws.lp.{i}.cost_ns"), c);
        }
        for (i, &h) in self.homes.iter().enumerate() {
            reg.set_gauge(&format!("ws.lp.{i}.home"), h as f64);
        }
        reg.set_gauge("ws.observed_imbalance", self.observed_imbalance());
    }
}

/// Mutable core of one LP; every access goes through the slot's mutex.
struct LpState<L: LogicalProcess> {
    lp: L,
    lookahead: f64,
    /// Pooled pending events in `(time, tie)` order.
    queue: PooledQueue<L::Msg, BinaryHeapQueue<u32>>,
    /// Channel clock per in-neighbor: lower bound on future arrivals,
    /// written directly by the sending LP's activation.
    in_clocks: Vec<(LpId, f64)>,
    /// Last bound promised on each out-edge (parallel to `LpSlot::outs`);
    /// skips redundant neighbor locking when the promise has not moved.
    out_bounds: Vec<f64>,
    clock: SimTime,
    seq: u64,
    done: bool,
    staged: Vec<Outgoing<L::Msg>>,
    stats: WsStats,
}

impl<L: LogicalProcess> LpState<L> {
    fn safe_time(&self) -> f64 {
        self.in_clocks
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }

    /// Lower bound on this LP's future sends: its earliest possible next
    /// handler time plus lookahead — identical to CMB's null payload.
    /// (`&mut` only because the pooled queue's peek is `&mut`.)
    fn lower_bound(&mut self, t_end: SimTime) -> f64 {
        let next_local = self
            .queue
            .peek_time()
            .map_or(f64::INFINITY, |t| t.seconds());
        next_local.min(self.safe_time()).min(t_end.seconds()) + self.lookahead
    }
}

/// One LP's scheduling shell. The flags live outside the mutex so
/// senders and the rebalancer never block on a running LP.
struct LpSlot<L: LogicalProcess> {
    state: Mutex<LpState<L>>,
    /// Set while the LP sits in a deque *or* is being activated; cleared
    /// only at the end of an activation (see module docs). Guarantees at
    /// most one worker activates the LP at a time.
    queued: AtomicBool,
    /// Home worker; activations are pushed here, thieves may run them
    /// elsewhere. Rewritten by the epoch rebalancer.
    home: AtomicUsize,
    /// Cumulative host nanoseconds of handler work — the live cost
    /// telemetry. Never reset: the rebalancer partitions on the whole
    /// observed history (converging to what a profiled partition would
    /// build from the same costs) instead of one epoch's noisy sample,
    /// and teardown reports it as [`WsReport::cost_ns`].
    cost_total_ns: AtomicU64,
    /// Static out-edge table: `(dst, index of this LP in dst.in_clocks)`.
    outs: Vec<(LpId, usize)>,
}

/// A staged remote delivery, carried from the producing activation
/// (computed under the sender's lock) to the delivery phase (applied
/// under the receiver's lock) — the two locks are never held at once.
struct Delivery<M> {
    dst: LpId,
    /// Index of the sender in `dst`'s `in_clocks`.
    idx: usize,
    at: SimTime,
    tie: u64,
    parent: u64,
    msg: M,
}

struct Scheduler<L: LogicalProcess> {
    slots: Vec<LpSlot<L>>,
    deques: Vec<Mutex<VecDeque<LpId>>>,
    park_lock: Mutex<()>,
    park_cv: Condvar,
    /// LPs currently sitting in some deque.
    pending: AtomicUsize,
    /// LPs that have not finished yet; 0 terminates the workers.
    live: AtomicUsize,
    /// Set when a worker panics (e.g. a model handler), so its peers shut
    /// down instead of parking forever on work the dead worker owned; the
    /// panic itself propagates through the thread scope.
    failed: AtomicBool,
    events_total: AtomicU64,
    epoch_idx: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    bound_updates: AtomicU64,
    epochs: AtomicU64,
    migrations: AtomicU64,
    t_end: SimTime,
    cfg: WsConfig,
}

impl<L: LogicalProcess> Scheduler<L> {
    fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Queues `lp` on its home deque unless it is already queued or
    /// mid-activation (the activation's closing re-check covers it).
    fn enqueue(&self, lp: LpId) {
        if self.slots[lp]
            .queued
            .compare_exchange(false, true, SeqCst, SeqCst)
            .is_err()
        {
            return;
        }
        let w = self.slots[lp].home.load(SeqCst) % self.workers();
        if let Ok(mut dq) = self.deques[w].lock() {
            dq.push_back(lp);
        }
        self.pending.fetch_add(1, SeqCst);
        // Notify under the park lock: a worker re-checks `pending` under
        // the same lock before waiting, so this wake-up cannot be lost.
        let _g = self.park_lock.lock();
        self.park_cv.notify_one();
    }

    /// Next LP for worker `me`: own deque first (FIFO for fairness),
    /// then steal from the tail of each peer's deque.
    fn next_lp<Y: Telemetry>(&self, me: usize, tel: &mut Y) -> Option<LpId> {
        if let Ok(mut dq) = self.deques[me].lock() {
            if let Some(lp) = dq.pop_front() {
                self.pending.fetch_sub(1, SeqCst);
                return Some(lp);
            }
        }
        let n = self.workers();
        for off in 1..n {
            let w = (me + off) % n;
            if let Ok(mut dq) = self.deques[w].lock() {
                if let Some(lp) = dq.pop_back() {
                    self.pending.fetch_sub(1, SeqCst);
                    self.steals.fetch_add(1, SeqCst);
                    if Y::ENABLED {
                        tel.inc("ws.steals", me as u32, 1);
                    }
                    return Some(lp);
                }
            }
        }
        None
    }

    /// Epoch boundary: re-home LPs by measured cost, heaviest first onto
    /// the least-loaded worker (longest-processing-time greedy, ties by
    /// id). Runs on whichever worker crossed the epoch; touches only the
    /// `home` atomics, so a re-homed LP lands on its new deque at its
    /// *next* enqueue — the safe point, since between activations it is
    /// running nowhere and queued nowhere. Returns the number of LPs
    /// re-homed by this epoch.
    fn rebalance(&self) -> u64 {
        self.epochs.fetch_add(1, SeqCst);
        let mut moved = 0u64;
        for (lp, &best) in self.lpt_homes().iter().enumerate() {
            if self.slots[lp].home.swap(best, SeqCst) != best {
                self.migrations.fetch_add(1, SeqCst);
                moved += 1;
            }
        }
        moved
    }

    /// The LPT placement over the cumulative observed costs: heaviest LP
    /// first, each to the least-loaded worker (ties by id) — the same
    /// greedy `partition::profiled` applies to an offline profile.
    fn lpt_homes(&self) -> Vec<usize> {
        let mut by_cost: Vec<(u64, LpId)> = (0..self.slots.len())
            .map(|i| (self.slots[i].cost_total_ns.load(SeqCst), i))
            .collect();
        by_cost.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let mut load = vec![0u64; self.workers()];
        let mut homes = vec![0usize; self.slots.len()];
        for (cost, lp) in by_cost {
            let mut best = 0usize;
            for w in 1..load.len() {
                if load[w] < load[best] {
                    best = w;
                }
            }
            load[best] += cost.max(1);
            homes[lp] = best;
        }
        homes
    }

    /// One activation of `lp`: a bounded batch of safe events under the
    /// LP's own lock, then event delivery and bound publication into
    /// neighbor state lock-by-lock, then the closing re-check.
    ///
    /// `outbox`/`bounds`/`wake` are worker-local scratch, reused across
    /// activations to avoid reallocating. `me` is the *executing* worker
    /// (possibly a thief), which is the telemetry track the activation's
    /// counters land on.
    fn activate<Y: Telemetry>(
        &self,
        me: usize,
        lp: LpId,
        tel: &mut Y,
        outbox: &mut Vec<Delivery<L::Msg>>,
        bounds: &mut Vec<(LpId, usize, f64)>,
        wake: &mut Vec<LpId>,
    ) {
        let slot = &self.slots[lp];
        let mut became_done = false;
        let mut did = 0u64;
        {
            let Ok(mut guard) = slot.state.lock() else {
                return;
            };
            // Reborrow through the guard once so disjoint-field borrows
            // (queue vs. staged vs. stats) work inside the loop.
            let st = &mut *guard;
            if st.done {
                slot.queued.store(false, SeqCst);
                return;
            }
            st.stats.activations += 1;
            if Y::ENABLED {
                tel.inc("ws.activations", me as u32, 1);
            }
            // lsds-lint: allow(wall-clock) reason="scheduler load measurement for epoch rebalancing; feeds worker placement only, never simulated time or results"
            let wall_start = std::time::Instant::now();
            while did < self.cfg.batch as u64 {
                let safe = st.safe_time();
                let Some(t) = st.queue.peek_time() else {
                    break;
                };
                // Strictly below the safe time (a message may still land
                // exactly at `safe`), never beyond the horizon.
                if !(t.seconds() < safe && t <= self.t_end) {
                    break;
                }
                let Some(ev) = st.queue.pop_min() else {
                    debug_assert!(false, "peeked event vanished");
                    break;
                };
                debug_assert!(ev.time >= st.clock, "causality violation");
                st.clock = ev.time;
                st.stats.events += 1;
                did += 1;
                if Y::ENABLED && tel.tick(ev.time.seconds()) {
                    // Deque depth of the executing worker at the sample
                    // point. Lock order state → deque is acyclic: no
                    // path takes an LP state lock while holding a deque
                    // lock.
                    let depth = self.deques[me].lock().map_or(0, |d| d.len());
                    tel.sample("ws.deque_len", me as u32, ev.time.seconds(), depth as f64);
                }
                let la = st.lookahead;
                let LpState {
                    lp: ref mut model,
                    ref mut staged,
                    ..
                } = *st;
                let mut ctx = LpCtx {
                    now: ev.time,
                    me: lp,
                    lookahead: la,
                    cause: ev.seq,
                    staged,
                };
                model.handle(ev.time, ev.event, &mut ctx);
                // Assign ties in staging order and route: locals back
                // into our queue, remotes into the outbox.
                for out in st.staged.drain(..) {
                    let tie = tie_key(lp, st.seq);
                    st.seq += 1;
                    match out {
                        Outgoing::Local { at, parent, msg } => {
                            st.queue
                                .insert(ScheduledEvent::with_parent(at, tie, parent, msg));
                        }
                        Outgoing::Remote {
                            dst,
                            at,
                            parent,
                            msg,
                        } => {
                            let Some(k) = slot.outs.iter().position(|(d, _)| *d == dst) else {
                                debug_assert!(false, "send to undeclared out-neighbor");
                                continue;
                            };
                            // Earlier nulls/events on this edge promised
                            // `out_bounds[k]`; going below it would mean
                            // the declared lookahead lied.
                            debug_assert!(
                                at.seconds() >= st.out_bounds[k],
                                "causality: LP {lp} sending t={at} below its promised bound {} (lookahead violated)",
                                st.out_bounds[k]
                            );
                            st.out_bounds[k] = st.out_bounds[k].max(at.seconds());
                            st.stats.remote_sent += 1;
                            outbox.push(Delivery {
                                dst,
                                idx: slot.outs[k].1,
                                at,
                                tie,
                                parent,
                                msg,
                            });
                        }
                    }
                }
            }
            let spent = u64::try_from(wall_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            slot.cost_total_ns.fetch_add(spent, SeqCst);
            // New promises to publish once the staged events are out.
            let lb = st.lower_bound(self.t_end);
            for (k, &(dst, idx)) in slot.outs.iter().enumerate() {
                if lb > st.out_bounds[k] {
                    st.out_bounds[k] = lb;
                    bounds.push((dst, idx, lb));
                }
            }
            let drained = st.queue.peek_time().is_none_or(|t| t > self.t_end);
            if drained && st.safe_time() > self.t_end.seconds() {
                st.done = true;
                became_done = true;
            }
        }
        // Deliver events BEFORE publishing bounds: a bound computed from
        // the drained queue may exceed a staged event's timestamp, so the
        // event must land first.
        for d in outbox.drain(..) {
            if let Ok(mut dst_st) = self.slots[d.dst].state.lock() {
                debug_assert!(
                    d.at.seconds() >= dst_st.in_clocks[d.idx].1,
                    "causality: LP {lp} delivered t={} below its promised bound {}",
                    d.at,
                    dst_st.in_clocks[d.idx].1
                );
                // Per-edge deliveries are in send order (activations are
                // serialized), so as with CMB's FIFO channels the event
                // itself also advances the channel clock.
                dst_st.in_clocks[d.idx].1 = dst_st.in_clocks[d.idx].1.max(d.at.seconds());
                dst_st
                    .queue
                    .insert(ScheduledEvent::with_parent(d.at, d.tie, d.parent, d.msg));
            }
            wake.push(d.dst);
        }
        for (dst, idx, lb) in bounds.drain(..) {
            let advanced = match self.slots[dst].state.lock() {
                Ok(mut dst_st) => {
                    let c = &mut dst_st.in_clocks[idx].1;
                    if lb > *c {
                        *c = lb;
                        true
                    } else {
                        false
                    }
                }
                Err(_) => false,
            };
            if advanced {
                self.bound_updates.fetch_add(1, SeqCst);
                wake.push(dst);
            }
        }
        for dst in wake.drain(..) {
            self.enqueue(dst);
        }
        if became_done && self.live.fetch_sub(1, SeqCst) == 1 {
            // Last LP finished: release every parked worker.
            let _g = self.park_lock.lock();
            self.park_cv.notify_all();
        }
        if did > 0 {
            if let Some(epoch) = self.cfg.migration_epoch {
                let total = self.events_total.fetch_add(did, SeqCst) + did;
                let idx = total / epoch;
                let cur = self.epoch_idx.load(SeqCst);
                if idx > cur
                    && self
                        .epoch_idx
                        .compare_exchange(cur, idx, SeqCst, SeqCst)
                        .is_ok()
                {
                    let moved = self.rebalance();
                    if Y::ENABLED && moved > 0 {
                        tel.inc("ws.migrations", me as u32, moved);
                    }
                }
            }
        }
        // End of activation: allow re-queueing, then re-check our own
        // state. Senders that delivered to us mid-activation failed the
        // enqueue CAS, so any work they left — or work this activation
        // left (batch limit, unpublished future bound) — is picked up
        // here; their deliveries happened under our lock before the
        // `queued` clear, so this re-check cannot miss them.
        slot.queued.store(false, SeqCst);
        if became_done {
            return;
        }
        let rerun = match slot.state.lock() {
            Ok(mut guard) => {
                let st = &mut *guard;
                if st.done {
                    false
                } else {
                    let safe = st.safe_time();
                    let runnable = st
                        .queue
                        .peek_time()
                        .is_some_and(|t| t.seconds() < safe && t <= self.t_end);
                    let drained = st.queue.peek_time().is_none_or(|t| t > self.t_end);
                    let finishable = drained && safe > self.t_end.seconds();
                    // A higher in-clock can raise our own promise even
                    // with nothing runnable; neighbors may need it.
                    let lb = st.lower_bound(self.t_end);
                    let promotes = st.out_bounds.iter().any(|&b| lb > b);
                    runnable || finishable || promotes
                }
            }
            Err(_) => false,
        };
        if rerun {
            self.enqueue(lp);
        }
    }

    fn worker<Y: Telemetry>(&self, me: usize, mut tel: Y) -> Y {
        /// Unwinding out of the loop (a panicking model handler or a
        /// tripped causality assertion) must not strand peers parked on
        /// work this worker owned: flag the failure and wake everyone,
        /// then let the panic propagate through the thread scope.
        struct AbortOnPanic<'a, L: LogicalProcess>(&'a Scheduler<L>);
        impl<L: LogicalProcess> Drop for AbortOnPanic<'_, L> {
            fn drop(&mut self) {
                if std::thread::panicking() {
                    self.0.failed.store(true, SeqCst);
                    let _g = self.0.park_lock.lock();
                    self.0.park_cv.notify_all();
                }
            }
        }
        let _abort = AbortOnPanic(self);
        let mut outbox = Vec::new();
        let mut bounds = Vec::new();
        let mut wake = Vec::new();
        loop {
            if self.live.load(SeqCst) == 0 || self.failed.load(SeqCst) {
                return tel;
            }
            if let Some(lp) = self.next_lp(me, &mut tel) {
                self.activate(me, lp, &mut tel, &mut outbox, &mut bounds, &mut wake);
                continue;
            }
            let Ok(g) = self.park_lock.lock() else {
                return tel;
            };
            if self.live.load(SeqCst) == 0 || self.failed.load(SeqCst) {
                return tel;
            }
            if self.pending.load(SeqCst) > 0 {
                continue;
            }
            self.parks.fetch_add(1, SeqCst);
            if Y::ENABLED {
                tel.inc("ws.parks", me as u32, 1);
            }
            // Spurious wake-ups are fine: the loop re-checks everything.
            drop(self.park_cv.wait(g));
        }
    }
}

/// Runs logical processes to `t_end` on a work-stealing worker pool with
/// the default [`WsConfig`] (workers = available parallelism, batch 64,
/// no migration).
///
/// `edges` lists the directed channels `(src, dst)` exactly as for
/// [`crate::run_cmb`]; the synchronization contract is the same (every
/// LP must declare strictly positive lookahead) and the result is
/// bit-identical to [`crate::run_cmb`] and [`crate::run_sequential`].
pub fn run_worksteal<L>(lps: Vec<L>, edges: &[(LpId, LpId)], t_end: SimTime) -> WsReport<L>
where
    L: InitialEvents,
{
    run_worksteal_cfg(lps, edges, t_end, WsConfig::default())
}

/// Like [`run_worksteal`], with explicit scheduler configuration.
pub fn run_worksteal_cfg<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: WsConfig,
) -> WsReport<L>
where
    L: InitialEvents,
{
    run_worksteal_with(lps, edges, t_end, cfg, |_| NoopTelemetry).0
}

/// Like [`run_worksteal_cfg`], with a per-worker [`Telemetry`] sink
/// capturing scheduler internals — steals, parks, migrations, deque
/// depths — as counter and sample series keyed by worker track. The
/// merged [`TelemetryReport`] aggregates every worker's sink; results
/// are bit-identical to the plain run (telemetry observes placement and
/// timing, never event order).
pub fn run_worksteal_telemetry<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: WsConfig,
    tcfg: TelemetryConfig,
) -> (WsReport<L>, TelemetryReport)
where
    L: InitialEvents,
{
    let (report, tels) = run_worksteal_with(lps, edges, t_end, cfg, |w| {
        EngineTelemetry::for_track(tcfg.clone(), w as u32)
    });
    (report, TelemetryReport::merge(tels))
}

/// Shared driver: builds the scheduler, runs the worker pool with one
/// telemetry sink per worker, and returns the sinks (in worker order)
/// alongside the report.
fn run_worksteal_with<L, Y>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: WsConfig,
    mk_tel: impl Fn(usize) -> Y,
) -> (WsReport<L>, Vec<Y>)
where
    L: InitialEvents,
    Y: Telemetry + Send,
{
    let n = lps.len();
    validate_edges(n, edges);
    assert!(cfg.batch >= 1, "batch must be at least 1");
    if let Some(epoch) = cfg.migration_epoch {
        assert!(epoch >= 1, "migration epoch must be at least 1");
    }
    for (i, lp) in lps.iter().enumerate() {
        assert!(
            lp.lookahead() > 0.0 && lp.lookahead().is_finite(),
            "LP {i} must declare positive finite lookahead"
        );
    }
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |c| c.get())
    } else {
        cfg.workers
    }
    .clamp(1, n.max(1));

    // Build slots: per-LP state, channel clocks per in-edge, and the
    // static out-edge table pointing at each receiver's clock index.
    let in_lists: Vec<Vec<LpId>> = (0..n).map(|d| crate::lp::in_neighbors(edges, d)).collect();
    let mut slots: Vec<LpSlot<L>> = Vec::with_capacity(n);
    for (me, lp) in lps.into_iter().enumerate() {
        let outs: Vec<(LpId, usize)> = crate::lp::out_neighbors(edges, me)
            .into_iter()
            .map(|d| {
                let Some(idx) = in_lists[d].iter().position(|&s| s == me) else {
                    // lsds-lint: allow(hot-path-panic) reason="one-time topology construction before any worker starts; both lists derive from the same validated edge set"
                    unreachable!("out-edge without matching in-edge");
                };
                (d, idx)
            })
            .collect();
        let lookahead = lp.lookahead();
        let out_bounds = vec![0.0; outs.len()];
        slots.push(LpSlot {
            state: Mutex::new(LpState {
                lp,
                lookahead,
                queue: PooledQueue::new(BinaryHeapQueue::new()),
                in_clocks: in_lists[me].iter().map(|&s| (s, 0.0)).collect(),
                out_bounds,
                clock: SimTime::ZERO,
                seq: 0,
                done: false,
                staged: Vec::new(),
                stats: WsStats::default(),
            }),
            queued: AtomicBool::new(true),
            home: AtomicUsize::new(me % workers),
            cost_total_ns: AtomicU64::new(0),
            outs,
        });
    }

    let sched = Scheduler {
        slots,
        deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        park_lock: Mutex::new(()),
        park_cv: Condvar::new(),
        pending: AtomicUsize::new(0),
        live: AtomicUsize::new(n),
        failed: AtomicBool::new(false),
        events_total: AtomicU64::new(0),
        epoch_idx: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        parks: AtomicU64::new(0),
        bound_updates: AtomicU64::new(0),
        epochs: AtomicU64::new(0),
        migrations: AtomicU64::new(0),
        t_end,
        cfg,
    };

    // Initial events at t = 0, staged single-threaded before any worker
    // starts: locals go straight into each queue, remotes are delivered
    // directly (no promise can be violated — every channel clock is
    // still at its initial 0.0 and sends respect lookahead > 0).
    let mut initial_remote: Vec<Delivery<L::Msg>> = Vec::new();
    for me in 0..n {
        let slot = &sched.slots[me];
        let Ok(mut guard) = slot.state.lock() else {
            continue;
        };
        let st = &mut *guard;
        let la = st.lookahead;
        {
            let LpState {
                ref mut lp,
                ref mut staged,
                ..
            } = *st;
            let mut ctx = LpCtx {
                now: SimTime::ZERO,
                me,
                lookahead: la,
                cause: NO_PARENT,
                staged,
            };
            lp.initial_events(&mut ctx);
        }
        for out in st.staged.drain(..) {
            let tie = tie_key(me, st.seq);
            st.seq += 1;
            match out {
                Outgoing::Local { at, parent, msg } => {
                    st.queue
                        .insert(ScheduledEvent::with_parent(at, tie, parent, msg));
                }
                Outgoing::Remote {
                    dst,
                    at,
                    parent,
                    msg,
                } => {
                    let Some(k) = slot.outs.iter().position(|(d, _)| *d == dst) else {
                        debug_assert!(false, "initial send to undeclared out-neighbor");
                        continue;
                    };
                    st.out_bounds[k] = st.out_bounds[k].max(at.seconds());
                    st.stats.remote_sent += 1;
                    initial_remote.push(Delivery {
                        dst,
                        idx: slot.outs[k].1,
                        at,
                        tie,
                        parent,
                        msg,
                    });
                }
            }
        }
    }
    for d in initial_remote {
        if let Ok(mut st) = sched.slots[d.dst].state.lock() {
            st.in_clocks[d.idx].1 = st.in_clocks[d.idx].1.max(d.at.seconds());
            st.queue
                .insert(ScheduledEvent::with_parent(d.at, d.tie, d.parent, d.msg));
        }
    }

    // Every LP starts queued (the flags were initialized `true`) so each
    // publishes its first bound even if it holds no events.
    for me in 0..n {
        let w = sched.slots[me].home.load(SeqCst);
        if let Ok(mut dq) = sched.deques[w].lock() {
            dq.push_back(me);
        }
        sched.pending.fetch_add(1, SeqCst);
    }

    // Workers park their finished sinks here keyed by worker id; a
    // panicking worker never reports one, and the scope re-raises its
    // panic before the sinks are read.
    let tel_out: Mutex<Vec<(usize, Y)>> = Mutex::new(Vec::with_capacity(workers));
    if n > 0 {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let s = &sched;
                let out = &tel_out;
                let tel = mk_tel(w);
                scope.spawn(move || {
                    let tel = s.worker(w, tel);
                    if let Ok(mut v) = out.lock() {
                        v.push((w, tel));
                    }
                });
            }
        });
    }
    let mut tels: Vec<(usize, Y)> = tel_out.into_inner().unwrap_or_else(|e| e.into_inner());
    tels.sort_by_key(|&(w, _)| w);

    let mut lps_out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    let mut cost_ns = Vec::with_capacity(n);
    // Settle the learned placement on the complete cost record: the epoch
    // rebalancer last ran at an epoch boundary, but cost kept accruing
    // until the horizon, so the converged placement — what one more epoch
    // would compute — is the LPT greedy over the *final* cumulative
    // costs. Pure bookkeeping on a finished scheduler; no LP runs again.
    let homes = if sched.cfg.migration_epoch.is_some() && sched.epochs.load(SeqCst) > 0 {
        sched.lpt_homes()
    } else {
        sched.slots.iter().map(|s| s.home.load(SeqCst)).collect()
    };
    for slot in sched.slots {
        cost_ns.push(slot.cost_total_ns.load(SeqCst));
        // lsds-lint: allow(hot-path-panic) reason="post-run teardown: a panicked worker has already propagated through the thread scope"
        let st = slot.state.into_inner().expect("worker panicked");
        debug_assert!(st.done, "scheduler terminated with an unfinished LP");
        lps_out.push(st.lp);
        stats.push(st.stats);
    }
    (
        WsReport {
            lps: lps_out,
            stats,
            sched: WsSchedStats {
                workers,
                steals: sched.steals.load(SeqCst),
                parks: sched.parks.load(SeqCst),
                bound_updates: sched.bound_updates.load(SeqCst),
                epochs: sched.epochs.load(SeqCst),
                migrations: sched.migrations.load(SeqCst),
            },
            homes,
            cost_ns,
        },
        tels.into_iter().map(|(_, t)| t).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_sequential;

    /// Ring of LPs passing a token every `delay`.
    struct RingNode {
        n: usize,
        hops_seen: u64,
        last_time: f64,
        delay: f64,
    }

    impl LogicalProcess for RingNode {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
            self.hops_seen += 1;
            self.last_time = now.seconds();
            let next = (ctx.me() + 1) % self.n;
            ctx.send(next, self.delay, hop + 1);
        }
        fn lookahead(&self) -> f64 {
            self.delay
        }
    }

    impl InitialEvents for RingNode {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    fn ring(n: usize) -> (Vec<RingNode>, Vec<(LpId, LpId)>) {
        let lps = (0..n)
            .map(|_| RingNode {
                n,
                hops_seen: 0,
                last_time: 0.0,
                delay: 1.0,
            })
            .collect();
        let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
        (lps, edges)
    }

    #[test]
    fn ring_matches_sequential() {
        let (lps, edges) = ring(4);
        let seq = run_sequential(lps, &edges, SimTime::new(100.0));
        let (lps, edges) = ring(4);
        let ws = run_worksteal(lps, &edges, SimTime::new(100.0));
        assert_eq!(ws.total_events(), seq.total_events());
        for (a, b) in ws.lps.iter().zip(seq.lps.iter()) {
            assert_eq!(a.hops_seen, b.hops_seen);
            assert_eq!(a.last_time.to_bits(), b.last_time.to_bits());
        }
        assert!(ws.sched.workers >= 1);
    }

    #[test]
    fn batch_size_does_not_change_results() {
        let mut runs = Vec::new();
        for batch in [1u32, 3, 64] {
            let (lps, edges) = ring(5);
            let ws = run_worksteal_cfg(
                lps,
                &edges,
                SimTime::new(50.0),
                WsConfig {
                    workers: 2,
                    batch,
                    migration_epoch: None,
                },
            );
            runs.push(
                ws.lps
                    .iter()
                    .map(|l| (l.hops_seen, l.last_time.to_bits()))
                    .collect::<Vec<_>>(),
            );
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn migration_epoch_preserves_results_and_counts_epochs() {
        let (lps, edges) = ring(6);
        let plain = run_worksteal_cfg(
            lps,
            &edges,
            SimTime::new(200.0),
            WsConfig {
                workers: 2,
                batch: 4,
                migration_epoch: None,
            },
        );
        let (lps, edges) = ring(6);
        let migr = run_worksteal_cfg(
            lps,
            &edges,
            SimTime::new(200.0),
            WsConfig {
                workers: 2,
                batch: 4,
                migration_epoch: Some(10),
            },
        );
        assert_eq!(plain.total_events(), migr.total_events());
        for (a, b) in plain.lps.iter().zip(migr.lps.iter()) {
            assert_eq!(a.hops_seen, b.hops_seen);
            assert_eq!(a.last_time.to_bits(), b.last_time.to_bits());
        }
        assert!(migr.sched.epochs > 0, "epoch rebalancer never ran");
        assert_eq!(plain.sched.epochs, 0);
    }

    #[test]
    fn lp_with_no_events_terminates() {
        // LP 1 never receives a real event; it must still finish once
        // LP 0's published bounds pass the horizon.
        struct Quiet;
        impl LogicalProcess for Quiet {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut LpCtx<'_, ()>) {}
            fn lookahead(&self) -> f64 {
                1.0
            }
        }
        impl InitialEvents for Quiet {
            fn initial_events(&mut self, _: &mut LpCtx<'_, ()>) {}
        }
        let ws = run_worksteal(vec![Quiet, Quiet], &[(0, 1)], SimTime::new(5.0));
        assert_eq!(ws.total_events(), 0);
    }

    #[test]
    fn empty_run_returns_empty_report() {
        let ws = run_worksteal(Vec::<RingNode>::new(), &[], SimTime::new(1.0));
        assert_eq!(ws.lps.len(), 0);
        assert_eq!(ws.total_events(), 0);
    }

    #[test]
    fn export_metrics_accepts_report() {
        let (lps, edges) = ring(3);
        let ws = run_worksteal(lps, &edges, SimTime::new(10.0));
        let mut reg = Registry::new();
        ws.export_metrics(&mut reg);
        assert!(ws.total_events() > 0);
        assert_eq!(reg.counter("ws.lp.0.events"), ws.stats[0].events);
        assert_eq!(reg.counter("ws.lp.1.cost_ns"), ws.cost_ns[1]);
        assert_eq!(reg.gauge("ws.lp.2.home"), Some(ws.homes[2] as f64));
        assert_eq!(
            reg.gauge("ws.observed_imbalance"),
            Some(ws.observed_imbalance())
        );
    }

    #[test]
    fn telemetry_run_matches_plain_and_counts_scheduler() {
        let cfg = WsConfig {
            workers: 2,
            batch: 4,
            migration_epoch: Some(16),
        };
        let (lps, edges) = ring(6);
        let plain = run_worksteal_cfg(lps, &edges, SimTime::new(200.0), cfg);
        let (lps, edges) = ring(6);
        let (ws, tel) = run_worksteal_telemetry(
            lps,
            &edges,
            SimTime::new(200.0),
            cfg,
            TelemetryConfig::new().every_events(8),
        );
        // Bit-identity: telemetry observes scheduling, never alters it.
        for (a, b) in ws.lps.iter().zip(plain.lps.iter()) {
            assert_eq!(a.hops_seen, b.hops_seen);
            assert_eq!(a.last_time.to_bits(), b.last_time.to_bits());
        }
        assert_eq!(ws.total_events(), plain.total_events());
        // Telemetry counters mirror this run's scheduler stats exactly:
        // each increments alongside its atomic. (Steal/park counts are
        // timing-dependent, so compare within the run, not across runs.)
        assert_eq!(tel.events(), ws.total_events());
        assert_eq!(
            tel.counter("ws.activations"),
            ws.stats.iter().map(|s| s.activations).sum::<u64>()
        );
        assert_eq!(tel.counter("ws.steals"), ws.sched.steals);
        assert_eq!(tel.counter("ws.parks"), ws.sched.parks);
        assert_eq!(tel.counter("ws.migrations"), ws.sched.migrations);
        // Online-placement surface for the repartitioning demo.
        assert_eq!(ws.homes.len(), 6);
        assert_eq!(ws.cost_ns.len(), 6);
        assert!(ws.homes.iter().all(|&h| h < ws.sched.workers));
        let imb = ws.observed_imbalance();
        assert!(imb.is_finite() && imb >= 1.0 - 1e-9, "imbalance {imb}");
    }

    /// A model whose per-edge send timestamps decrease (delays vary
    /// while its clock barely advances) violates the channel-clock
    /// contract. The causality assertion must abort the whole run —
    /// every worker exits and the panic propagates — rather than
    /// stranding peer workers parked forever (debug builds only; the
    /// check is a `debug_assert`). The scope re-raises the worker's
    /// death as its own generic panic; the original "lookahead
    /// violated" assertion message goes to stderr.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "a scoped thread panicked")]
    fn non_monotone_sends_abort_instead_of_hanging() {
        struct Shrinking {
            sent_far: bool,
        }
        impl LogicalProcess for Shrinking {
            type Msg = u64;
            fn handle(&mut self, _now: SimTime, _v: u64, ctx: &mut LpCtx<'_, u64>) {
                if !self.sent_far {
                    self.sent_far = true;
                    ctx.send(1, 1.0, 0); // promises t >= 1.0 on the edge
                    ctx.schedule_in(0.1, 0);
                } else {
                    ctx.send(1, 0.2, 0); // t = 0.3: below the promise
                }
            }
            fn lookahead(&self) -> f64 {
                0.1
            }
        }
        impl InitialEvents for Shrinking {
            fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
                if ctx.me() == 0 {
                    ctx.schedule_in(0.0, 0);
                }
            }
        }
        run_worksteal_cfg(
            vec![Shrinking { sent_far: false }, Shrinking { sent_far: false }],
            &[(0, 1)],
            SimTime::new(5.0),
            WsConfig {
                workers: 2,
                batch: 1,
                migration_epoch: None,
            },
        );
    }

    #[test]
    #[should_panic(expected = "positive finite lookahead")]
    fn zero_lookahead_rejected() {
        struct Bad;
        impl LogicalProcess for Bad {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut LpCtx<'_, ()>) {}
            fn lookahead(&self) -> f64 {
                0.0
            }
        }
        impl InitialEvents for Bad {
            fn initial_events(&mut self, _: &mut LpCtx<'_, ()>) {}
        }
        run_worksteal(vec![Bad, Bad], &[(0, 1)], SimTime::new(1.0));
    }
}
