//! Partitioning helpers: assigning simulated entities to logical processes.
//!
//! "Using the underlying physical distributed resources of clusters of
//! nodes" (§5) requires splitting the model; these helpers provide the two
//! standard static assignments plus a **profile-guided** one that balances
//! measured work instead of entity counts. The mapping affects inter-LP
//! traffic (and hence synchronization overhead) but never results, since
//! the engines are deterministic.

use crate::lp::LpId;
use lsds_obs::{CriticalPath, SpanTrace};

/// Assigns `n_entities` to `n_lps` in contiguous blocks.
///
/// Block partitioning keeps neighborhoods together, which minimizes
/// cross-LP traffic for locally-connected topologies.
pub fn block_partition(n_entities: usize, n_lps: usize) -> Vec<LpId> {
    assert!(n_lps > 0, "need at least one LP");
    let base = n_entities / n_lps;
    let extra = n_entities % n_lps;
    let mut out = Vec::with_capacity(n_entities);
    for lp in 0..n_lps {
        let count = base + usize::from(lp < extra);
        out.extend(std::iter::repeat_n(lp, count));
    }
    out
}

/// Assigns entity `i` to LP `i mod n_lps`.
///
/// Round-robin balances entity counts exactly but scatters neighborhoods,
/// maximizing cross-LP traffic — the adversarial case for E4.
pub fn round_robin_partition(n_entities: usize, n_lps: usize) -> Vec<LpId> {
    assert!(n_lps > 0, "need at least one LP");
    (0..n_entities).map(|i| i % n_lps).collect()
}

/// Full inverse index of an assignment in one pass: element `lp` lists
/// the entities owned by `lp`, in ascending entity order.
///
/// `n_lps` sizes the result (assignments may leave trailing LPs empty);
/// it must cover every LP id that appears in `assignment`.
pub fn owners(assignment: &[LpId], n_lps: usize) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new(); n_lps];
    for (entity, &lp) in assignment.iter().enumerate() {
        assert!(lp < n_lps, "assignment names LP {lp} but n_lps is {n_lps}");
        out[lp].push(entity);
    }
    out
}

/// Entities owned by `lp` under a given assignment.
///
/// Thin wrapper over [`owners`] kept for callers that need a single LP;
/// anything iterating over *all* LPs should call [`owners`] once instead
/// of paying a scan per LP.
pub fn owned_by(assignment: &[LpId], lp: LpId) -> Vec<usize> {
    let n_lps = assignment.iter().map(|&a| a + 1).max().unwrap_or(0);
    let mut inverse = owners(assignment, n_lps.max(lp + 1));
    std::mem::take(&mut inverse[lp])
}

/// Assigns entities to LPs by **estimated work**, heaviest first onto the
/// least-loaded LP (longest-processing-time greedy; ties by entity id,
/// then by LP id — fully deterministic).
///
/// `costs[i]` is entity `i`'s estimated cost in arbitrary units (e.g.
/// measured handler wall-time from [`SpanTrace::track_costs`]). LPT is a
/// 4/3-approximation of the optimal makespan, which is enough to undo the
/// hot-spot imbalance that defeats count-based partitioning: a block
/// partition puts one hot entity and its cold neighbors on the same LP,
/// while `profiled` spreads the heavy entities first.
pub fn profiled(costs: &[f64], n_lps: usize) -> Vec<LpId> {
    assert!(n_lps > 0, "need at least one LP");
    for (i, c) in costs.iter().enumerate() {
        assert!(
            c.is_finite() && *c >= 0.0,
            "entity {i} has invalid cost {c}"
        );
    }
    let mut by_cost: Vec<usize> = (0..costs.len()).collect();
    // total_cmp is exact on the finite, non-negative costs asserted above
    by_cost.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    let mut load = vec![0.0f64; n_lps];
    let mut out = vec![0usize; costs.len()];
    for entity in by_cost {
        let mut best = 0usize;
        for lp in 1..n_lps {
            if load[lp] < load[best] {
                best = lp;
            }
        }
        out[entity] = best;
        load[best] += costs[entity];
    }
    out
}

/// How much [`profiled_from_trace`] inflates the cost of entities on the
/// critical path: the chain that bounds the makespan must not queue on
/// one LP, so its entities are spread before equally-expensive bystanders.
const CRITICAL_TRACK_BOOST: f64 = 2.0;

/// Profile-guided assignment from a recorded run: per-entity measured
/// handler wall-time (via [`SpanTrace::track_costs`], tracks = entity
/// ids), optionally boosted along the critical path, fed to [`profiled`].
///
/// The intended workflow is a cheap profiling pass with one LP per
/// entity (`run_cmb_traced` / `run_worksteal`), then a production run
/// whose entity→LP mapping comes from this function — `exp_worksteal`'s
/// `partition` scenario measures the imbalance this removes. Entities
/// that never ran (zero spans) get cost 0 and fill in last.
pub fn profiled_from_trace(
    trace: &SpanTrace,
    critical: Option<&CriticalPath>,
    n_entities: usize,
    n_lps: usize,
) -> Vec<LpId> {
    let mut costs = trace.track_costs(n_entities);
    if let Some(cp) = critical {
        for track in cp.tracks() {
            if let Some(c) = costs.get_mut(track as usize) {
                *c *= CRITICAL_TRACK_BOOST;
            }
        }
    }
    profiled(&costs, n_lps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_obs::{Span, SpanKind, NO_PARENT};

    #[test]
    fn block_partition_sizes_balanced() {
        let p = block_partition(10, 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn block_partition_contiguous() {
        let p = block_partition(100, 7);
        for w in p.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let p = round_robin_partition(7, 3);
        assert_eq!(p, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn owned_by_inverts_assignment() {
        let p = round_robin_partition(9, 3);
        assert_eq!(owned_by(&p, 1), vec![1, 4, 7]);
        let total: usize = (0..3).map(|lp| owned_by(&p, lp).len()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn owners_matches_owned_by_in_one_pass() {
        let p = block_partition(11, 4);
        let inv = owners(&p, 4);
        assert_eq!(inv.len(), 4);
        for (lp, owned) in inv.iter().enumerate() {
            assert_eq!(*owned, owned_by(&p, lp));
        }
        // trailing empty LPs are represented, not dropped
        let inv = owners(&[0, 0], 3);
        assert_eq!(inv, vec![vec![0, 1], vec![], vec![]]);
    }

    #[test]
    fn owned_by_of_unused_lp_is_empty() {
        assert!(owned_by(&[0, 0, 0], 2).is_empty());
        assert!(owned_by(&[], 5).is_empty());
    }

    #[test]
    fn empty_entities() {
        assert!(block_partition(0, 4).is_empty());
        assert!(round_robin_partition(0, 4).is_empty());
        assert!(profiled(&[], 4).is_empty());
    }

    #[test]
    fn more_lps_than_entities() {
        let p = block_partition(2, 5);
        assert_eq!(p, vec![0, 1]);
    }

    /// Max LP load over mean LP load — 1.0 is perfect balance.
    fn imbalance(assignment: &[LpId], costs: &[f64], n_lps: usize) -> f64 {
        let mut load = vec![0.0; n_lps];
        for (e, &lp) in assignment.iter().enumerate() {
            load[lp] += costs[e];
        }
        let total: f64 = load.iter().sum();
        let max = load.iter().fold(0.0f64, |a, &b| a.max(b));
        max / (total / n_lps as f64)
    }

    #[test]
    fn profiled_balances_hot_spot_where_block_cannot() {
        // entity 0 is 5× hotter than the other 15: one LP's fair share,
        // so LPT can balance perfectly while block stacks it with 3 more
        let mut costs = vec![1.0; 16];
        costs[0] = 5.0;
        let block = block_partition(16, 4);
        let prof = profiled(&costs, 4);
        let bi = imbalance(&block, &costs, 4);
        let pi = imbalance(&prof, &costs, 4);
        assert!(bi > 1.5, "block partition should be imbalanced, got {bi}");
        assert!(pi < 1.01, "profiled partition should balance, got {pi}");
        // every entity assigned, all LPs in range
        assert_eq!(prof.len(), 16);
        assert!(prof.iter().all(|&lp| lp < 4));
    }

    #[test]
    fn profiled_is_deterministic_under_ties() {
        let costs = vec![1.0; 12];
        let a = profiled(&costs, 3);
        let b = profiled(&costs, 3);
        assert_eq!(a, b);
        // equal costs degrade to a balanced count split
        let inv = owners(&a, 3);
        assert!(inv.iter().all(|o| o.len() == 4));
    }

    #[test]
    #[should_panic(expected = "invalid cost")]
    fn profiled_rejects_nan_cost() {
        profiled(&[1.0, f64::NAN], 2);
    }

    fn span_on(id: u64, track: u32, wall_ns: u64) -> Span {
        Span {
            id,
            parent: if id == 0 { NO_PARENT } else { id - 1 },
            track,
            vt: id as f64,
            wall_ns,
            kind: SpanKind::DEFAULT,
        }
    }

    #[test]
    fn profiled_from_trace_spreads_measured_load() {
        // entity 1 did all the work; entities 0 and 2 were idle
        let trace = SpanTrace {
            spans: vec![span_on(0, 1, 500), span_on(1, 1, 500), span_on(2, 0, 10)],
            dropped: 0,
        };
        let p = profiled_from_trace(&trace, None, 3, 2);
        assert_eq!(p.len(), 3);
        // the hot entity gets an LP to itself
        assert_eq!(owners(&p, 2)[p[1]], vec![1]);
    }

    #[test]
    fn critical_path_boost_separates_chain_from_bystander() {
        // three independent roots; the latest-delivered span (track 0)
        // is the whole critical path. Tracks 0 and 1 cost the same.
        let root = |id: u64, track: u32, vt: f64, wall_ns: u64| Span {
            id,
            parent: NO_PARENT,
            track,
            vt,
            wall_ns,
            kind: SpanKind::DEFAULT,
        };
        let trace = SpanTrace {
            spans: vec![
                root(0, 0, 1.0, 100),
                root(1, 1, 0.5, 100),
                root(2, 2, 0.4, 120),
            ],
            dropped: 0,
        };
        // Unboosted, the critical entity ties with the bystander and
        // ends up sharing an LP with it behind the heavier track 2.
        let plain = profiled_from_trace(&trace, None, 3, 2);
        assert_eq!(plain[0], plain[1]);
        // Boosted (100 → 200), it is placed first and gets an LP alone.
        let cp = trace.critical_path();
        assert_eq!(cp.tracks(), vec![0]);
        let boosted = profiled_from_trace(&trace, Some(&cp), 3, 2);
        assert_ne!(boosted[0], boosted[1]);
        assert_eq!(owners(&boosted, 2)[boosted[0]], vec![0]);
    }
}
