//! Partitioning helpers: assigning simulated entities to logical processes.
//!
//! "Using the underlying physical distributed resources of clusters of
//! nodes" (§5) requires splitting the model; these helpers provide the two
//! standard static assignments. The mapping affects inter-LP traffic (and
//! hence null-message overhead) but never results, since the engines are
//! deterministic.

use crate::lp::LpId;

/// Assigns `n_entities` to `n_lps` in contiguous blocks.
///
/// Block partitioning keeps neighborhoods together, which minimizes
/// cross-LP traffic for locally-connected topologies.
pub fn block_partition(n_entities: usize, n_lps: usize) -> Vec<LpId> {
    assert!(n_lps > 0, "need at least one LP");
    let base = n_entities / n_lps;
    let extra = n_entities % n_lps;
    let mut out = Vec::with_capacity(n_entities);
    for lp in 0..n_lps {
        let count = base + usize::from(lp < extra);
        out.extend(std::iter::repeat_n(lp, count));
    }
    out
}

/// Assigns entity `i` to LP `i mod n_lps`.
///
/// Round-robin balances entity counts exactly but scatters neighborhoods,
/// maximizing cross-LP traffic — the adversarial case for E4.
pub fn round_robin_partition(n_entities: usize, n_lps: usize) -> Vec<LpId> {
    assert!(n_lps > 0, "need at least one LP");
    (0..n_entities).map(|i| i % n_lps).collect()
}

/// Entities owned by `lp` under a given assignment.
pub fn owned_by(assignment: &[LpId], lp: LpId) -> Vec<usize> {
    assignment
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == lp)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_sizes_balanced() {
        let p = block_partition(10, 3);
        assert_eq!(p.len(), 10);
        assert_eq!(p, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn block_partition_contiguous() {
        let p = block_partition(100, 7);
        for w in p.windows(2) {
            assert!(w[1] == w[0] || w[1] == w[0] + 1);
        }
    }

    #[test]
    fn round_robin_cycles() {
        let p = round_robin_partition(7, 3);
        assert_eq!(p, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn owned_by_inverts_assignment() {
        let p = round_robin_partition(9, 3);
        assert_eq!(owned_by(&p, 1), vec![1, 4, 7]);
        let total: usize = (0..3).map(|lp| owned_by(&p, lp).len()).sum();
        assert_eq!(total, 9);
    }

    #[test]
    fn empty_entities() {
        assert!(block_partition(0, 4).is_empty());
        assert!(round_robin_partition(0, 4).is_empty());
    }

    #[test]
    fn more_lps_than_entities() {
        let p = block_partition(2, 5);
        assert_eq!(p, vec![0, 1]);
    }
}
