//! Chandy–Misra–Bryant conservative parallel execution with null messages.
//!
//! Each [`LogicalProcess`] runs on its own OS thread with a private event
//! list and clock. An LP may only process an event at time `t` once every
//! input channel guarantees no earlier message can arrive; the guarantee is
//! propagated with **null messages** carrying lower bounds equal to the
//! sender's earliest possible future send time (its next event or safe
//! time, plus its lookahead). Positive lookahead makes the lower bounds
//! strictly increase around any channel cycle, which is the classical
//! deadlock-avoidance argument of Misra (1986) — reference \[5\] of the
//! paper.
//!
//! The cost of conservatism is null-message traffic inversely proportional
//! to lookahead; [`CmbStats::nulls_sent`] exposes it and experiment E4
//! sweeps it.

use crate::lp::{
    in_neighbors, out_neighbors, tie_key, validate_edges, LogicalProcess, LpCtx, LpId, Outgoing,
};
use lsds_core::{BinaryHeapQueue, EventQueue, PooledQueue, ScheduledEvent, SimTime, NO_PARENT};
use lsds_obs::{
    EngineTelemetry, NoopTelemetry, NoopTracer, Registry, RingTracer, SpanKind, SpanTrace,
    Telemetry, TelemetryConfig, TelemetryReport, TraceConfig, Tracer,
};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Per-LP execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CmbStats {
    /// Events (local + remote) processed by this LP.
    pub events: u64,
    /// Null messages sent by this LP.
    pub nulls_sent: u64,
    /// Real messages sent to other LPs.
    pub remote_sent: u64,
    /// Blocking waits for input.
    pub blocks: u64,
}

/// Result of a conservative parallel run.
#[derive(Debug)]
pub struct CmbReport<L> {
    /// The logical processes, in id order, with their final state.
    pub lps: Vec<L>,
    /// Per-LP counters, in id order.
    pub stats: Vec<CmbStats>,
}

impl<L> CmbReport<L> {
    /// Total events processed across all LPs.
    pub fn total_events(&self) -> u64 {
        self.stats.iter().map(|s| s.events).sum()
    }

    /// Total null messages — the conservative-synchronization overhead.
    pub fn total_nulls(&self) -> u64 {
        self.stats.iter().map(|s| s.nulls_sent).sum()
    }

    /// Total real inter-LP messages.
    pub fn total_remote(&self) -> u64 {
        self.stats.iter().map(|s| s.remote_sent).sum()
    }

    /// Exports the run's synchronization counters into a metrics registry:
    /// aggregate `cmb.*` counters plus per-LP event counts.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("cmb.events", self.total_events());
        reg.inc("cmb.nulls_sent", self.total_nulls());
        reg.inc("cmb.remote_sent", self.total_remote());
        reg.inc("cmb.blocks", self.stats.iter().map(|s| s.blocks).sum());
        reg.set_gauge("cmb.lps", self.lps.len() as f64);
        for (i, st) in self.stats.iter().enumerate() {
            reg.inc(&format!("cmb.lp.{i}.events"), st.events);
        }
    }
}

enum Packet<M> {
    /// Promise: no message with timestamp `< ts` will follow on this edge.
    Null { ts: f64 },
    /// A real message due at `at`, with its deterministic tie-break key
    /// and the tie key of the event that caused it (for the trace DAG).
    Event {
        at: SimTime,
        tie: u64,
        parent: u64,
        msg: M,
    },
    /// The sender has finished the run; treat its channel clock as +∞.
    Done,
}

struct Tagged<M> {
    src: LpId,
    packet: Packet<M>,
}

/// Out-edge table: `(destination, its channel, last promised bound)`.
type OutEdges<'a, M> = Vec<(LpId, &'a Sender<Tagged<M>>, f64)>;

/// Initial-events hook: called once per LP at time zero, before the run.
pub trait InitialEvents: LogicalProcess {
    /// Schedules the LP's initial events (local or remote).
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, Self::Msg>);
}

struct Engine<'a, L: LogicalProcess, T: Tracer, Y: Telemetry> {
    me: LpId,
    lp: L,
    tracer: T,
    tel: Y,
    /// Pooled (PR 6): payloads park in a slab, the heap orders fixed
    /// 32-byte records — no per-event boxing in the LP hot loop.
    queue: PooledQueue<L::Msg, BinaryHeapQueue<u32>>,
    clock: SimTime,
    seq: u64,
    /// channel clock per in-neighbor id
    in_clocks: Vec<(LpId, f64)>,
    /// (dst, sender, last promised lower bound)
    outs: OutEdges<'a, L::Msg>,
    /// Owned: `mpsc::Receiver` is `!Sync`, so each LP thread takes its
    /// receiver with it rather than borrowing from a shared table.
    rx: Receiver<Tagged<L::Msg>>,
    stats: CmbStats,
    staged: Vec<Outgoing<L::Msg>>,
    t_end: SimTime,
}

impl<'a, L: LogicalProcess, T: Tracer, Y: Telemetry> Engine<'a, L, T, Y> {
    fn apply(&mut self, tagged: Tagged<L::Msg>) {
        let Some(slot) = self.in_clocks.iter_mut().find(|(id, _)| *id == tagged.src) else {
            debug_assert!(false, "message from undeclared in-neighbor");
            return;
        };
        match tagged.packet {
            Packet::Null { ts } => slot.1 = slot.1.max(ts),
            Packet::Event {
                at,
                tie,
                parent,
                msg,
            } => {
                // the sender promised (via null messages or earlier events)
                // that nothing below the channel clock would follow
                debug_assert!(
                    at.seconds() >= slot.1,
                    "causality: LP {} sent event at t={at} below its promised bound {}",
                    tagged.src,
                    slot.1
                );
                slot.1 = slot.1.max(at.seconds());
                self.queue
                    .insert(ScheduledEvent::with_parent(at, tie, parent, msg));
            }
            Packet::Done => slot.1 = f64::INFINITY,
        }
    }

    fn drain_nonblocking(&mut self) {
        while let Ok(tagged) = self.rx.try_recv() {
            self.apply(tagged);
        }
    }

    fn safe_time(&self) -> f64 {
        self.in_clocks
            .iter()
            .map(|(_, c)| *c)
            .fold(f64::INFINITY, f64::min)
    }

    fn flush_staged(&mut self) {
        for out in self.staged.drain(..) {
            match out {
                Outgoing::Local { at, parent, msg } => {
                    let tie = tie_key(self.me, self.seq);
                    self.seq += 1;
                    self.queue
                        .insert(ScheduledEvent::with_parent(at, tie, parent, msg));
                }
                Outgoing::Remote {
                    dst,
                    at,
                    parent,
                    msg,
                } => {
                    let tie = tie_key(self.me, self.seq);
                    self.seq += 1;
                    let Some((_, tx, last)) = self.outs.iter_mut().find(|(d, _, _)| *d == dst)
                    else {
                        debug_assert!(false, "send to undeclared out-neighbor");
                        continue;
                    };
                    // the null messages already sent on this edge promised
                    // `*last` as a lower bound; an event below it would
                    // mean our declared lookahead lied
                    debug_assert!(
                        at.seconds() >= *last,
                        "causality: LP {} sending t={at} below its promised bound {last} (lookahead violated)",
                        self.me
                    );
                    // A disconnected receiver has already terminated (its
                    // safe time passed t_end), so anything we would send
                    // it now is beyond the horizon — drop, don't panic.
                    tx.send(Tagged {
                        src: self.me,
                        packet: Packet::Event {
                            at,
                            tie,
                            parent,
                            msg,
                        },
                    })
                    .ok();
                    *last = last.max(at.seconds());
                    self.stats.remote_sent += 1;
                }
            }
        }
    }

    fn handle_one(&mut self, ev: ScheduledEvent<L::Msg>) {
        let at = ev.time;
        debug_assert!(at >= self.clock, "causality violation");
        self.clock = at;
        self.stats.events += 1;
        let kind = if T::ENABLED {
            self.lp.trace_kind(&ev.event)
        } else {
            SpanKind::DEFAULT
        };
        let token = self.tracer.begin(ev.seq);
        let mut ctx = LpCtx {
            now: at,
            me: self.me,
            lookahead: self.lp.lookahead(),
            cause: ev.seq,
            staged: &mut self.staged,
        };
        self.lp.handle(at, ev.event, &mut ctx);
        self.tracer
            .record(ev.seq, ev.parent, kind, self.me as u32, at.seconds(), token);
        self.flush_staged();
        if Y::ENABLED && self.tel.tick(at.seconds()) {
            let lane = self.me as u32;
            self.tel
                .sample("cmb.queue_len", lane, at.seconds(), self.queue.len() as f64);
        }
    }

    fn send_nulls(&mut self) {
        let next_local = self
            .queue
            .peek_time()
            .map_or(f64::INFINITY, |t| t.seconds());
        let lb = next_local.min(self.safe_time()).min(self.t_end.seconds()) + self.lp.lookahead();
        for i in 0..self.outs.len() {
            if lb > self.outs[i].2 {
                let (_, tx, _) = &self.outs[i];
                // Terminated receivers no longer need our bound (see
                // flush_staged): ignore the disconnect.
                tx.send(Tagged {
                    src: self.me,
                    packet: Packet::Null { ts: lb },
                })
                .ok();
                self.outs[i].2 = lb;
                self.stats.nulls_sent += 1;
                if Y::ENABLED {
                    self.tel.inc("cmb.nulls", self.me as u32, 1);
                }
            }
        }
    }

    fn run(mut self) -> (L, CmbStats, T, Y) {
        loop {
            self.drain_nonblocking();
            let safe = self.safe_time();
            // Process strictly below the safe time (a message may still
            // arrive exactly at `safe`), and never beyond the horizon.
            while let Some(t) = self.queue.peek_time() {
                if !(t.seconds() < safe && t <= self.t_end) {
                    break;
                }
                let Some(ev) = self.queue.pop_min() else {
                    debug_assert!(false, "peeked event vanished");
                    break;
                };
                self.handle_one(ev);
            }
            let done_locally = self.queue.peek_time().is_none_or(|t| t > self.t_end);
            if done_locally && safe > self.t_end.seconds() {
                for (_, tx, _) in &self.outs {
                    tx.send(Tagged {
                        src: self.me,
                        packet: Packet::Done,
                    })
                    .ok();
                }
                return (self.lp, self.stats, self.tracer, self.tel);
            }
            // Blocked: publish our lower bound, then wait for progress.
            self.send_nulls();
            // A pure source (no in-edges) has safe = +inf, so it always
            // drains its queue and returns above; reaching here with no
            // in-neighbors would spin forever.
            assert!(
                !self.in_clocks.is_empty(),
                "LP {} blocked with no in-edges",
                self.me
            );
            self.stats.blocks += 1;
            if Y::ENABLED {
                self.tel.inc("cmb.blocks", self.me as u32, 1);
            }
            // lsds-lint: allow(wall-clock) reason="telemetry measures host time blocked on input; never feeds back into simulated time or delivery order"
            let blocked_from = Y::ENABLED.then(std::time::Instant::now);
            let received = self.rx.recv();
            if let Some(from) = blocked_from {
                self.tel.inc(
                    "cmb.blocked_ns",
                    self.me as u32,
                    from.elapsed().as_nanos() as u64,
                );
            }
            match received {
                Ok(tagged) => self.apply(tagged),
                Err(_) => {
                    // all senders done and channel drained
                    return (self.lp, self.stats, self.tracer, self.tel);
                }
            }
        }
    }
}

/// Runs logical processes to `t_end` under conservative CMB synchronization.
///
/// `edges` lists the directed communication channels `(src, dst)`; an LP
/// may only `send` along a declared edge. Null messages flow on the same
/// edges. Every LP must declare strictly positive [lookahead].
///
/// [lookahead]: LogicalProcess::lookahead
pub fn run_cmb<L>(lps: Vec<L>, edges: &[(LpId, LpId)], t_end: SimTime) -> CmbReport<L>
where
    L: InitialEvents,
{
    let (report, _tracers, _tels) =
        run_cmb_with(lps, edges, t_end, |_| NoopTracer, |_| NoopTelemetry);
    report
}

/// Like [`run_cmb`], but records scheduler telemetry — per-LP null
/// messages, blocked wall time, and sampled queue lengths — into one
/// [`EngineTelemetry`] sink per LP, merged after the run.
///
/// Telemetry only observes: the returned [`CmbReport`] is bit-identical
/// to a plain [`run_cmb`] run's.
pub fn run_cmb_telemetry<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    tcfg: TelemetryConfig,
) -> (CmbReport<L>, TelemetryReport)
where
    L: InitialEvents,
{
    let (report, _tracers, tels) = run_cmb_with(
        lps,
        edges,
        t_end,
        |_| NoopTracer,
        |lp| EngineTelemetry::for_track(tcfg.clone(), lp as u32),
    );
    (report, TelemetryReport::merge(tels))
}

/// Like [`run_cmb`], but records a causal span per handled event into a
/// per-LP [`RingTracer`] (each with its own `cfg`-sized ring), then merges
/// the per-LP traces deterministically by `(virtual time, event id)`.
///
/// The tracer only observes — event ids, tie-breaks, and delivery order
/// are computed identically with tracing on or off, so the returned
/// [`CmbReport`] is bit-identical to an untraced run's.
pub fn run_cmb_traced<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: TraceConfig,
) -> (CmbReport<L>, SpanTrace)
where
    L: InitialEvents,
{
    let (report, tracers, _tels) = run_cmb_with(
        lps,
        edges,
        t_end,
        |_| RingTracer::new(cfg),
        |_| NoopTelemetry,
    );
    let trace = SpanTrace::merge(tracers.into_iter().map(RingTracer::finish).collect());
    (report, trace)
}

fn run_cmb_with<L, T, Y>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    mk_tracer: impl Fn(LpId) -> T,
    mk_tel: impl Fn(LpId) -> Y,
) -> (CmbReport<L>, Vec<T>, Vec<Y>)
where
    L: InitialEvents,
    T: Tracer + Send,
    Y: Telemetry + Send,
{
    let n = lps.len();
    validate_edges(n, edges);
    for (i, lp) in lps.iter().enumerate() {
        assert!(
            lp.lookahead() > 0.0 && lp.lookahead().is_finite(),
            "LP {i} must declare positive finite lookahead"
        );
    }
    let mut txs: Vec<Sender<Tagged<L::Msg>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<Tagged<L::Msg>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let mut results: Vec<Option<(L, CmbStats, T, Y)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (me, lp) in lps.into_iter().enumerate() {
            let in_clocks: Vec<(LpId, f64)> = in_neighbors(edges, me)
                .into_iter()
                .map(|s| (s, 0.0))
                .collect();
            let outs: OutEdges<'_, L::Msg> = out_neighbors(edges, me)
                .into_iter()
                .map(|d| (d, &txs[d], 0.0))
                .collect();
            // lsds-lint: allow(hot-path-panic) reason="run setup before any event is processed; each index is taken exactly once by construction"
            let rx = rxs[me].take().expect("receiver taken twice");
            let tracer = mk_tracer(me);
            let tel = mk_tel(me);
            let handle = scope.spawn(move || {
                let mut engine = Engine {
                    me,
                    lp,
                    tracer,
                    tel,
                    queue: PooledQueue::new(BinaryHeapQueue::new()),
                    clock: SimTime::ZERO,
                    seq: 0,
                    in_clocks,
                    outs,
                    rx,
                    stats: CmbStats::default(),
                    staged: Vec::new(),
                    t_end,
                };
                // initial events at t = 0
                let la = engine.lp.lookahead();
                {
                    let mut ctx = LpCtx {
                        now: SimTime::ZERO,
                        me,
                        lookahead: la,
                        cause: NO_PARENT,
                        staged: &mut engine.staged,
                    };
                    engine.lp.initial_events(&mut ctx);
                }
                engine.flush_staged();
                engine.run()
            });
            handles.push((me, handle));
        }
        for (me, handle) in handles {
            // lsds-lint: allow(hot-path-panic) reason="thread teardown: propagate an LP thread panic to the caller instead of swallowing it"
            results[me] = Some(handle.join().expect("LP thread panicked"));
        }
    });

    let mut lps_out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    let mut tracers = Vec::with_capacity(n);
    let mut tels = Vec::with_capacity(n);
    for r in results {
        // lsds-lint: allow(hot-path-panic) reason="post-run teardown: every LP index was joined above"
        let (lp, st, tr, tel) = r.expect("missing LP result");
        lps_out.push(lp);
        stats.push(st);
        tracers.push(tr);
        tels.push(tel);
    }
    (
        CmbReport {
            lps: lps_out,
            stats,
        },
        tracers,
        tels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ring of LPs passing a token; each hop takes `delay`, while the
    /// declared lookahead `la ≤ delay` can be tightened independently to
    /// study null-message overhead.
    struct RingNode {
        n: usize,
        hops_seen: u64,
        last_time: f64,
        delay: f64,
        la: f64,
    }

    impl LogicalProcess for RingNode {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
            self.hops_seen += 1;
            self.last_time = now.seconds();
            let next = (ctx.me() + 1) % self.n;
            ctx.send(next, self.delay, hop + 1);
        }
        fn lookahead(&self) -> f64 {
            self.la
        }
    }

    impl InitialEvents for RingNode {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    fn ring_edges(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    fn run_ring(n: usize, delay: f64, la: f64, t_end: f64) -> CmbReport<RingNode> {
        let lps: Vec<RingNode> = (0..n)
            .map(|_| RingNode {
                n,
                hops_seen: 0,
                last_time: 0.0,
                delay,
                la,
            })
            .collect();
        run_cmb(lps, &ring_edges(n), SimTime::new(t_end))
    }

    #[test]
    fn ring_token_count_matches_analytic() {
        // token starts at LP0 t=0, hops every 1.0s; by t=100 inclusive the
        // ring processes events at t=0,1,...,100 → 101 events total
        let report = run_ring(4, 1.0, 1.0, 100.0);
        assert_eq!(report.total_events(), 101);
        // LP0 sees t=0,4,8,...,100 → 26 events
        assert_eq!(report.lps[0].hops_seen, 26);
        assert_eq!(report.lps[1].hops_seen, 25);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_ring(5, 0.7, 0.7, 50.0);
        let b = run_ring(5, 0.7, 0.7, 50.0);
        for i in 0..5 {
            assert_eq!(a.lps[i].hops_seen, b.lps[i].hops_seen);
            assert_eq!(a.lps[i].last_time, b.lps[i].last_time);
        }
        assert_eq!(a.total_events(), b.total_events());
    }

    #[test]
    fn smaller_lookahead_more_nulls() {
        // identical workload (hop delay 2.0), only the promise horizon
        // differs — the fine lookahead must generate more null traffic
        let coarse = run_ring(4, 2.0, 2.0, 200.0);
        let fine = run_ring(4, 2.0, 0.25, 200.0);
        assert_eq!(coarse.total_events(), fine.total_events());
        assert!(
            fine.total_nulls() > coarse.total_nulls(),
            "fine {} vs coarse {}",
            fine.total_nulls(),
            coarse.total_nulls()
        );
    }

    /// Source LP streams to a sink LP; no cycles.
    struct Source {
        sent: u64,
        rate_dt: f64,
        limit: u64,
    }
    impl LogicalProcess for Source {
        type Msg = u64;
        fn handle(&mut self, _now: SimTime, k: u64, ctx: &mut LpCtx<'_, u64>) {
            if k < self.limit {
                self.sent += 1;
                ctx.send(1, self.rate_dt, k);
                ctx.schedule_in(self.rate_dt, k + 1);
            }
        }
        fn lookahead(&self) -> f64 {
            self.rate_dt
        }
    }
    impl InitialEvents for Source {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            ctx.schedule_in(0.0, 0);
        }
    }

    struct Sink {
        received: Vec<u64>,
    }
    impl LogicalProcess for Sink {
        type Msg = u64;
        fn handle(&mut self, _now: SimTime, k: u64, _ctx: &mut LpCtx<'_, u64>) {
            self.received.push(k);
        }
        fn lookahead(&self) -> f64 {
            1.0
        }
    }
    impl InitialEvents for Sink {
        fn initial_events(&mut self, _ctx: &mut LpCtx<'_, u64>) {}
    }

    /// Heterogeneous LPs need a common type; wrap in an enum.
    enum Node {
        Source(Source),
        Sink(Sink),
    }
    impl LogicalProcess for Node {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, msg: u64, ctx: &mut LpCtx<'_, u64>) {
            match self {
                Node::Source(s) => s.handle(now, msg, ctx),
                Node::Sink(s) => s.handle(now, msg, ctx),
            }
        }
        fn lookahead(&self) -> f64 {
            match self {
                Node::Source(s) => s.lookahead(),
                Node::Sink(s) => s.lookahead(),
            }
        }
    }
    impl InitialEvents for Node {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            match self {
                Node::Source(s) => s.initial_events(ctx),
                Node::Sink(s) => s.initial_events(ctx),
            }
        }
    }

    #[test]
    fn source_sink_pipeline_delivers_in_order() {
        let lps = vec![
            Node::Source(Source {
                sent: 0,
                rate_dt: 0.5,
                limit: 40,
            }),
            Node::Sink(Sink { received: vec![] }),
        ];
        let report = run_cmb(lps, &[(0, 1)], SimTime::new(1000.0));
        match &report.lps[1] {
            Node::Sink(s) => {
                assert_eq!(s.received.len(), 40);
                assert!(s.received.windows(2).all(|w| w[0] < w[1]), "in order");
            }
            _ => panic!(),
        }
    }

    /// An LP whose sends duck under its own already-promised channel bound
    /// (the second send is timestamped below the first) violates the CMB
    /// lookahead contract; the debug-build causality assertion must catch
    /// it at the sender before the receiver ever sees the stale message.
    /// (The Time Warp engine tolerates exactly this shape — a send far
    /// below the declared lookahead arrives as a straggler and is repaired
    /// by rollback; see `timewarp::tests::forced_stragglers_match_sequential`.)
    ///
    /// Both LPs misbehave symmetrically so every thread terminates (by
    /// panicking) — a lone panicking LP would leave its peer blocked on
    /// `recv` and the scoped join waiting forever.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_order_send_trips_causality_assert() {
        struct Liar;
        impl LogicalProcess for Liar {
            type Msg = u64;
            fn handle(&mut self, _now: SimTime, _m: u64, ctx: &mut LpCtx<'_, u64>) {
                // first send raises the edge's promised bound to t=5.0;
                // the second tries to slip an event in beneath it
                let peer = (ctx.me() + 1) % 2;
                ctx.send(peer, 5.0, 1);
                ctx.send(peer, 0.2, 2);
            }
            fn lookahead(&self) -> f64 {
                0.1
            }
        }
        impl InitialEvents for Liar {
            fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
                ctx.schedule_in(0.0, 0);
            }
        }
        run_cmb(vec![Liar, Liar], &[(0, 1), (1, 0)], SimTime::new(10.0));
    }

    #[test]
    fn traced_run_matches_untraced_and_links_parents() {
        let plain = run_ring(4, 1.0, 1.0, 100.0);
        let lps: Vec<RingNode> = (0..4)
            .map(|_| RingNode {
                n: 4,
                hops_seen: 0,
                last_time: 0.0,
                delay: 1.0,
                la: 1.0,
            })
            .collect();
        let (traced, trace) = run_cmb_traced(
            lps,
            &ring_edges(4),
            SimTime::new(100.0),
            TraceConfig::default(),
        );
        assert_eq!(plain.total_events(), traced.total_events());
        for i in 0..4 {
            assert_eq!(plain.lps[i].hops_seen, traced.lps[i].hops_seen);
            assert_eq!(plain.lps[i].last_time, traced.lps[i].last_time);
        }
        // one span per event, merged in (vt, id) order, on per-LP tracks
        assert_eq!(trace.len() as u64, traced.total_events());
        assert!(trace.spans.windows(2).all(|w| w[0].vt <= w[1].vt));
        assert!(trace.spans.iter().any(|s| s.track == 3));
        // the token chain: every span but the initial one has its parent
        // in the trace, and the critical path covers the whole run
        let path = trace.critical_path();
        assert!(path.complete);
        assert_eq!(path.steps.len() as u64, traced.total_events());
        assert!((path.makespan - 100.0).abs() < 1e-9);
    }

    #[test]
    fn telemetry_run_matches_plain_and_counts_sync() {
        let plain = run_ring(4, 1.0, 1.0, 100.0);
        let lps: Vec<RingNode> = (0..4)
            .map(|_| RingNode {
                n: 4,
                hops_seen: 0,
                last_time: 0.0,
                delay: 1.0,
                la: 1.0,
            })
            .collect();
        let (telr, tel) = run_cmb_telemetry(
            lps,
            &ring_edges(4),
            SimTime::new(100.0),
            TelemetryConfig::new().every_events(8),
        );
        assert_eq!(plain.total_events(), telr.total_events());
        for i in 0..4 {
            assert_eq!(plain.lps[i].hops_seen, telr.lps[i].hops_seen);
            assert_eq!(plain.lps[i].last_time, telr.lps[i].last_time);
        }
        // telemetry counters agree with the engine's own stats
        assert_eq!(tel.counter("cmb.nulls"), telr.total_nulls());
        assert_eq!(tel.events(), telr.total_events());
        assert_eq!(
            tel.counter("cmb.blocks"),
            telr.stats.iter().map(|s| s.blocks).sum::<u64>()
        );
        // queue-length samples landed on per-LP lanes
        assert!(tel.series_on("cmb.queue_len", 0).is_some());
    }

    // ---- S1 bug sweep: the t_end fold in the null-message bound ----
    //
    // `send_nulls` computes `lb = min(next_local, safe, t_end) + la`. The
    // t_end fold caps promises near the horizon, so these tests pin the
    // boundary behavior: the bound must still exceed t_end (else peers
    // with events exactly AT t_end would never clear `safe > t` and the
    // run would deadlock or drop the final events).

    /// Logs every delivery as `(time bits, payload)` so runs can be
    /// compared bit-exactly across engines.
    struct Recorder {
        n: usize,
        log: Vec<(u64, u64)>,
        limit: f64,
    }
    impl LogicalProcess for Recorder {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
            self.log.push((now.seconds().to_bits(), v));
            if now.seconds() + 1.0 <= self.limit {
                ctx.send((ctx.me() + 1) % self.n, 1.0, v + 1);
            }
        }
        fn lookahead(&self) -> f64 {
            1.0
        }
    }
    impl InitialEvents for Recorder {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    fn recorders(n: usize, limit: f64) -> Vec<Recorder> {
        (0..n)
            .map(|_| Recorder {
                n,
                log: Vec::new(),
                limit,
            })
            .collect()
    }

    /// The last hop of the chain lands exactly on t_end; it must be
    /// delivered (horizon is inclusive), once, and the run must terminate.
    #[test]
    fn event_exactly_at_t_end_is_delivered() {
        let t_end = SimTime::new(7.0);
        let seq = crate::sequential::run_sequential(recorders(3, 7.0), &ring_edges(3), t_end);
        let par = run_cmb(recorders(3, 7.0), &ring_edges(3), t_end);
        assert_eq!(par.total_events(), 8, "events at t=0..=7 inclusive");
        for i in 0..3 {
            assert_eq!(seq.lps[i].log, par.lps[i].log, "LP {i} log diverged");
        }
        // the t=7.0 delivery exists exactly once
        let at_end: usize = par
            .lps
            .iter()
            .flat_map(|l| &l.log)
            .filter(|(tb, _)| *tb == 7.0f64.to_bits())
            .count();
        assert_eq!(at_end, 1);
    }

    /// Two senders' messages arrive at a third LP at exactly t_end, at the
    /// same timestamp — the equal-time cross-LP tie must break by
    /// `(source LP, sequence)` and match the sequential reference.
    #[test]
    fn equal_time_cross_lp_ties_at_the_bound() {
        struct FanIn {
            log: Vec<(u64, u64)>,
            horizon: f64,
        }
        impl LogicalProcess for FanIn {
            type Msg = u64;
            fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
                self.log.push((now.seconds().to_bits(), v));
                if ctx.me() < 2 && now.seconds() == 0.0 {
                    // both senders stage two messages each, all landing on
                    // LP2 exactly at the horizon
                    ctx.send(2, self.horizon, 10 * ctx.me() as u64);
                    ctx.send(2, self.horizon, 10 * ctx.me() as u64 + 1);
                }
            }
            fn lookahead(&self) -> f64 {
                1.0
            }
        }
        impl InitialEvents for FanIn {
            fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
                if ctx.me() < 2 {
                    ctx.schedule_in(0.0, 99);
                }
            }
        }
        let mk = || {
            (0..3)
                .map(|_| FanIn {
                    log: Vec::new(),
                    horizon: 5.0,
                })
                .collect::<Vec<_>>()
        };
        let edges = [(0usize, 2usize), (1, 2)];
        let t_end = SimTime::new(5.0);
        let seq = crate::sequential::run_sequential(mk(), &edges, t_end);
        let par = run_cmb(mk(), &edges, t_end);
        // all four arrive at t=5.0 == t_end, ordered by (src, seq)
        assert_eq!(
            par.lps[2].log,
            vec![
                (5.0f64.to_bits(), 0),
                (5.0f64.to_bits(), 1),
                (5.0f64.to_bits(), 10),
                (5.0f64.to_bits(), 11),
            ]
        );
        assert_eq!(seq.lps[2].log, par.lps[2].log);
    }

    /// Degenerate horizon: only the t = 0 initial events run; cross-LP
    /// messages (delay ≥ lookahead > 0) are all beyond the horizon and the
    /// run must still terminate cleanly.
    #[test]
    fn t_end_zero_runs_initial_events_only() {
        let t_end = SimTime::ZERO;
        let par = run_cmb(recorders(3, 10.0), &ring_edges(3), t_end);
        assert_eq!(par.total_events(), 1, "only LP0's t=0 event");
        assert_eq!(par.lps[0].log, vec![(0.0f64.to_bits(), 0)]);
    }

    /// A send whose arrival equals the sender's promised null bound
    /// exactly (at == lb after a null was sent) must be accepted by the
    /// receiver-side causality assert (bounds are promises about strictly
    /// earlier messages).
    #[test]
    fn arrival_exactly_at_promised_bound_accepted() {
        // LP0's first null promises lb = min(∞, safe, t_end) + 1.0; its
        // later event arrives exactly at an integer bound repeatedly as
        // the chain advances in lookahead-sized steps.
        let t_end = SimTime::new(4.0);
        let seq = crate::sequential::run_sequential(recorders(2, 4.0), &ring_edges(2), t_end);
        let par = run_cmb(recorders(2, 4.0), &ring_edges(2), t_end);
        assert_eq!(par.total_events(), 5);
        for i in 0..2 {
            assert_eq!(seq.lps[i].log, par.lps[i].log);
        }
    }

    #[test]
    #[should_panic]
    fn zero_lookahead_rejected() {
        struct Zero;
        impl LogicalProcess for Zero {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut LpCtx<'_, ()>) {}
            fn lookahead(&self) -> f64 {
                0.0
            }
        }
        impl InitialEvents for Zero {
            fn initial_events(&mut self, _: &mut LpCtx<'_, ()>) {}
        }
        run_cmb(vec![Zero, Zero], &[(0, 1), (1, 0)], SimTime::new(1.0));
    }
}
