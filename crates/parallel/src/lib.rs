//! `lsds-parallel` — distributed simulation execution.
//!
//! The taxonomy (§3) classifies engines by *execution* into **centralized**
//! (one execution unit, regardless of available cores — `lsds-core`'s
//! engines) and **distributed** (multiple cooperating processors). The
//! paper traces distributed simulation to Misra's 1986 survey and notes
//! that "despite over two decades of research, the technology of
//! distributed simulations has not significantly impressed the general
//! simulation community" (Fujimoto 1993) — because "considerable efforts
//! and expertise are still required to develop efficient simulation
//! programs". This crate implements the two classical conservative
//! designs so experiment E4 can quantify exactly that trade-off:
//!
//! * [`cmb`] — asynchronous conservative synchronization with **null
//!   messages** (Chandy–Misra–Bryant). Each logical process advances as
//!   far as its input-channel clocks allow; lookahead bounds the null-
//!   message overhead.
//! * [`timestep`] — synchronous (barrier) execution in fixed windows no
//!   wider than the system lookahead.
//! * [`timewarp`] — **optimistic** synchronization (Jefferson's Time
//!   Warp): speculative execution with state saving, rollback on
//!   stragglers, anti-message annihilation, and token-based GVT driving
//!   fossil collection. Wins where lookahead is short (E4's bad case for
//!   CMB).
//! * [`worksteal`] — conservative synchronization on a **work-stealing
//!   worker pool**: LPs are decoupled from OS threads, channel clocks
//!   are written through shared memory instead of null messages, and an
//!   epoch rebalancer migrates LPs between workers by measured cost.
//!   Wins when LPs outnumber cores (the oversubscription case
//!   `exp_worksteal` measures).
//!
//! All engines are deterministic: events are processed per logical
//! process in `(time, source, sequence)` order, independent of thread
//! interleaving, so a parallel run reproduces the centralized result —
//! [`sequential`] is the single-threaded reference the equivalence tests
//! compare every engine against.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cmb;
pub mod lp;
pub mod partition;
pub mod sequential;
pub mod timestep;
pub mod timewarp;
pub mod worksteal;

pub use cmb::{run_cmb, run_cmb_telemetry, run_cmb_traced, CmbReport, CmbStats, InitialEvents};
pub use lp::{LogicalProcess, LpCtx, LpId};
pub use partition::{
    block_partition, owned_by, owners, profiled, profiled_from_trace, round_robin_partition,
};
pub use sequential::{run_sequential, run_sequential_telemetry, SequentialReport};
pub use timestep::{run_timestep, run_timestep_telemetry, run_timestep_traced, TimestepReport};
pub use timewarp::{
    run_timewarp, run_timewarp_cfg, run_timewarp_telemetry, run_timewarp_traced, SaveState,
    TwConfig, TwReport, TwStats,
};
pub use worksteal::{
    run_worksteal, run_worksteal_cfg, run_worksteal_telemetry, WsConfig, WsReport, WsSchedStats,
    WsStats,
};
