//! Synchronous (barrier) parallel execution in fixed time windows.
//!
//! The simpler of the two distributed designs: all logical processes
//! advance in lockstep through windows of width `delta ≤ lookahead`.
//! Because every inter-LP message carries at least `lookahead` of delay, a
//! message sent during window `k` is always due in window `k+1` or later,
//! so one barrier per window is the only synchronization needed. The
//! trade-off against [`crate::cmb`] is classic: no null messages, but every
//! LP pays for every window — idle partitions wait at the barrier
//! (measured in experiment E4).

use crate::lp::{tie_key, LpCtx, LpId, Outgoing};
use lsds_core::{BinaryHeapQueue, EventQueue, PooledQueue, ScheduledEvent, SimTime, NO_PARENT};
use lsds_obs::{
    EngineTelemetry, NoopTelemetry, NoopTracer, Registry, RingTracer, SpanKind, SpanTrace,
    Telemetry, TelemetryConfig, TelemetryReport, TraceConfig, Tracer,
};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Barrier;

/// Result of a time-stepped parallel run.
#[derive(Debug)]
pub struct TimestepReport<L> {
    /// The logical processes, in id order, with final state.
    pub lps: Vec<L>,
    /// Events processed per LP.
    pub events: Vec<u64>,
    /// Number of synchronization windows executed.
    pub windows: u64,
}

impl<L> TimestepReport<L> {
    /// Total events across LPs.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }

    /// Exports the run's synchronization counters into a metrics registry.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("timestep.events", self.total_events());
        reg.inc("timestep.windows", self.windows);
        reg.set_gauge("timestep.lps", self.lps.len() as f64);
        for (i, ev) in self.events.iter().enumerate() {
            reg.inc(&format!("timestep.lp.{i}.events"), *ev);
        }
    }
}

struct Mail<M> {
    at: SimTime,
    tie: u64,
    parent: u64,
    msg: M,
}

/// Runs logical processes to `t_end` in synchronized windows of `delta`.
///
/// `delta` must not exceed any LP's lookahead: the window invariant
/// requires every remote message to land in a strictly later window.
pub fn run_timestep<L>(lps: Vec<L>, delta: f64, t_end: SimTime) -> TimestepReport<L>
where
    L: crate::cmb::InitialEvents,
{
    let (report, _tracers, _tels) =
        run_timestep_with(lps, delta, t_end, |_| NoopTracer, |_| NoopTelemetry);
    report
}

/// Like [`run_timestep`], but records scheduler telemetry — per-LP barrier
/// waits, barrier wall time, and sampled queue lengths — into one
/// [`EngineTelemetry`] sink per LP, merged after the run.
///
/// Telemetry only observes: the returned [`TimestepReport`] is
/// bit-identical to a plain [`run_timestep`] run's.
pub fn run_timestep_telemetry<L>(
    lps: Vec<L>,
    delta: f64,
    t_end: SimTime,
    tcfg: TelemetryConfig,
) -> (TimestepReport<L>, TelemetryReport)
where
    L: crate::cmb::InitialEvents,
{
    let (report, _tracers, tels) = run_timestep_with(
        lps,
        delta,
        t_end,
        |_| NoopTracer,
        |lp| EngineTelemetry::for_track(tcfg.clone(), lp as u32),
    );
    (report, TelemetryReport::merge(tels))
}

/// Like [`run_timestep`], but records a causal span per handled event into
/// a per-LP [`RingTracer`], then merges the per-LP traces deterministically
/// by `(virtual time, event id)`.
///
/// The tracer only observes — event ids, tie-breaks, and delivery order
/// are computed identically with tracing on or off, so the returned
/// [`TimestepReport`] is bit-identical to an untraced run's.
pub fn run_timestep_traced<L>(
    lps: Vec<L>,
    delta: f64,
    t_end: SimTime,
    cfg: TraceConfig,
) -> (TimestepReport<L>, SpanTrace)
where
    L: crate::cmb::InitialEvents,
{
    let (report, tracers, _tels) = run_timestep_with(
        lps,
        delta,
        t_end,
        |_| RingTracer::new(cfg),
        |_| NoopTelemetry,
    );
    let trace = SpanTrace::merge(tracers.into_iter().map(RingTracer::finish).collect());
    (report, trace)
}

fn run_timestep_with<L, T, Y>(
    lps: Vec<L>,
    delta: f64,
    t_end: SimTime,
    mk_tracer: impl Fn(LpId) -> T,
    mk_tel: impl Fn(LpId) -> Y,
) -> (TimestepReport<L>, Vec<T>, Vec<Y>)
where
    L: crate::cmb::InitialEvents,
    T: Tracer + Send,
    Y: Telemetry + Send,
{
    assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
    let n = lps.len();
    for (i, lp) in lps.iter().enumerate() {
        assert!(
            lp.lookahead() >= delta,
            "LP {i} lookahead {} below window {delta}",
            lp.lookahead()
        );
    }
    let windows = (t_end.seconds() / delta).ceil() as u64;
    let barrier = Barrier::new(n);
    let mut txs: Vec<Sender<Mail<L::Msg>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<Mail<L::Msg>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let mut out: Vec<Option<(L, u64, T, Y)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        let txs = &txs;
        for (me, lp) in lps.into_iter().enumerate() {
            let barrier = &barrier;
            let senders: Vec<&Sender<Mail<L::Msg>>> = txs.iter().collect();
            // mpsc::Receiver is !Sync: the LP thread owns its receiver
            // lsds-lint: allow(hot-path-panic) reason="run setup before any event is processed; each index is taken exactly once by construction"
            let rx = rxs[me].take().expect("receiver taken twice");
            let tracer = mk_tracer(me);
            let tel = mk_tel(me);
            handles.push((
                me,
                scope.spawn(move || {
                    let mut lp = lp;
                    let mut tracer = tracer;
                    let mut tel = tel;
                    // pooled (PR 6): payloads park in a slab, the heap
                    // orders fixed 32-byte records — no per-event boxing
                    let mut queue: PooledQueue<L::Msg, BinaryHeapQueue<u32>> =
                        PooledQueue::new(BinaryHeapQueue::new());
                    let mut staged: Vec<Outgoing<L::Msg>> = Vec::new();
                    let mut seq: u64 = 0;
                    let mut events: u64 = 0;
                    // delivered timestamps must never regress: a message
                    // landing in an already-processed window would mean the
                    // window invariant (delay ≥ δ) was violated
                    #[cfg(debug_assertions)]
                    let mut last_t = SimTime::ZERO;
                    let la = lp.lookahead();

                    // t = 0 initial events
                    {
                        let mut ctx = LpCtx {
                            now: SimTime::ZERO,
                            me,
                            lookahead: la,
                            cause: NO_PARENT,
                            staged: &mut staged,
                        };
                        lp.initial_events(&mut ctx);
                    }
                    flush(me, &mut staged, &mut seq, &mut queue, &senders);

                    // Window w processes events with t ∈ [wδ, (w+1)δ).
                    // delay ≥ δ guarantees a message sent in window w is
                    // due at or after (w+1)δ, so one barrier per window is
                    // the only synchronization needed (see module docs).
                    for w in 0..windows {
                        let w_end = (w + 1) as f64 * delta;
                        // mail sent in earlier windows is fully delivered
                        // (the barrier below is the happens-before edge)
                        while let Ok(mail) = rx.try_recv() {
                            queue.insert(ScheduledEvent::with_parent(
                                mail.at,
                                mail.tie,
                                mail.parent,
                                mail.msg,
                            ));
                        }
                        while let Some(t) = queue.peek_time() {
                            if t.seconds() >= w_end || t > t_end {
                                break;
                            }
                            let Some(ev) = queue.pop_min() else {
                                debug_assert!(false, "peeked event vanished");
                                break;
                            };
                            #[cfg(debug_assertions)]
                            {
                                assert!(
                                    ev.time >= last_t,
                                    "causality: LP {me} delivered t={} after t={last_t}",
                                    ev.time
                                );
                                last_t = ev.time;
                            }
                            events += 1;
                            let kind = if T::ENABLED {
                                lp.trace_kind(&ev.event)
                            } else {
                                SpanKind::DEFAULT
                            };
                            let token = tracer.begin(ev.seq);
                            let mut ctx = LpCtx {
                                now: ev.time,
                                me,
                                lookahead: la,
                                cause: ev.seq,
                                staged: &mut staged,
                            };
                            lp.handle(ev.time, ev.event, &mut ctx);
                            tracer.record(
                                ev.seq,
                                ev.parent,
                                kind,
                                me as u32,
                                ev.time.seconds(),
                                token,
                            );
                            flush(me, &mut staged, &mut seq, &mut queue, &senders);
                            if Y::ENABLED && tel.tick(ev.time.seconds()) {
                                tel.sample(
                                    "ts.queue_len",
                                    me as u32,
                                    ev.time.seconds(),
                                    queue.len() as f64,
                                );
                            }
                        }
                        if Y::ENABLED {
                            tel.inc("ts.barrier_waits", me as u32, 1);
                            // lsds-lint: allow(wall-clock) reason="telemetry measures host time waiting at the window barrier; never feeds back into simulated time or delivery order"
                            let from = std::time::Instant::now();
                            barrier.wait();
                            tel.inc("ts.barrier_ns", me as u32, from.elapsed().as_nanos() as u64);
                        } else {
                            barrier.wait();
                        }
                    }
                    // Closing phase: events landing exactly on t_end (the
                    // half-open windows above exclude the right edge).
                    while let Ok(mail) = rx.try_recv() {
                        queue.insert(ScheduledEvent::with_parent(
                            mail.at,
                            mail.tie,
                            mail.parent,
                            mail.msg,
                        ));
                    }
                    while let Some(t) = queue.peek_time() {
                        if t > t_end {
                            break;
                        }
                        let Some(ev) = queue.pop_min() else {
                            debug_assert!(false, "peeked event vanished");
                            break;
                        };
                        #[cfg(debug_assertions)]
                        {
                            assert!(
                                ev.time >= last_t,
                                "causality: LP {me} delivered t={} after t={last_t}",
                                ev.time
                            );
                            last_t = ev.time;
                        }
                        events += 1;
                        let kind = if T::ENABLED {
                            lp.trace_kind(&ev.event)
                        } else {
                            SpanKind::DEFAULT
                        };
                        let token = tracer.begin(ev.seq);
                        let mut ctx = LpCtx {
                            now: ev.time,
                            me,
                            lookahead: la,
                            cause: ev.seq,
                            staged: &mut staged,
                        };
                        lp.handle(ev.time, ev.event, &mut ctx);
                        tracer.record(ev.seq, ev.parent, kind, me as u32, ev.time.seconds(), token);
                        flush(me, &mut staged, &mut seq, &mut queue, &senders);
                        if Y::ENABLED && tel.tick(ev.time.seconds()) {
                            tel.sample(
                                "ts.queue_len",
                                me as u32,
                                ev.time.seconds(),
                                queue.len() as f64,
                            );
                        }
                    }
                    (lp, events, tracer, tel)
                }),
            ));
        }
        for (me, h) in handles {
            // lsds-lint: allow(hot-path-panic) reason="thread teardown: propagate an LP thread panic to the caller instead of swallowing it"
            out[me] = Some(h.join().expect("timestep LP panicked"));
        }
    });

    let mut lps_out = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(n);
    let mut tracers = Vec::with_capacity(n);
    let mut tels = Vec::with_capacity(n);
    for o in out {
        // lsds-lint: allow(hot-path-panic) reason="post-run teardown: every LP index was joined above"
        let (lp, ev, tr, tel) = o.expect("missing LP result");
        lps_out.push(lp);
        events.push(ev);
        tracers.push(tr);
        tels.push(tel);
    }
    (
        TimestepReport {
            lps: lps_out,
            events,
            windows,
        },
        tracers,
        tels,
    )
}

fn flush<M>(
    me: LpId,
    staged: &mut Vec<Outgoing<M>>,
    seq: &mut u64,
    queue: &mut PooledQueue<M, BinaryHeapQueue<u32>>,
    senders: &[&Sender<Mail<M>>],
) {
    for outgoing in staged.drain(..) {
        let tie = tie_key(me, *seq);
        *seq += 1;
        match outgoing {
            Outgoing::Local { at, parent, msg } => {
                queue.insert(ScheduledEvent::with_parent(at, tie, parent, msg));
            }
            Outgoing::Remote {
                dst,
                at,
                parent,
                msg,
            } => {
                // A peer that already returned (closing phase, after the
                // last barrier) only drops mail due past t_end — the
                // window invariant (delay ≥ δ) makes such mail
                // unprocessable anyway, so ignore the disconnect.
                senders[dst]
                    .send(Mail {
                        at,
                        tie,
                        parent,
                        msg,
                    })
                    .ok();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmb::InitialEvents;
    use crate::lp::LogicalProcess;

    struct Hopper {
        n: usize,
        seen: u64,
        delay: f64,
    }
    impl LogicalProcess for Hopper {
        type Msg = u64;
        fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
            self.seen += 1;
            ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
        }
        fn lookahead(&self) -> f64 {
            self.delay
        }
    }
    impl InitialEvents for Hopper {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    fn hoppers(n: usize, delay: f64) -> Vec<Hopper> {
        (0..n).map(|_| Hopper { n, seen: 0, delay }).collect()
    }

    #[test]
    fn matches_cmb_result() {
        let ts = run_timestep(hoppers(4, 1.0), 1.0, SimTime::new(100.0));
        // same analytic count as the CMB ring test: events at t=0..=100
        assert_eq!(ts.total_events(), 101);
        assert_eq!(ts.lps[0].seen, 26);
    }

    #[test]
    fn deterministic() {
        let a = run_timestep(hoppers(5, 0.5), 0.5, SimTime::new(30.0));
        let b = run_timestep(hoppers(5, 0.5), 0.5, SimTime::new(30.0));
        let sa: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let sb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn window_count() {
        let ts = run_timestep(hoppers(2, 1.0), 0.25, SimTime::new(10.0));
        assert_eq!(ts.windows, 40);
    }

    #[test]
    #[should_panic]
    fn window_wider_than_lookahead_rejected() {
        run_timestep(hoppers(2, 0.5), 1.0, SimTime::new(10.0));
    }

    #[test]
    fn telemetry_run_matches_plain_and_counts_barriers() {
        let plain = run_timestep(hoppers(4, 1.0), 1.0, SimTime::new(100.0));
        let (telr, tel) = run_timestep_telemetry(
            hoppers(4, 1.0),
            1.0,
            SimTime::new(100.0),
            TelemetryConfig::new().every_events(4),
        );
        assert_eq!(plain.total_events(), telr.total_events());
        let sa: Vec<u64> = plain.lps.iter().map(|l| l.seen).collect();
        let sb: Vec<u64> = telr.lps.iter().map(|l| l.seen).collect();
        assert_eq!(sa, sb);
        // every LP waits at every window barrier
        assert_eq!(tel.counter("ts.barrier_waits"), 4 * telr.windows);
        assert_eq!(tel.counter_on("ts.barrier_waits", 2), telr.windows);
        assert_eq!(tel.events(), telr.total_events());
    }

    #[test]
    fn traced_run_matches_untraced_and_links_parents() {
        let plain = run_timestep(hoppers(4, 1.0), 1.0, SimTime::new(100.0));
        let (traced, trace) = run_timestep_traced(
            hoppers(4, 1.0),
            1.0,
            SimTime::new(100.0),
            TraceConfig::default(),
        );
        assert_eq!(plain.total_events(), traced.total_events());
        let sa: Vec<u64> = plain.lps.iter().map(|l| l.seen).collect();
        let sb: Vec<u64> = traced.lps.iter().map(|l| l.seen).collect();
        assert_eq!(sa, sb);
        assert_eq!(trace.len() as u64, traced.total_events());
        assert!(trace.spans.windows(2).all(|w| w[0].vt <= w[1].vt));
        // the hop chain is one causal path through all four LP tracks
        let path = trace.critical_path();
        assert!(path.complete);
        assert_eq!(path.steps.len() as u64, traced.total_events());
    }
}
