//! Sequential reference execution of a
//! [`LogicalProcess`](crate::lp::LogicalProcess) topology.
//!
//! Runs the *same* LP code the parallel engines run, in a single thread,
//! with one global event list ordered by `(time, tie key)`. Because the
//! tie key is `(source LP, per-source sequence)` and every engine assigns
//! sequences in each LP's local delivery order, the per-LP subsequence of
//! this global order is exactly the order CMB, the time-stepped engine,
//! and Time Warp deliver — so this executor is the bit-identity oracle the
//! engine-equivalence and rollback property tests compare against.

use crate::lp::{tie_key, validate_edges, LpCtx, LpId, Outgoing};
use lsds_core::{BinaryHeapQueue, EventQueue, PooledQueue, ScheduledEvent, SimTime, NO_PARENT};
use lsds_obs::{EngineTelemetry, NoopTelemetry, Telemetry, TelemetryConfig, TelemetryReport};

/// Result of a sequential reference run.
#[derive(Debug)]
pub struct SequentialReport<L> {
    /// The logical processes, in id order, with their final state.
    pub lps: Vec<L>,
    /// Events delivered per LP, in id order.
    pub events: Vec<u64>,
}

impl<L> SequentialReport<L> {
    /// Total events delivered across all LPs.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }
}

/// Runs `lps` to `t_end` (inclusive) in one thread, delivering all events
/// in global `(time, source LP, sequence)` order.
///
/// `edges` lists the directed channels `(src, dst)` exactly as for
/// [`crate::run_cmb`]; sends are validated against the same declared
/// topology. Lookahead is *not* enforced here — the reference delivers
/// whatever timestamps the LPs produce, which is what lets it double as
/// the oracle for Time Warp runs whose sends duck below the declared
/// lookahead (see [`crate::timewarp`]).
pub fn run_sequential<L>(lps: Vec<L>, edges: &[(LpId, LpId)], t_end: SimTime) -> SequentialReport<L>
where
    L: crate::cmb::InitialEvents,
{
    run_sequential_with(lps, edges, t_end, NoopTelemetry).0
}

/// Like [`run_sequential`], with a [`Telemetry`] sink sampling the
/// global event-list length (`seq.queue_len`) on the configured cadence.
/// The single-threaded reference has no scheduler to introspect, but the
/// telemetry variant gives the oracle run the same live-progress and
/// series surface as the parallel engines; results are bit-identical to
/// the plain run.
pub fn run_sequential_telemetry<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    tcfg: TelemetryConfig,
) -> (SequentialReport<L>, TelemetryReport)
where
    L: crate::cmb::InitialEvents,
{
    let (report, tel) = run_sequential_with(lps, edges, t_end, EngineTelemetry::new(tcfg));
    (report, TelemetryReport::merge(vec![tel]))
}

fn run_sequential_with<L, Y>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    mut tel: Y,
) -> (SequentialReport<L>, Y)
where
    L: crate::cmb::InitialEvents,
    Y: Telemetry,
{
    let n = lps.len();
    validate_edges(n, edges);
    let mut lps = lps;
    let mut seqs = vec![0u64; n];
    let mut events = vec![0u64; n];
    // One global list; the payload carries its destination LP. The `seq`
    // field holds the cross-LP tie key, as in the parallel engines.
    let mut queue: PooledQueue<(LpId, L::Msg), BinaryHeapQueue<u32>> =
        PooledQueue::new(BinaryHeapQueue::new());
    let mut staged: Vec<Outgoing<L::Msg>> = Vec::new();

    let flush = |me: LpId,
                 staged: &mut Vec<Outgoing<L::Msg>>,
                 seqs: &mut Vec<u64>,
                 queue: &mut PooledQueue<(LpId, L::Msg), BinaryHeapQueue<u32>>| {
        for out in staged.drain(..) {
            let tie = tie_key(me, seqs[me]);
            seqs[me] += 1;
            match out {
                Outgoing::Local { at, parent, msg } => {
                    queue.insert(ScheduledEvent::with_parent(at, tie, parent, (me, msg)));
                }
                Outgoing::Remote {
                    dst,
                    at,
                    parent,
                    msg,
                } => {
                    queue.insert(ScheduledEvent::with_parent(at, tie, parent, (dst, msg)));
                }
            }
        }
    };

    for (me, lp) in lps.iter_mut().enumerate() {
        let mut ctx = LpCtx {
            now: SimTime::ZERO,
            me,
            lookahead: 0.0,
            cause: NO_PARENT,
            staged: &mut staged,
        };
        lp.initial_events(&mut ctx);
        flush(me, &mut staged, &mut seqs, &mut queue);
    }

    while let Some(t) = queue.peek_time() {
        if t > t_end {
            break;
        }
        let Some(ev) = queue.pop_min() else {
            debug_assert!(false, "peeked event vanished");
            break;
        };
        let (dst, msg) = ev.event;
        events[dst] += 1;
        if Y::ENABLED && tel.tick(ev.time.seconds()) {
            tel.sample("seq.queue_len", 0, ev.time.seconds(), queue.len() as f64);
        }
        let mut ctx = LpCtx {
            now: ev.time,
            me: dst,
            lookahead: 0.0,
            cause: ev.seq,
            staged: &mut staged,
        };
        lps[dst].handle(ev.time, msg, &mut ctx);
        flush(dst, &mut staged, &mut seqs, &mut queue);
    }

    (SequentialReport { lps, events }, tel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmb::InitialEvents;
    use crate::lp::LogicalProcess;

    struct Hop {
        n: usize,
        seen: u64,
        delay: f64,
    }
    impl LogicalProcess for Hop {
        type Msg = u64;
        fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
            self.seen += 1;
            ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
        }
        fn lookahead(&self) -> f64 {
            self.delay
        }
    }
    impl InitialEvents for Hop {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    #[test]
    fn matches_analytic_ring_count() {
        let lps: Vec<Hop> = (0..4)
            .map(|_| Hop {
                n: 4,
                seen: 0,
                delay: 1.0,
            })
            .collect();
        let edges: Vec<(usize, usize)> = (0..4).map(|i| (i, (i + 1) % 4)).collect();
        let report = run_sequential(lps, &edges, SimTime::new(100.0));
        // token at t = 0..=100 → 101 events, LP0 sees 26 of them
        assert_eq!(report.total_events(), 101);
        assert_eq!(report.lps[0].seen, 26);
        assert_eq!(report.events[0], 26);
    }

    #[test]
    fn telemetry_run_matches_plain_and_samples_queue() {
        let mk = || -> (Vec<Hop>, Vec<(usize, usize)>) {
            (
                (0..4)
                    .map(|_| Hop {
                        n: 4,
                        seen: 0,
                        delay: 1.0,
                    })
                    .collect(),
                (0..4).map(|i| (i, (i + 1) % 4)).collect(),
            )
        };
        let (lps, edges) = mk();
        let plain = run_sequential(lps, &edges, SimTime::new(100.0));
        let (lps, edges) = mk();
        let (report, tel) = run_sequential_telemetry(
            lps,
            &edges,
            SimTime::new(100.0),
            lsds_obs::TelemetryConfig::new().every_events(16),
        );
        assert_eq!(report.total_events(), plain.total_events());
        for (a, b) in report.lps.iter().zip(plain.lps.iter()) {
            assert_eq!(a.seen, b.seen);
        }
        assert_eq!(tel.events(), report.total_events());
        let series = tel.series_on("seq.queue_len", 0).expect("queue series");
        assert!(!series.is_empty());
        assert!(series.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
