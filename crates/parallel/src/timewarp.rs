//! Time Warp optimistic parallel execution — rollback, anti-messages, GVT.
//!
//! Where CMB ([`crate::cmb`]) blocks until null messages *prove* an event is
//! safe, Time Warp (Jefferson 1985) executes speculatively and repairs:
//! each [`LogicalProcess`] runs ahead on its local event list, saving state
//! snapshots as it goes. A **straggler** (a message timestamped at or below
//! the LP's clock) triggers a **rollback**: the LP restores the latest
//! snapshot before the straggler, re-enqueues the undone events, and sends
//! an **anti-message** for every optimistic inter-LP send those events
//! made; an anti-message annihilates its positive twin in the receiver's
//! input queue (rolling the receiver back first if it already processed
//! it). A continuously circulating token computes **GVT** (global virtual
//! time — a lower bound on any future rollback) Mattern-style from LP
//! clocks plus in-transit message counts; storage at or below GVT is
//! **fossil-collected** and the spans of committed events are emitted to
//! the tracer exactly once, so traced optimistic runs stay causally
//! consistent with the final (post-rollback) execution.
//!
//! Determinism: events carry the same `(time, source LP, sequence)` tie
//! keys as the conservative engines, rollback restores the per-LP sequence
//! counter, and re-execution replays deliveries in ascending key order —
//! so a Time Warp run commits exactly the event set of [the sequential
//! reference](crate::run_sequential) and ends bit-identical to it (and to
//! CMB where CMB's lookahead contract holds). The one extra requirement on
//! models: inter-LP sends must have *strictly positive* delay (any
//! positive delay, even far below the declared lookahead — that is the
//! point of optimism), because a zero-delay cross-LP send would make the
//! canonical order of equal-time events depend on message arrival timing.

use crate::cmb::InitialEvents;
use crate::lp::{pack, tie_key, validate_edges, LogicalProcess, LpCtx, LpId, Outgoing};
use lsds_core::{EventPool, SimTime, NO_PARENT};
use lsds_obs::{
    EngineTelemetry, NoopTelemetry, NoopTracer, Registry, RingTracer, SpanKind, SpanTrace,
    Telemetry, TelemetryConfig, TelemetryReport, TraceConfig, Tracer,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};

/// State snapshotting hook for optimistic execution.
///
/// Time Warp cannot un-run a handler, so the engine saves a copy of the
/// LP's state (every [`TwConfig::checkpoint_every`] events) and restores
/// the most recent snapshot before the straggler on rollback. `Saved` is
/// typically the LP struct's own fields minus anything the engine already
/// reconstructs (the pending event list, the sequence counter).
pub trait SaveState: LogicalProcess {
    /// Snapshot type; stored in a slab between checkpoint and fossil
    /// collection.
    type Saved: Send;

    /// Captures the LP's current state.
    fn save(&self) -> Self::Saved;

    /// Restores a state captured by [`SaveState::save`].
    fn restore(&mut self, saved: Self::Saved);
}

/// Tuning knobs for the optimistic engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwConfig {
    /// Save a state snapshot every this many processed events (≥ 1).
    /// `1` (the default) checkpoints before every event, making every
    /// rollback exact; larger values trade copy cost for re-execution
    /// (coast-forward) cost.
    pub checkpoint_every: u32,
    /// Bounded optimism (Sokol's Moving Time Window): an LP only
    /// executes events with `at ≤ GVT + window`, in simulated seconds.
    /// `INFINITY` (the default) is pure Time Warp. A finite window caps
    /// how much speculative work a straggler can destroy — essential on
    /// oversubscribed hosts, where one LP can otherwise run to the
    /// horizon before its peers are even scheduled. The window changes
    /// scheduling only, never results.
    pub window: f64,
}

impl Default for TwConfig {
    fn default() -> Self {
        TwConfig {
            checkpoint_every: 1,
            window: f64::INFINITY,
        }
    }
}

/// Per-LP execution counters, mirroring [`crate::CmbStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TwStats {
    /// Events committed (irrevocable, at or below final GVT). Across the
    /// run this equals the sequential engine's delivered-event count.
    pub committed: u64,
    /// Events executed, including speculative executions later undone.
    pub processed: u64,
    /// Executions undone by rollbacks (`processed - rolled_back` =
    /// `committed` at termination).
    pub rolled_back: u64,
    /// Rollback episodes (each may undo several executions).
    pub rollbacks: u64,
    /// Anti-messages sent while rolling back.
    pub antis_sent: u64,
    /// Positive messages annihilated in this LP's input queue by antis.
    pub annihilated: u64,
    /// Real inter-LP messages sent (including later-cancelled ones).
    pub remote_sent: u64,
    /// State snapshots taken.
    pub states_saved: u64,
    /// GVT token visits at this LP.
    pub token_visits: u64,
    /// GVT evaluation rounds completed (non-zero only at LP 0).
    pub gvt_rounds: u64,
    /// Blocking waits for input.
    pub blocks: u64,
}

/// Result of an optimistic parallel run.
#[derive(Debug)]
pub struct TwReport<L> {
    /// The logical processes, in id order, with their final state.
    pub lps: Vec<L>,
    /// Per-LP counters, in id order.
    pub stats: Vec<TwStats>,
}

impl<L> TwReport<L> {
    /// Total committed events — comparable to `CmbReport::total_events`.
    pub fn total_events(&self) -> u64 {
        self.stats.iter().map(|s| s.committed).sum()
    }

    /// Total speculative executions (committed + rolled back).
    pub fn total_processed(&self) -> u64 {
        self.stats.iter().map(|s| s.processed).sum()
    }

    /// Total executions undone by rollbacks.
    pub fn total_rolled_back(&self) -> u64 {
        self.stats.iter().map(|s| s.rolled_back).sum()
    }

    /// Total rollback episodes.
    pub fn total_rollbacks(&self) -> u64 {
        self.stats.iter().map(|s| s.rollbacks).sum()
    }

    /// Total anti-messages sent.
    pub fn total_antis(&self) -> u64 {
        self.stats.iter().map(|s| s.antis_sent).sum()
    }

    /// Fraction of executed events that committed (1.0 = no wasted work).
    pub fn efficiency(&self) -> f64 {
        let p = self.total_processed();
        if p == 0 {
            1.0
        } else {
            self.total_events() as f64 / p as f64
        }
    }

    /// Exports the run's synchronization counters into a metrics registry:
    /// aggregate `tw.*` counters plus per-LP committed counts.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("tw.committed", self.total_events());
        reg.inc("tw.processed", self.total_processed());
        reg.inc("tw.rolled_back", self.total_rolled_back());
        reg.inc("tw.rollbacks", self.total_rollbacks());
        reg.inc("tw.antis_sent", self.total_antis());
        reg.inc(
            "tw.annihilated",
            self.stats.iter().map(|s| s.annihilated).sum(),
        );
        reg.inc(
            "tw.remote_sent",
            self.stats.iter().map(|s| s.remote_sent).sum(),
        );
        reg.inc(
            "tw.states_saved",
            self.stats.iter().map(|s| s.states_saved).sum(),
        );
        reg.inc(
            "tw.gvt_rounds",
            self.stats.iter().map(|s| s.gvt_rounds).sum(),
        );
        reg.inc("tw.blocks", self.stats.iter().map(|s| s.blocks).sum());
        reg.inc(
            "tw.token_visits",
            self.stats.iter().map(|s| s.token_visits).sum(),
        );
        reg.set_gauge("tw.lps", self.lps.len() as f64);
        reg.set_gauge("tw.efficiency", self.efficiency());
        for (i, st) in self.stats.iter().enumerate() {
            reg.inc(&format!("tw.lp.{i}.committed"), st.committed);
            reg.inc(&format!("tw.lp.{i}.rollbacks"), st.rollbacks);
        }
    }
}

/// The circulating GVT token (simplified Mattern / global message count).
///
/// Each visit folds the LP's local floor (`min`) and its sent−received
/// message delta since its previous visit (`outstanding`). When the token
/// completes a round at LP 0 with cumulative `outstanding == 0`, no
/// message was in transit across the round's cut, so `min` is a valid GVT.
#[derive(Debug, Clone, Copy)]
struct Token {
    round: u64,
    min: f64,
    outstanding: i64,
    gvt: f64,
}

enum TwPacket<M> {
    /// A positive message due at `at`, with its deterministic tie-break
    /// key and the tie key of the causing event (for the trace DAG).
    Event {
        at: SimTime,
        tie: u64,
        parent: u64,
        msg: M,
    },
    /// Cancels the positive message with the same `(at, tie)`. Per-edge
    /// FIFO (one mpsc sender per directed pair) guarantees it arrives
    /// after its positive and before any re-sent message reusing the tie.
    Anti { at: SimTime, tie: u64 },
    /// The GVT token, forwarded around the ring `0 → 1 → … → 0`.
    Token(Token),
    /// GVT passed the horizon: stop. Originated by LP 0, forwarded once
    /// around the ring.
    Stop,
}

/// Sentinel: processed record carries no state snapshot.
const NO_STATE: u32 = u32::MAX;

/// How many events an LP speculates through between input-queue drains
/// and token forwards.
const BATCH: usize = 32;

/// An unprocessed event: payload parked in the pool, causal parent kept
/// for the trace DAG.
struct PendingEv {
    slot: u32,
    parent: u64,
}

/// One speculative execution, kept until fossil collection so it can be
/// undone. Payload and snapshot stay parked in their slabs; rollback is
/// slot reuse, not allocation.
struct Done {
    at: SimTime,
    tie: u64,
    parent: u64,
    /// Payload slot (still parked — rollback re-delivers it).
    slot: u32,
    /// Snapshot of LP state *before* this event ran, or [`NO_STATE`].
    state_slot: u32,
    /// Sequence counter before this event ran; restored on rollback so
    /// re-execution regenerates identical tie keys.
    seq_before: u64,
    /// Remote sends made by this event (suffix of `sends`).
    n_sends: u32,
    /// Local events scheduled by this event (suffix of `locals`).
    n_locals: u32,
    kind: SpanKind,
    wall_ns: u64,
}

/// A remote send on record, so rollback can cancel it.
struct SendRec {
    dst: LpId,
    at: SimTime,
    tie: u64,
}

/// A local schedule on record, so rollback can unschedule it (it will be
/// regenerated, with the same tie, when the sender re-executes).
struct LocalRec {
    at: SimTime,
    tie: u64,
}

struct Engine<L: SaveState, T: Tracer, Y: Telemetry> {
    me: LpId,
    n: usize,
    lp: L,
    tracer: T,
    tel: Y,
    /// Unprocessed events in `(time, tie)` order.
    pending: BTreeMap<u128, PendingEv>,
    /// Parked payloads of pending *and* processed-but-uncommitted events.
    pool: EventPool<L::Msg>,
    /// Parked state snapshots.
    states: EventPool<L::Saved>,
    /// Speculative executions in execution order (time-monotone).
    processed: VecDeque<Done>,
    sends: VecDeque<SendRec>,
    locals: VecDeque<LocalRec>,
    clock: SimTime,
    seq: u64,
    /// Events executed since the last snapshot.
    gap: u32,
    gvt: f64,
    token: Option<Token>,
    stop: bool,
    /// Messages sent minus received since the token's last visit.
    sent_delta: i64,
    recv_delta: i64,
    /// Min timestamp sent (positive or anti) since the token's last visit.
    min_sent: f64,
    txs: Vec<Sender<TwPacket<L::Msg>>>,
    rx: Receiver<TwPacket<L::Msg>>,
    staged: Vec<Outgoing<L::Msg>>,
    stats: TwStats,
    cfg: TwConfig,
    t_end: SimTime,
}

impl<L, T, Y> Engine<L, T, Y>
where
    L: SaveState,
    L::Msg: Clone,
    T: Tracer,
    Y: Telemetry,
{
    fn apply(&mut self, packet: TwPacket<L::Msg>) {
        match packet {
            TwPacket::Event {
                at,
                tie,
                parent,
                msg,
            } => {
                self.recv_delta += 1;
                self.insert_event(at, tie, parent, msg);
            }
            TwPacket::Anti { at, tie } => {
                self.recv_delta += 1;
                self.annihilate(at, tie);
            }
            TwPacket::Token(tok) => {
                debug_assert!(self.token.is_none(), "two GVT tokens in flight");
                self.token = Some(tok);
            }
            TwPacket::Stop => {
                let next = (self.me + 1) % self.n;
                if next != 0 {
                    self.txs[next].send(TwPacket::Stop).ok();
                }
                self.stop = true;
            }
        }
    }

    fn insert_event(&mut self, at: SimTime, tie: u64, parent: u64, msg: L::Msg) {
        // Straggler: we already executed something at or past `at`. Equal
        // times roll back too — the canonical order within an equal-time
        // group is replayed from the group's start, which keeps ties
        // deterministic without comparing keys across creation chains.
        if self.processed.back().is_some_and(|r| at <= r.at) {
            self.rollback_to(at);
        }
        let slot = self.pool.park(msg);
        let prev = self
            .pending
            .insert(pack(at, tie), PendingEv { slot, parent });
        debug_assert!(prev.is_none(), "duplicate event key in pending queue");
    }

    fn annihilate(&mut self, at: SimTime, tie: u64) {
        let key = pack(at, tie);
        if let Some(pe) = self.pending.remove(&key) {
            self.pool.claim(pe.slot);
            self.stats.annihilated += 1;
            if Y::ENABLED {
                self.tel.inc("tw.annihilated", self.me as u32, 1);
            }
            return;
        }
        // The positive twin was already executed: roll back to its time
        // (which reinstates it as pending), then annihilate it.
        if self.processed.back().is_some_and(|r| at <= r.at) {
            self.rollback_to(at);
            if let Some(pe) = self.pending.remove(&key) {
                self.pool.claim(pe.slot);
                self.stats.annihilated += 1;
                if Y::ENABLED {
                    self.tel.inc("tw.annihilated", self.me as u32, 1);
                }
                return;
            }
        }
        // Per-edge FIFO makes an anti without its positive unreachable.
        debug_assert!(false, "anti-message with no matching positive");
    }

    /// Undoes every speculative execution with time ≥ `t`, restoring the
    /// nearest snapshot at or before the cut and cancelling optimistic
    /// sends. Re-execution regenerates identical tie keys because the
    /// sequence counter is restored along with the state.
    fn rollback_to(&mut self, t: SimTime) {
        let len = self.processed.len();
        let mut cut = self.processed.partition_point(|r| r.at < t);
        debug_assert!(cut < len, "rollback_to called with nothing to undo");
        // Coast back to a record that carries a snapshot (index 0 always
        // does — fossil collection never removes the last floor state).
        while self
            .processed
            .get(cut)
            .is_some_and(|r| r.state_slot == NO_STATE)
        {
            debug_assert!(cut > 0, "no snapshot at or before rollback cut");
            cut -= 1;
        }
        self.stats.rollbacks += 1;
        if Y::ENABLED {
            self.tel.inc("tw.rollbacks", self.me as u32, 1);
            self.tel
                .inc("tw.rolled_back", self.me as u32, (len - cut) as u64);
        }
        for i in (cut..len).rev() {
            let Some(rec) = self.processed.pop_back() else {
                debug_assert!(false, "processed record vanished mid-rollback");
                break;
            };
            // Unschedule its local children: either still pending, or
            // re-inserted by a later (already undone) record. They will
            // be regenerated — same ties — when `rec` re-executes.
            for _ in 0..rec.n_locals {
                let Some(lr) = self.locals.pop_back() else {
                    debug_assert!(false, "local-schedule record missing");
                    break;
                };
                if let Some(pe) = self.pending.remove(&pack(lr.at, lr.tie)) {
                    self.pool.claim(pe.slot);
                } else {
                    debug_assert!(false, "rolled-back local child not pending");
                }
            }
            // Cancel its optimistic remote sends.
            for _ in 0..rec.n_sends {
                let Some(sr) = self.sends.pop_back() else {
                    debug_assert!(false, "send record missing");
                    break;
                };
                self.txs[sr.dst]
                    .send(TwPacket::Anti {
                        at: sr.at,
                        tie: sr.tie,
                    })
                    .ok();
                self.stats.antis_sent += 1;
                if Y::ENABLED {
                    self.tel.inc("tw.antis", self.me as u32, 1);
                }
                self.sent_delta += 1;
                self.min_sent = self.min_sent.min(sr.at.seconds());
            }
            // The event itself goes back to pending for re-execution.
            self.pending.insert(
                pack(rec.at, rec.tie),
                PendingEv {
                    slot: rec.slot,
                    parent: rec.parent,
                },
            );
            self.stats.rolled_back += 1;
            if i == cut {
                let Some(state) = self.states.claim(rec.state_slot) else {
                    debug_assert!(false, "snapshot slot vacated");
                    return;
                };
                self.lp.restore(state);
                self.seq = rec.seq_before;
            } else if rec.state_slot != NO_STATE {
                self.states.claim(rec.state_slot);
            }
        }
        self.clock = self.processed.back().map_or(SimTime::ZERO, |r| r.at);
        self.gap = self.checkpoint_gap();
    }

    /// Events executed since the most recent retained snapshot.
    fn checkpoint_gap(&self) -> u32 {
        let len = self.processed.len();
        for (back, rec) in self.processed.iter().rev().enumerate() {
            if rec.state_slot != NO_STATE {
                return (len - (len - 1 - back)) as u32;
            }
        }
        debug_assert!(len == 0, "non-empty processed list without a snapshot");
        0
    }

    /// Executes the earliest pending event within the horizon, if any.
    fn process_one(&mut self) -> bool {
        let Some((&key, pe)) = self.pending.first_key_value() else {
            return false;
        };
        let at = SimTime::new(f64::from_bits((key >> 64) as u64));
        if at > self.t_end {
            return false;
        }
        // Bounded optimism: outside the window we wait for GVT to catch
        // up. The globally earliest event is always within any window
        // (GVT lower-bounds it), so the token keeps committing progress.
        if at.seconds() > self.gvt + self.cfg.window {
            return false;
        }
        debug_assert!(at >= self.clock, "optimistic delivery went backwards");
        let tie = key as u64;
        let slot = pe.slot;
        let parent = pe.parent;
        let Some(msg) = self.pool.get(slot).cloned() else {
            debug_assert!(false, "pending payload slot vacated");
            return false;
        };
        self.pending.pop_first();
        let state_slot = if self.processed.is_empty() || self.gap >= self.cfg.checkpoint_every {
            self.gap = 0;
            self.stats.states_saved += 1;
            self.states.park(self.lp.save())
        } else {
            NO_STATE
        };
        self.gap += 1;
        let seq_before = self.seq;
        let kind = if T::ENABLED {
            self.lp.trace_kind(&msg)
        } else {
            SpanKind::DEFAULT
        };
        let wall_start = if T::ENABLED {
            // lsds-lint: allow(wall-clock) reason="profiler measures host handler cost, buffered until commit; never feeds back into simulated time"
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut ctx = LpCtx {
            now: at,
            me: self.me,
            // Optimism tolerates sends far below the declared lookahead —
            // but not zero-delay cross-LP sends, which would make the
            // canonical order of equal-time events depend on arrival
            // timing. The smallest positive double excludes exactly 0.
            lookahead: f64::MIN_POSITIVE,
            cause: tie,
            staged: &mut self.staged,
        };
        self.lp.handle(at, msg, &mut ctx);
        let wall_ns = wall_start.map_or(0, |s| {
            u64::try_from(s.elapsed().as_nanos()).unwrap_or(u64::MAX)
        });
        self.clock = at;
        self.stats.processed += 1;
        // Tick on GVT, not the rollback-prone local clock, so the cadence
        // and series timestamps stay monotone; the lag sample captures how
        // far this LP is speculating ahead of the committed frontier.
        if Y::ENABLED && self.tel.tick(self.gvt.max(0.0)) {
            let lane = self.me as u32;
            let gvt = self.gvt.max(0.0);
            self.tel
                .sample("tw.gvt_lag", lane, gvt, self.clock.seconds() - self.gvt);
            self.tel
                .sample("tw.pending_len", lane, gvt, self.pending.len() as f64);
            self.tel
                .sample("tw.processed_len", lane, gvt, self.processed.len() as f64);
        }
        let (n_sends, n_locals) = self.flush_staged();
        self.processed.push_back(Done {
            at,
            tie,
            parent,
            slot,
            state_slot,
            seq_before,
            n_sends,
            n_locals,
            kind,
            wall_ns,
        });
        true
    }

    fn flush_staged(&mut self) -> (u32, u32) {
        let mut n_sends = 0u32;
        let mut n_locals = 0u32;
        for out in self.staged.drain(..) {
            let tie = tie_key(self.me, self.seq);
            self.seq += 1;
            match out {
                Outgoing::Local { at, parent, msg } => {
                    let slot = self.pool.park(msg);
                    let prev = self
                        .pending
                        .insert(pack(at, tie), PendingEv { slot, parent });
                    debug_assert!(prev.is_none(), "duplicate local event key");
                    self.locals.push_back(LocalRec { at, tie });
                    n_locals += 1;
                }
                Outgoing::Remote {
                    dst,
                    at,
                    parent,
                    msg,
                } => {
                    self.txs[dst]
                        .send(TwPacket::Event {
                            at,
                            tie,
                            parent,
                            msg,
                        })
                        .ok();
                    self.sends.push_back(SendRec { dst, at, tie });
                    self.stats.remote_sent += 1;
                    self.sent_delta += 1;
                    self.min_sent = self.min_sent.min(at.seconds());
                    n_sends += 1;
                }
            }
        }
        (n_sends, n_locals)
    }

    /// This LP's contribution to the GVT floor: its earliest unprocessed
    /// event within the horizon (events past `t_end` never execute, so
    /// they cannot cause rollbacks).
    fn local_floor(&self) -> f64 {
        match self.pending.first_key_value() {
            Some((&key, _)) => {
                let t = f64::from_bits((key >> 64) as u64);
                if t > self.t_end.seconds() {
                    f64::INFINITY
                } else {
                    t
                }
            }
            None => f64::INFINITY,
        }
    }

    fn token_step(&mut self, mut tok: Token) {
        self.stats.token_visits += 1;
        if self.me == 0 {
            // Round 0 is the seed visit — nothing has been folded yet.
            if tok.round > 0 {
                self.stats.gvt_rounds += 1;
                if tok.outstanding == 0 {
                    // No message was in transit across this round's cut,
                    // so the folded min lower-bounds any future rollback.
                    if tok.min > self.gvt {
                        self.gvt = tok.min;
                        self.fossil_collect();
                    }
                    tok.gvt = self.gvt;
                    if self.gvt > self.t_end.seconds() {
                        let next = (self.me + 1) % self.n;
                        if next != 0 {
                            self.txs[next].send(TwPacket::Stop).ok();
                        }
                        self.stop = true;
                        return;
                    }
                }
            }
            tok.min = f64::INFINITY;
            tok.round += 1;
            // Idle systems circulate the token at channel speed; give
            // working LPs the core before spinning another round.
            std::thread::yield_now();
        }
        if tok.gvt > self.gvt {
            self.gvt = tok.gvt;
            self.fossil_collect();
        }
        tok.min = tok.min.min(self.local_floor()).min(self.min_sent);
        tok.outstanding += self.sent_delta - self.recv_delta;
        self.sent_delta = 0;
        self.recv_delta = 0;
        self.min_sent = f64::INFINITY;
        self.txs[(self.me + 1) % self.n]
            .send(TwPacket::Token(tok))
            .ok();
    }

    /// Commits every execution strictly below GVT, keeping the latest
    /// snapshot at or before the first record that a GVT-time straggler
    /// could still force us to undo.
    fn fossil_collect(&mut self) {
        let horizon = self
            .processed
            .partition_point(|r| r.at.seconds() < self.gvt);
        let mut floor = horizon.min(self.processed.len().saturating_sub(1));
        while self
            .processed
            .get(floor)
            .is_some_and(|r| r.state_slot == NO_STATE)
        {
            debug_assert!(floor > 0, "no snapshot below fossil floor");
            floor -= 1;
        }
        if Y::ENABLED && floor > 0 {
            self.tel.inc("tw.fossil_batches", self.me as u32, 1);
            self.tel
                .inc("tw.fossil_events", self.me as u32, floor as u64);
        }
        for _ in 0..floor {
            self.commit_front();
        }
    }

    /// Commits the oldest speculative execution: frees its payload and
    /// snapshot slots, drops its send/schedule records, emits its span.
    fn commit_front(&mut self) {
        let Some(rec) = self.processed.pop_front() else {
            debug_assert!(false, "commit_front on empty processed list");
            return;
        };
        self.pool.claim(rec.slot);
        if rec.state_slot != NO_STATE {
            self.states.claim(rec.state_slot);
        }
        for _ in 0..rec.n_sends {
            self.sends.pop_front();
        }
        for _ in 0..rec.n_locals {
            self.locals.pop_front();
        }
        self.tracer.commit_span(
            rec.tie,
            rec.parent,
            rec.kind,
            self.me as u32,
            rec.at.seconds(),
            rec.wall_ns,
        );
        self.stats.committed += 1;
    }

    fn run(mut self) -> (L, TwStats, T, Y) {
        loop {
            // Stragglers before speculation: drain everything available.
            while let Ok(packet) = self.rx.try_recv() {
                self.apply(packet);
            }
            if self.stop {
                break;
            }
            if let Some(tok) = self.token.take() {
                self.token_step(tok);
                if self.stop {
                    break;
                }
            }
            let mut did = 0;
            while did < BATCH && self.process_one() {
                did += 1;
            }
            if did == 0 && self.token.is_none() {
                // Nothing executable and no token to forward: sleep until
                // a message (or the token, or Stop) wakes us.
                self.stats.blocks += 1;
                match self.rx.recv() {
                    Ok(packet) => self.apply(packet),
                    Err(_) => break,
                }
            }
        }
        // GVT passed the horizon: everything still on the books is
        // irrevocable. Commit in execution order.
        while !self.processed.is_empty() {
            self.commit_front();
        }
        (self.lp, self.stats, self.tracer, self.tel)
    }
}

/// Runs logical processes to `t_end` under Time Warp optimistic
/// synchronization, with default [`TwConfig`].
///
/// `edges` lists the directed communication channels `(src, dst)` exactly
/// as for [`crate::run_cmb`]. Unlike CMB, lookahead is not required to be
/// positive and sends may use any *strictly positive* delay, however far
/// below the declared lookahead — stragglers are repaired by rollback
/// instead of prevented by blocking. `Msg: Clone` because a rolled-back
/// event's payload is re-delivered on re-execution.
pub fn run_timewarp<L>(lps: Vec<L>, edges: &[(LpId, LpId)], t_end: SimTime) -> TwReport<L>
where
    L: SaveState + InitialEvents,
    L::Msg: Clone,
{
    run_timewarp_cfg(lps, edges, t_end, TwConfig::default())
}

/// [`run_timewarp`] with explicit engine tuning.
pub fn run_timewarp_cfg<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: TwConfig,
) -> TwReport<L>
where
    L: SaveState + InitialEvents,
    L::Msg: Clone,
{
    let (report, _tracers, _tels) =
        run_timewarp_with(lps, edges, t_end, cfg, |_| NoopTracer, |_| NoopTelemetry);
    report
}

/// Like [`run_timewarp_cfg`], but records scheduler telemetry — per-LP
/// rollbacks, anti-messages, annihilations, fossil batches, and sampled
/// GVT lag / queue depths — into one [`EngineTelemetry`] sink per LP,
/// merged after the run.
///
/// Telemetry only observes: the returned [`TwReport`] is bit-identical to
/// a plain run's. Samples tick on GVT (monotone), so attaching a
/// [`lsds_obs::ProgressReporter`] shows GVT versus the horizon.
pub fn run_timewarp_telemetry<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: TwConfig,
    tcfg: TelemetryConfig,
) -> (TwReport<L>, TelemetryReport)
where
    L: SaveState + InitialEvents,
    L::Msg: Clone,
{
    let (report, _tracers, tels) = run_timewarp_with(
        lps,
        edges,
        t_end,
        cfg,
        |_| NoopTracer,
        |lp| EngineTelemetry::for_track(tcfg.clone(), lp as u32),
    );
    (report, TelemetryReport::merge(tels))
}

/// Like [`run_timewarp`], but emits one causal span per *committed* event
/// (rolled-back executions never appear), merged deterministically by
/// `(virtual time, event id)`. The returned [`TwReport`] is bit-identical
/// to an untraced run's.
pub fn run_timewarp_traced<L>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: TraceConfig,
) -> (TwReport<L>, SpanTrace)
where
    L: SaveState + InitialEvents,
    L::Msg: Clone,
{
    let (report, tracers, _tels) = run_timewarp_with(
        lps,
        edges,
        t_end,
        TwConfig::default(),
        |_| RingTracer::new(cfg),
        |_| NoopTelemetry,
    );
    let trace = SpanTrace::merge(tracers.into_iter().map(RingTracer::finish).collect());
    (report, trace)
}

fn run_timewarp_with<L, T, Y>(
    lps: Vec<L>,
    edges: &[(LpId, LpId)],
    t_end: SimTime,
    cfg: TwConfig,
    mk_tracer: impl Fn(LpId) -> T,
    mk_tel: impl Fn(LpId) -> Y,
) -> (TwReport<L>, Vec<T>, Vec<Y>)
where
    L: SaveState + InitialEvents,
    L::Msg: Clone,
    T: Tracer + Send,
    Y: Telemetry + Send,
{
    let n = lps.len();
    assert!(n > 0, "no logical processes");
    assert!(cfg.checkpoint_every >= 1, "checkpoint_every must be ≥ 1");
    assert!(cfg.window >= 0.0, "window must be non-negative");
    validate_edges(n, edges);
    let mut txs: Vec<Sender<TwPacket<L::Msg>>> = Vec::with_capacity(n);
    let mut rxs: Vec<Option<Receiver<TwPacket<L::Msg>>>> = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = channel();
        txs.push(tx);
        rxs.push(Some(rx));
    }

    let mut results: Vec<Option<(L, TwStats, T, Y)>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (me, lp) in lps.into_iter().enumerate() {
            // lsds-lint: allow(hot-path-panic) reason="run setup before any event is processed; each index is taken exactly once by construction"
            let rx = rxs[me].take().expect("receiver taken twice");
            let txs = txs.clone();
            let tracer = mk_tracer(me);
            let tel = mk_tel(me);
            let handle = scope.spawn(move || {
                let mut engine = Engine {
                    me,
                    n,
                    lp,
                    tracer,
                    tel,
                    pending: BTreeMap::new(),
                    pool: EventPool::new(),
                    states: EventPool::new(),
                    processed: VecDeque::new(),
                    sends: VecDeque::new(),
                    locals: VecDeque::new(),
                    clock: SimTime::ZERO,
                    seq: 0,
                    gap: 0,
                    gvt: 0.0,
                    token: None,
                    stop: false,
                    sent_delta: 0,
                    recv_delta: 0,
                    min_sent: f64::INFINITY,
                    txs,
                    rx,
                    staged: Vec::new(),
                    stats: TwStats::default(),
                    cfg,
                    t_end,
                };
                {
                    let mut ctx = LpCtx {
                        now: SimTime::ZERO,
                        me,
                        lookahead: f64::MIN_POSITIVE,
                        cause: NO_PARENT,
                        staged: &mut engine.staged,
                    };
                    engine.lp.initial_events(&mut ctx);
                }
                engine.flush_staged();
                if me == 0 {
                    // Seed the GVT ring; the seed visit (round 0) only
                    // folds and forwards, round 1 starts circulating.
                    engine.token = Some(Token {
                        round: 0,
                        min: f64::INFINITY,
                        outstanding: 0,
                        gvt: 0.0,
                    });
                }
                engine.run()
            });
            handles.push((me, handle));
        }
        for (me, handle) in handles {
            // lsds-lint: allow(hot-path-panic) reason="thread teardown: propagate an LP thread panic to the caller instead of swallowing it"
            results[me] = Some(handle.join().expect("LP thread panicked"));
        }
    });
    drop(txs);

    let mut lps_out = Vec::with_capacity(n);
    let mut stats = Vec::with_capacity(n);
    let mut tracers = Vec::with_capacity(n);
    let mut tels = Vec::with_capacity(n);
    for r in results {
        // lsds-lint: allow(hot-path-panic) reason="post-run teardown: every LP index was joined above"
        let (lp, st, tr, tel) = r.expect("missing LP result");
        lps_out.push(lp);
        stats.push(st);
        tracers.push(tr);
        tels.push(tel);
    }
    (
        TwReport {
            lps: lps_out,
            stats,
        },
        tracers,
        tels,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::run_sequential;

    /// Ring token-passer with an optimistic twist: the declared lookahead
    /// is ignored by Time Warp, so `delay` may be anything positive.
    #[derive(Clone)]
    struct RingNode {
        n: usize,
        hops_seen: u64,
        last_time: f64,
        delay: f64,
    }

    impl LogicalProcess for RingNode {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
            self.hops_seen += 1;
            self.last_time = now.seconds();
            let next = (ctx.me() + 1) % self.n;
            ctx.send(next, self.delay, hop + 1);
        }
        fn lookahead(&self) -> f64 {
            self.delay
        }
    }

    impl InitialEvents for RingNode {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.schedule_in(0.0, 0);
            }
        }
    }

    impl SaveState for RingNode {
        type Saved = (u64, f64);
        fn save(&self) -> (u64, f64) {
            (self.hops_seen, self.last_time)
        }
        fn restore(&mut self, saved: (u64, f64)) {
            self.hops_seen = saved.0;
            self.last_time = saved.1;
        }
    }

    fn ring_edges(n: usize) -> Vec<(usize, usize)> {
        (0..n).map(|i| (i, (i + 1) % n)).collect()
    }

    fn ring(n: usize, delay: f64) -> Vec<RingNode> {
        (0..n)
            .map(|_| RingNode {
                n,
                hops_seen: 0,
                last_time: 0.0,
                delay,
            })
            .collect()
    }

    #[test]
    fn ring_token_count_matches_analytic() {
        let report = run_timewarp(ring(4, 1.0), &ring_edges(4), SimTime::new(100.0));
        assert_eq!(report.total_events(), 101);
        assert_eq!(report.lps[0].hops_seen, 26);
        assert_eq!(report.lps[1].hops_seen, 25);
    }

    #[test]
    fn matches_sequential_state_exactly() {
        let seq = run_sequential(ring(5, 0.7), &ring_edges(5), SimTime::new(50.0));
        let tw = run_timewarp(ring(5, 0.7), &ring_edges(5), SimTime::new(50.0));
        assert_eq!(seq.total_events(), tw.total_events());
        for i in 0..5 {
            assert_eq!(seq.lps[i].hops_seen, tw.lps[i].hops_seen);
            assert_eq!(
                seq.lps[i].last_time.to_bits(),
                tw.lps[i].last_time.to_bits(),
                "LP {i} final time diverged"
            );
            assert_eq!(seq.events[i], tw.stats[i].committed);
        }
    }

    #[test]
    fn accounting_balances() {
        let report = run_timewarp(ring(4, 1.0), &ring_edges(4), SimTime::new(200.0));
        assert_eq!(
            report.total_events(),
            report.total_processed() - report.total_rolled_back(),
            "committed must equal processed minus rolled back"
        );
        assert!(report.efficiency() <= 1.0);
    }

    #[test]
    fn coarse_checkpoints_stay_bit_identical() {
        let every = run_timewarp(ring(4, 1.0), &ring_edges(4), SimTime::new(100.0));
        for k in [2u32, 5, 16] {
            let coarse = run_timewarp_cfg(
                ring(4, 1.0),
                &ring_edges(4),
                SimTime::new(100.0),
                TwConfig {
                    checkpoint_every: k,
                    ..TwConfig::default()
                },
            );
            assert_eq!(every.total_events(), coarse.total_events(), "k={k}");
            for i in 0..4 {
                assert_eq!(every.lps[i].hops_seen, coarse.lps[i].hops_seen, "k={k}");
                assert_eq!(
                    every.lps[i].last_time.to_bits(),
                    coarse.lps[i].last_time.to_bits(),
                    "k={k}"
                );
            }
        }
    }

    #[test]
    fn bounded_window_stays_bit_identical() {
        let pure = run_timewarp(ring(4, 1.0), &ring_edges(4), SimTime::new(100.0));
        for w in [0.0, 0.5, 2.0, 10.0] {
            let bounded = run_timewarp_cfg(
                ring(4, 1.0),
                &ring_edges(4),
                SimTime::new(100.0),
                TwConfig {
                    window: w,
                    ..TwConfig::default()
                },
            );
            assert_eq!(pure.total_events(), bounded.total_events(), "w={w}");
            for i in 0..4 {
                assert_eq!(pure.lps[i].hops_seen, bounded.lps[i].hops_seen, "w={w}");
                assert_eq!(
                    pure.lps[i].last_time.to_bits(),
                    bounded.lps[i].last_time.to_bits(),
                    "w={w}"
                );
            }
        }
    }

    #[test]
    fn single_lp_no_events_terminates() {
        #[derive(Clone)]
        struct Idle;
        impl LogicalProcess for Idle {
            type Msg = ();
            fn handle(&mut self, _: SimTime, _: (), _: &mut LpCtx<'_, ()>) {}
            fn lookahead(&self) -> f64 {
                1.0
            }
        }
        impl InitialEvents for Idle {
            fn initial_events(&mut self, _: &mut LpCtx<'_, ()>) {}
        }
        impl SaveState for Idle {
            type Saved = ();
            fn save(&self) {}
            fn restore(&mut self, _: ()) {}
        }
        let report = run_timewarp(vec![Idle], &[], SimTime::new(10.0));
        assert_eq!(report.total_events(), 0);
    }

    #[test]
    fn single_lp_self_schedules() {
        #[derive(Clone)]
        struct Counter {
            count: u64,
        }
        impl LogicalProcess for Counter {
            type Msg = ();
            fn handle(&mut self, _now: SimTime, _m: (), ctx: &mut LpCtx<'_, ()>) {
                self.count += 1;
                ctx.schedule_in(1.0, ());
            }
            fn lookahead(&self) -> f64 {
                1.0
            }
        }
        impl InitialEvents for Counter {
            fn initial_events(&mut self, ctx: &mut LpCtx<'_, ()>) {
                ctx.schedule_in(0.0, ());
            }
        }
        impl SaveState for Counter {
            type Saved = u64;
            fn save(&self) -> u64 {
                self.count
            }
            fn restore(&mut self, saved: u64) {
                self.count = saved;
            }
        }
        let report = run_timewarp(vec![Counter { count: 0 }], &[], SimTime::new(100.0));
        assert_eq!(report.lps[0].count, 101);
        assert_eq!(report.total_events(), 101);
    }

    /// A two-LP workload engineered to force rollbacks: LP 1 busy-works
    /// through a dense local schedule while LP 0 occasionally sends it
    /// low-latency messages, which arrive as stragglers once LP 1 has
    /// optimistically run ahead.
    #[derive(Clone)]
    struct Strag {
        acc: u64,
        dense: bool,
        until: f64,
    }
    impl LogicalProcess for Strag {
        type Msg = u64;
        fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
            self.acc = self
                .acc
                .wrapping_mul(6364136223846793005)
                .wrapping_add(v ^ now.seconds().to_bits());
            if self.dense {
                if now.seconds() + 0.1 <= self.until {
                    ctx.schedule_in(0.1, v.wrapping_add(1));
                }
            } else if now.seconds() + 1.0 <= self.until {
                ctx.schedule_in(1.0, v.wrapping_add(3));
                // far below the declared lookahead: CMB would assert,
                // Time Warp rolls back and repairs
                ctx.send(1, 0.05, self.acc & 0xffff);
            }
        }
        fn lookahead(&self) -> f64 {
            1.0
        }
    }
    impl InitialEvents for Strag {
        fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
            ctx.schedule_in(0.0, ctx.me() as u64);
        }
    }
    impl SaveState for Strag {
        type Saved = u64;
        fn save(&self) -> u64 {
            self.acc
        }
        fn restore(&mut self, saved: u64) {
            self.acc = saved;
        }
    }

    #[test]
    fn forced_stragglers_match_sequential() {
        let mk = || {
            vec![
                Strag {
                    acc: 1,
                    dense: false,
                    until: 40.0,
                },
                Strag {
                    acc: 2,
                    dense: true,
                    until: 40.0,
                },
            ]
        };
        let edges = [(0usize, 1usize)];
        let seq = run_sequential(mk(), &edges, SimTime::new(40.0));
        let tw = run_timewarp(mk(), &edges, SimTime::new(40.0));
        assert_eq!(seq.total_events(), tw.total_events());
        assert_eq!(seq.lps[0].acc, tw.lps[0].acc);
        assert_eq!(seq.lps[1].acc, tw.lps[1].acc);
    }

    #[test]
    fn traced_run_is_bit_identical_and_commits_each_span_once() {
        let plain = run_timewarp(ring(4, 1.0), &ring_edges(4), SimTime::new(100.0));
        let (traced, trace) = run_timewarp_traced(
            ring(4, 1.0),
            &ring_edges(4),
            SimTime::new(100.0),
            TraceConfig::default(),
        );
        assert_eq!(plain.total_events(), traced.total_events());
        for i in 0..4 {
            assert_eq!(plain.lps[i].hops_seen, traced.lps[i].hops_seen);
            assert_eq!(
                plain.lps[i].last_time.to_bits(),
                traced.lps[i].last_time.to_bits()
            );
        }
        // exactly one span per committed event — rolled-back executions
        // must never leak into the trace
        assert_eq!(trace.len() as u64, traced.total_events());
        assert!(trace.spans.windows(2).all(|w| w[0].vt <= w[1].vt));
        let path = trace.critical_path();
        assert!(path.complete);
        assert_eq!(path.steps.len() as u64, traced.total_events());
    }

    #[test]
    fn export_metrics_reports_counters() {
        let report = run_timewarp(ring(3, 1.0), &ring_edges(3), SimTime::new(30.0));
        let mut reg = Registry::new();
        report.export_metrics(&mut reg);
        assert_eq!(reg.counter("tw.committed"), report.total_events());
        assert_eq!(reg.counter("tw.processed"), report.total_processed());
        assert_eq!(
            reg.counter("tw.token_visits"),
            report.stats.iter().map(|s| s.token_visits).sum::<u64>()
        );
        assert_eq!(reg.counter("tw.lp.0.rollbacks"), report.stats[0].rollbacks);
    }

    #[test]
    fn telemetry_run_matches_plain_and_counts_rollbacks() {
        let mk = || {
            vec![
                Strag {
                    acc: 1,
                    dense: false,
                    until: 40.0,
                },
                Strag {
                    acc: 2,
                    dense: true,
                    until: 40.0,
                },
            ]
        };
        let edges = [(0usize, 1usize)];
        let plain = run_timewarp(mk(), &edges, SimTime::new(40.0));
        let (telr, tel) = run_timewarp_telemetry(
            mk(),
            &edges,
            SimTime::new(40.0),
            TwConfig::default(),
            TelemetryConfig::new().every_events(16),
        );
        assert_eq!(plain.total_events(), telr.total_events());
        assert_eq!(plain.lps[0].acc, telr.lps[0].acc);
        assert_eq!(plain.lps[1].acc, telr.lps[1].acc);
        // telemetry counters agree with the engine's own stats (this run's
        // stats, not the plain run's — rollback counts are timing-dependent)
        assert_eq!(tel.counter("tw.rollbacks"), telr.total_rollbacks());
        assert_eq!(tel.counter("tw.rolled_back"), telr.total_rolled_back());
        assert_eq!(tel.counter("tw.antis"), telr.total_antis());
        assert_eq!(
            tel.counter("tw.annihilated"),
            telr.stats.iter().map(|s| s.annihilated).sum::<u64>()
        );
        // anti-messages can only come from rollback-cancelled sends
        assert!(
            tel.counter("tw.antis") <= tel.counter("tw.rolled_back") + tel.counter("tw.rollbacks")
        );
        assert_eq!(tel.events(), telr.total_processed());
    }
}
