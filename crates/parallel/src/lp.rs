//! Logical processes — the unit of distribution.

use lsds_core::SimTime;
use lsds_obs::SpanKind;

/// Identifier of a logical process within a parallel run.
pub type LpId = usize;

/// One partition of a distributed simulation.
///
/// A logical process (LP) owns part of the model state; it handles locally
/// scheduled events and messages arriving from other LPs, in timestamp
/// order, and communicates only through [`LpCtx`]. The conservative
/// engines guarantee that `handle` observes a non-decreasing clock and
/// never sees a message "from the past".
pub trait LogicalProcess: Send {
    /// Message/event payload. One type covers both local events and
    /// inter-LP messages, mirroring how the surveyed simulators route
    /// everything through their event systems.
    type Msg: Send;

    /// Handles one event at time `now`.
    fn handle(&mut self, now: SimTime, msg: Self::Msg, ctx: &mut LpCtx<'_, Self::Msg>);

    /// Minimum simulated delay on any message this LP sends to another LP.
    ///
    /// This is the *lookahead* that makes conservative synchronization
    /// live; it must be strictly positive. Larger lookahead means fewer
    /// null messages (E4 sweeps this).
    fn lookahead(&self) -> f64;

    /// Classifies a message for the tracing layer (`lsds_obs::prof`).
    /// Only called when tracing is enabled; the exported track is always
    /// the handling LP's id.
    fn trace_kind(&self, _msg: &Self::Msg) -> SpanKind {
        SpanKind::DEFAULT
    }
}

/// Outgoing traffic staged by an LP handler. `parent` is the tie key of
/// the event whose handler staged it (the causal edge of the trace DAG).
#[derive(Debug)]
pub(crate) enum Outgoing<M> {
    Local {
        at: SimTime,
        parent: u64,
        msg: M,
    },
    Remote {
        dst: LpId,
        at: SimTime,
        parent: u64,
        msg: M,
    },
}

/// Scheduling/communication handle passed to [`LogicalProcess::handle`].
pub struct LpCtx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) me: LpId,
    pub(crate) lookahead: f64,
    /// Tie key of the event being handled ([`lsds_core::NO_PARENT`] for
    /// initial-event staging).
    pub(crate) cause: u64,
    pub(crate) staged: &'a mut Vec<Outgoing<M>>,
}

impl<'a, M> LpCtx<'a, M> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This LP's id.
    pub fn me(&self) -> LpId {
        self.me
    }

    /// Schedules a local event after `dt ≥ 0`.
    ///
    /// Panics on a negative or non-finite `dt`: a buggy LP scheduling into
    /// the past would silently violate the conservative engines' clock
    /// invariant (events delivered in non-decreasing time order), so it is
    /// rejected here at the staging point rather than detected downstream.
    pub fn schedule_in(&mut self, dt: f64, msg: M) {
        assert!(
            dt.is_finite() && dt >= 0.0,
            "LP {} scheduled a local event with invalid delay {dt} at {}",
            self.me,
            self.now
        );
        let at = self.now.after(dt);
        self.staged.push(Outgoing::Local {
            at,
            parent: self.cause,
            msg,
        });
    }

    /// Sends a message to LP `dst`, arriving after `delay`.
    ///
    /// Under the conservative engines `delay` must be at least the LP's
    /// declared lookahead — the engine asserts this, because a shorter
    /// delay would invalidate the null-message guarantees already given
    /// to `dst`. The optimistic engine ([`crate::run_timewarp`]) instead
    /// runs handlers with an effective lookahead of the smallest positive
    /// double: it tolerates any *strictly positive* delay, however far
    /// below the declared lookahead, repairing mis-speculation with
    /// rollback where CMB would have tripped this assertion.
    pub fn send(&mut self, dst: LpId, delay: f64, msg: M) {
        assert!(
            delay >= self.lookahead,
            "send delay {delay} below lookahead {}",
            self.lookahead
        );
        assert!(dst != self.me, "use schedule_in for local events");
        let at = self.now.after(delay);
        self.staged.push(Outgoing::Remote {
            dst,
            at,
            parent: self.cause,
            msg,
        });
    }
}

/// Composite tie-break key making cross-LP delivery deterministic: events
/// at equal times are ordered by `(source LP, per-source sequence)`.
#[inline]
pub(crate) fn tie_key(src: LpId, seq: u64) -> u64 {
    debug_assert!(src < (1 << 16), "LP id too large for tie key");
    debug_assert!(seq < (1 << 48), "sequence overflow in tie key");
    ((src as u64) << 48) | seq
}

/// Total order on `(time, tie)` as one integer: IEEE-754 bit patterns of
/// non-negative finite doubles compare like the doubles themselves.
#[inline]
pub(crate) fn pack(at: SimTime, tie: u64) -> u128 {
    let s = at.seconds();
    debug_assert!(s >= 0.0, "negative sim time in tie pack");
    ((s.to_bits() as u128) << 64) | tie as u128
}

/// Validates a declared topology: every edge in range, no self-loops.
/// Shared by every engine so a bad edge list fails identically whichever
/// executor runs it.
pub(crate) fn validate_edges(n: usize, edges: &[(LpId, LpId)]) {
    for &(s, d) in edges {
        assert!(s < n && d < n && s != d, "bad edge ({s},{d})");
    }
}

/// In-neighbors of `me` under a declared edge list, in declaration order.
pub(crate) fn in_neighbors(edges: &[(LpId, LpId)], me: LpId) -> Vec<LpId> {
    edges
        .iter()
        .filter(|(_, d)| *d == me)
        .map(|(s, _)| *s)
        .collect()
}

/// Out-neighbors of `me` under a declared edge list, in declaration order.
pub(crate) fn out_neighbors(edges: &[(LpId, LpId)], me: LpId) -> Vec<LpId> {
    edges
        .iter()
        .filter(|(s, _)| *s == me)
        .map(|(_, d)| *d)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_core::NO_PARENT;

    #[test]
    fn pack_orders_by_time_then_tie() {
        assert!(pack(SimTime::new(1.0), 7) < pack(SimTime::new(2.0), 0));
        assert!(pack(SimTime::new(3.0), 1) < pack(SimTime::new(3.0), 2));
        assert!(pack(SimTime::ZERO, u64::MAX) < pack(SimTime::new(1e-300), 0));
    }

    #[test]
    fn neighbor_lists_follow_declaration_order() {
        let edges = [(0usize, 2usize), (1, 2), (2, 0), (0, 1)];
        assert_eq!(in_neighbors(&edges, 2), vec![0, 1]);
        assert_eq!(out_neighbors(&edges, 0), vec![2, 1]);
        assert_eq!(in_neighbors(&edges, 0), vec![2]);
        assert_eq!(out_neighbors(&edges, 2), vec![0]);
    }

    #[test]
    #[should_panic(expected = "bad edge")]
    fn validate_edges_rejects_self_loop() {
        validate_edges(3, &[(1, 1)]);
    }

    #[test]
    fn tie_key_orders_by_src_then_seq() {
        assert!(tie_key(0, 5) < tie_key(0, 6));
        assert!(tie_key(0, u32::MAX as u64) < tie_key(1, 0));
        assert!(tie_key(1, 7) < tie_key(2, 0));
    }

    #[test]
    fn ctx_stages_local_and_remote() {
        let mut staged = Vec::new();
        let mut ctx: LpCtx<'_, u32> = LpCtx {
            now: SimTime::new(10.0),
            me: 0,
            lookahead: 1.0,
            cause: NO_PARENT,
            staged: &mut staged,
        };
        ctx.schedule_in(0.0, 1);
        ctx.send(1, 1.0, 2);
        assert_eq!(staged.len(), 2);
        match &staged[1] {
            Outgoing::Remote { dst, at, msg, .. } => {
                assert_eq!(*dst, 1);
                assert_eq!(*at, SimTime::new(11.0));
                assert_eq!(*msg, 2);
            }
            _ => panic!("expected remote"),
        }
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn schedule_in_negative_dt_panics() {
        let mut staged = Vec::new();
        let mut ctx: LpCtx<'_, u32> = LpCtx {
            now: SimTime::new(10.0),
            me: 0,
            lookahead: 1.0,
            cause: NO_PARENT,
            staged: &mut staged,
        };
        ctx.schedule_in(-0.5, 1);
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn schedule_in_nan_dt_panics() {
        let mut staged = Vec::new();
        let mut ctx: LpCtx<'_, u32> = LpCtx {
            now: SimTime::new(10.0),
            me: 0,
            lookahead: 1.0,
            cause: NO_PARENT,
            staged: &mut staged,
        };
        ctx.schedule_in(f64::NAN, 1);
    }

    /// The conservative contract: `send` rejects delays below the
    /// declared lookahead. Time Warp runs handlers with `lookahead =
    /// f64::MIN_POSITIVE`, so the same model code is accepted there for
    /// any strictly positive delay — only zero-delay cross-LP sends stay
    /// forbidden (they would make equal-time ordering race-dependent).
    #[test]
    #[should_panic]
    fn send_below_lookahead_panics() {
        let mut staged = Vec::new();
        let mut ctx: LpCtx<'_, u32> = LpCtx {
            now: SimTime::new(10.0),
            me: 0,
            lookahead: 1.0,
            cause: NO_PARENT,
            staged: &mut staged,
        };
        ctx.send(1, 0.5, 2);
    }
}
