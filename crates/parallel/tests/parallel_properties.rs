//! Property-based tests of the distributed engines: for arbitrary ring
//! workloads, the conservative CMB engine, the time-stepped engine, and an
//! analytically computed reference all agree — parallel execution never
//! changes results (the determinism guarantee of `lsds-parallel`).

use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{run_cmb, run_timestep, LogicalProcess, LpCtx};
use proptest::prelude::*;

/// Token-passing ring node with per-node hop counts.
struct Ring {
    n: usize,
    delay: f64,
    seen: u64,
}

impl LogicalProcess for Ring {
    type Msg = u64;
    fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
        self.seen += 1;
        ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
    }
    fn lookahead(&self) -> f64 {
        self.delay
    }
}

impl InitialEvents for Ring {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

fn ring(n: usize, delay: f64) -> Vec<Ring> {
    (0..n)
        .map(|_| Ring {
            n,
            delay,
            seen: 0,
        })
        .collect()
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Analytic reference: hop k fires at time k·delay; LP (k mod n) sees it.
fn analytic_counts(n: usize, delay: f64, t_end: f64) -> Vec<u64> {
    let mut counts = vec![0u64; n];
    let hops = (t_end / delay).floor() as u64;
    for k in 0..=hops {
        counts[(k % n as u64) as usize] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cmb_matches_analytic_ring(
        n in 2usize..6,
        delay in 0.1..5.0f64,
        periods in 10u32..200,
    ) {
        let t_end = delay * periods as f64 * 0.999; // avoid boundary ties
        let report = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let expect = analytic_counts(n, delay, t_end);
        let got: Vec<u64> = report.lps.iter().map(|l| l.seen).collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn timestep_matches_cmb(
        n in 2usize..5,
        delay in 0.2..2.0f64,
        periods in 10u32..100,
    ) {
        let t_end = delay * periods as f64 * 0.999;
        let a = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let b = run_timestep(ring(n, delay), delay, SimTime::new(t_end));
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        prop_assert_eq!(ca, cb);
    }

    #[test]
    fn cmb_repeatable(n in 2usize..5, delay in 0.1..2.0f64) {
        let t_end = SimTime::new(50.0);
        let a = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let b = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        prop_assert_eq!(ca, cb);
        prop_assert_eq!(a.total_remote(), b.total_remote());
    }
}
