//! Randomized tests of the distributed engines: for arbitrary ring
//! workloads, the conservative CMB engine, the time-stepped engine, and an
//! analytically computed reference all agree — parallel execution never
//! changes results (the determinism guarantee of `lsds-parallel`).
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{
    run_cmb, run_sequential, run_timestep, run_timewarp, run_worksteal, LogicalProcess, LpCtx,
    SaveState,
};
use lsds_stats::SimRng;

const TRIALS: u64 = 24;

/// Token-passing ring node with per-node hop counts.
#[derive(Clone)]
struct Ring {
    n: usize,
    delay: f64,
    seen: u64,
}

impl LogicalProcess for Ring {
    type Msg = u64;
    fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
        self.seen += 1;
        ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
    }
    fn lookahead(&self) -> f64 {
        self.delay
    }
}

impl InitialEvents for Ring {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

impl SaveState for Ring {
    type Saved = u64;
    fn save(&self) -> u64 {
        self.seen
    }
    fn restore(&mut self, saved: u64) {
        self.seen = saved;
    }
}

fn ring(n: usize, delay: f64) -> Vec<Ring> {
    (0..n).map(|_| Ring { n, delay, seen: 0 }).collect()
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Analytic reference: hop k fires at time k·delay; LP (k mod n) sees it.
fn analytic_counts(n: usize, delay: f64, t_end: f64) -> Vec<u64> {
    let mut counts = vec![0u64; n];
    let hops = (t_end / delay).floor() as u64;
    for k in 0..=hops {
        counts[(k % n as u64) as usize] += 1;
    }
    counts
}

#[test]
fn cmb_matches_analytic_ring() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B0 + trial);
        let n = 2 + rng.next_below(4) as usize;
        let delay = rng.range_f64(0.1, 5.0);
        let periods = 10 + rng.next_below(190) as u32;
        let t_end = delay * periods as f64 * 0.999; // avoid boundary ties
        let report = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let expect = analytic_counts(n, delay, t_end);
        let got: Vec<u64> = report.lps.iter().map(|l| l.seen).collect();
        assert_eq!(got, expect, "n={n} delay={delay} periods={periods}");
    }
}

#[test]
fn timestep_matches_cmb() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B1 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let delay = rng.range_f64(0.2, 2.0);
        let periods = 10 + rng.next_below(90) as u32;
        let t_end = delay * periods as f64 * 0.999;
        let a = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let b = run_timestep(ring(n, delay), delay, SimTime::new(t_end));
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        assert_eq!(ca, cb, "n={n} delay={delay} periods={periods}");
    }
}

#[test]
fn timewarp_matches_analytic_ring() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B3 + trial);
        let n = 2 + rng.next_below(4) as usize;
        let delay = rng.range_f64(0.1, 5.0);
        let periods = 10 + rng.next_below(190) as u32;
        let t_end = delay * periods as f64 * 0.999;
        let report = run_timewarp(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let expect = analytic_counts(n, delay, t_end);
        let got: Vec<u64> = report.lps.iter().map(|l| l.seen).collect();
        assert_eq!(got, expect, "n={n} delay={delay} periods={periods}");
        assert_eq!(
            report.total_events(),
            report.total_processed() - report.total_rolled_back(),
            "accounting must balance"
        );
    }
}

/// All five executors agree with t_end landing *exactly* on event times —
/// the adversarial boundary for CMB's t_end fold (S1) and for Time Warp's
/// inclusive-horizon handling. No `0.999` slack on purpose.
#[test]
fn engines_agree_at_exact_horizon_boundary() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B4 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let delay = rng.range_f64(0.2, 2.0);
        let periods = 5 + rng.next_below(45) as u32;
        let t_end = SimTime::new(delay * periods as f64);
        let seq = run_sequential(ring(n, delay), &ring_edges(n), t_end);
        let cmb = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let ts = run_timestep(ring(n, delay), delay, t_end);
        let tw = run_timewarp(ring(n, delay), &ring_edges(n), t_end);
        let ws = run_worksteal(ring(n, delay), &ring_edges(n), t_end);
        let cs: Vec<u64> = seq.lps.iter().map(|l| l.seen).collect();
        let cc: Vec<u64> = cmb.lps.iter().map(|l| l.seen).collect();
        let ct: Vec<u64> = ts.lps.iter().map(|l| l.seen).collect();
        let cw: Vec<u64> = tw.lps.iter().map(|l| l.seen).collect();
        let cx: Vec<u64> = ws.lps.iter().map(|l| l.seen).collect();
        assert_eq!(cs, cc, "cmb diverged: n={n} delay={delay} p={periods}");
        assert_eq!(cs, ct, "timestep diverged: n={n} delay={delay} p={periods}");
        assert_eq!(cs, cw, "timewarp diverged: n={n} delay={delay} p={periods}");
        assert_eq!(
            cs, cx,
            "worksteal diverged: n={n} delay={delay} p={periods}"
        );
        assert_eq!(seq.total_events(), tw.total_events());
        assert_eq!(seq.total_events(), ws.total_events());
    }
}

/// S4: a workload whose inter-LP delays are *far below* the declared
/// lookahead (so Time Warp speculates wrongly and must roll back) commits
/// exactly the sequential engine's event set and final state, across
/// seeds. The messages sent and their timestamps depend only on model
/// state, so any lost/duplicated/mis-ordered delivery diverges the hash.
///
/// Remote messages carry [`REMOTE`] and are pure sinks (they mutate state
/// but schedule nothing) — otherwise every delivery would seed a fresh
/// local chain and the event population would grow combinatorially. The
/// sinks still force rollbacks at the receiver, and rolling back the
/// *local* chain cancels its optimistic sends, exercising anti-messages.
const REMOTE: u64 = 1 << 63;

#[derive(Clone)]
struct Chaotic {
    n: usize,
    acc: u64,
    events: u64,
    local_dt: f64,
    until: f64,
}

impl LogicalProcess for Chaotic {
    type Msg = u64;
    fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
        self.events += 1;
        self.acc = self
            .acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add((v & !REMOTE) ^ now.seconds().to_bits());
        if v & REMOTE != 0 {
            return;
        }
        if now.seconds() + self.local_dt <= self.until {
            ctx.schedule_in(self.local_dt, self.acc >> 32);
        }
        // deterministic function of state: roughly every third event sends
        // to the next LP with a sub-lookahead delay in (0, 0.16]
        if self.acc.is_multiple_of(3) && self.n > 1 {
            let delay = 0.01 + (self.acc % 16) as f64 * 0.01;
            if now.seconds() + delay <= self.until {
                ctx.send(
                    (ctx.me() + 1) % self.n,
                    delay,
                    REMOTE | (self.acc & 0xffff_ffff),
                );
            }
        }
    }
    fn lookahead(&self) -> f64 {
        1.0 // a lie: actual sends go as low as 0.01
    }
}

impl InitialEvents for Chaotic {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        ctx.schedule_in(0.0, ctx.me() as u64 + 1);
    }
}

impl SaveState for Chaotic {
    type Saved = (u64, u64);
    fn save(&self) -> (u64, u64) {
        (self.acc, self.events)
    }
    fn restore(&mut self, saved: (u64, u64)) {
        self.acc = saved.0;
        self.events = saved.1;
    }
}

#[test]
fn forced_stragglers_bit_identical_across_seeds() {
    let mut total_rollbacks = 0u64;
    for trial in 0..12 {
        let mut rng = SimRng::new(0x7153 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let until = 10.0 + rng.next_below(20) as f64;
        let mk = |rng: &mut SimRng| -> Vec<Chaotic> {
            (0..n)
                .map(|i| Chaotic {
                    n,
                    acc: 0x9e37 + i as u64 + rng.next_below(1000),
                    events: 0,
                    local_dt: 0.05 + (i as f64) * 0.03,
                    until,
                })
                .collect()
        };
        let proto = mk(&mut rng);
        let edges = ring_edges(n);
        let t_end = SimTime::new(until);
        let seq = run_sequential(proto.clone(), &edges, t_end);
        let tw = run_timewarp(proto, &edges, t_end);
        // bit-identical final state
        for i in 0..n {
            assert_eq!(
                seq.lps[i].acc, tw.lps[i].acc,
                "trial {trial} LP {i} state diverged"
            );
            assert_eq!(seq.lps[i].events, tw.lps[i].events, "trial {trial} LP {i}");
            // event-count accounting: committed == sequential deliveries
            assert_eq!(
                seq.events[i], tw.stats[i].committed,
                "trial {trial} LP {i} committed count"
            );
        }
        assert_eq!(
            tw.total_events(),
            tw.total_processed() - tw.total_rolled_back(),
            "trial {trial} accounting"
        );
        total_rollbacks += tw.total_rollbacks();
    }
    // the whole point: optimism must actually have been wrong sometimes
    assert!(
        total_rollbacks > 0,
        "straggler workload never forced a rollback — test lost its teeth"
    );
}

#[test]
fn cmb_repeatable() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B2 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let delay = rng.range_f64(0.1, 2.0);
        let t_end = SimTime::new(50.0);
        let a = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let b = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        assert_eq!(ca, cb);
        assert_eq!(a.total_remote(), b.total_remote());
    }
}
