//! Randomized tests of the distributed engines: for arbitrary ring
//! workloads, the conservative CMB engine, the time-stepped engine, and an
//! analytically computed reference all agree — parallel execution never
//! changes results (the determinism guarantee of `lsds-parallel`).
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{run_cmb, run_timestep, LogicalProcess, LpCtx};
use lsds_stats::SimRng;

const TRIALS: u64 = 24;

/// Token-passing ring node with per-node hop counts.
struct Ring {
    n: usize,
    delay: f64,
    seen: u64,
}

impl LogicalProcess for Ring {
    type Msg = u64;
    fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
        self.seen += 1;
        ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
    }
    fn lookahead(&self) -> f64 {
        self.delay
    }
}

impl InitialEvents for Ring {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

fn ring(n: usize, delay: f64) -> Vec<Ring> {
    (0..n).map(|_| Ring { n, delay, seen: 0 }).collect()
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Analytic reference: hop k fires at time k·delay; LP (k mod n) sees it.
fn analytic_counts(n: usize, delay: f64, t_end: f64) -> Vec<u64> {
    let mut counts = vec![0u64; n];
    let hops = (t_end / delay).floor() as u64;
    for k in 0..=hops {
        counts[(k % n as u64) as usize] += 1;
    }
    counts
}

#[test]
fn cmb_matches_analytic_ring() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B0 + trial);
        let n = 2 + rng.next_below(4) as usize;
        let delay = rng.range_f64(0.1, 5.0);
        let periods = 10 + rng.next_below(190) as u32;
        let t_end = delay * periods as f64 * 0.999; // avoid boundary ties
        let report = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let expect = analytic_counts(n, delay, t_end);
        let got: Vec<u64> = report.lps.iter().map(|l| l.seen).collect();
        assert_eq!(got, expect, "n={n} delay={delay} periods={periods}");
    }
}

#[test]
fn timestep_matches_cmb() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B1 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let delay = rng.range_f64(0.2, 2.0);
        let periods = 10 + rng.next_below(90) as u32;
        let t_end = delay * periods as f64 * 0.999;
        let a = run_cmb(ring(n, delay), &ring_edges(n), SimTime::new(t_end));
        let b = run_timestep(ring(n, delay), delay, SimTime::new(t_end));
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        assert_eq!(ca, cb, "n={n} delay={delay} periods={periods}");
    }
}

#[test]
fn cmb_repeatable() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0xC3B2 + trial);
        let n = 2 + rng.next_below(3) as usize;
        let delay = rng.range_f64(0.1, 2.0);
        let t_end = SimTime::new(50.0);
        let a = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let b = run_cmb(ring(n, delay), &ring_edges(n), t_end);
        let ca: Vec<u64> = a.lps.iter().map(|l| l.seen).collect();
        let cb: Vec<u64> = b.lps.iter().map(|l| l.seen).collect();
        assert_eq!(ca, cb);
        assert_eq!(a.total_remote(), b.total_remote());
    }
}
