//! Telemetry bit-identity and counter-invariant properties across every
//! engine: attaching an [`lsds_obs::EngineTelemetry`] sink must never
//! change a single bit of simulation state (the sink observes scheduler
//! internals, it does not participate in scheduling), its counters must
//! respect the engine's own accounting identities, and every exported
//! series must carry monotone virtual-time stamps — the structural
//! guarantee that makes the Perfetto counter tracks renderable.

use lsds_core::SimTime;
use lsds_obs::{TelemetryConfig, TelemetryReport};
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::timewarp::SaveState;
use lsds_parallel::{
    run_cmb, run_cmb_telemetry, run_sequential, run_sequential_telemetry, run_timestep,
    run_timestep_telemetry, run_timewarp_cfg, run_timewarp_telemetry, run_worksteal_cfg,
    run_worksteal_telemetry, LogicalProcess, LpCtx, TwConfig, WsConfig,
};

const REMOTE: u64 = 1 << 63;

/// Skewed ring workload shared by every engine comparison: per-LP event
/// rate and per-event state-mixing cost vary, some events poke the next
/// LP. Pure state computation — results are a deterministic function of
/// delivery order, which is exactly what telemetry must not disturb.
#[derive(Clone)]
struct SkewLp {
    n: usize,
    acc: u64,
    events: u64,
    local_dt: f64,
    work: u32,
    until: f64,
    la: f64,
}

impl LogicalProcess for SkewLp {
    type Msg = u64;
    fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
        self.events += 1;
        let mut h = self.acc ^ (v & !REMOTE) ^ now.seconds().to_bits();
        for i in 0..self.work {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        self.acc = h;
        if v & REMOTE != 0 {
            return;
        }
        if now.seconds() + self.local_dt <= self.until {
            ctx.schedule_in(self.local_dt, h >> 32);
        }
        if h.is_multiple_of(3) && self.n > 1 && now.seconds() + self.la <= self.until {
            ctx.send((ctx.me() + 1) % self.n, self.la, REMOTE | (h & 0xffff_ffff));
        }
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for SkewLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        ctx.schedule_in(0.0, ctx.me() as u64 + 1);
    }
}

impl SaveState for SkewLp {
    type Saved = (u64, u64);
    fn save(&self) -> (u64, u64) {
        (self.acc, self.events)
    }
    fn restore(&mut self, saved: (u64, u64)) {
        self.acc = saved.0;
        self.events = saved.1;
    }
}

fn workload(n: usize, until: f64) -> (Vec<SkewLp>, Vec<(usize, usize)>) {
    let lps = (0..n)
        .map(|i| SkewLp {
            n,
            acc: 0xBEEF + i as u64,
            events: 0,
            local_dt: if i == 0 { 0.02 } else { 0.25 },
            work: if i == 0 { 400 } else { 8 },
            until,
            la: 0.5,
        })
        .collect();
    let edges = (0..n).map(|i| (i, (i + 1) % n)).collect();
    (lps, edges)
}

fn state_of(lps: &[SkewLp]) -> Vec<(u64, u64)> {
    lps.iter().map(|l| (l.acc, l.events)).collect()
}

/// Cadence small enough that every engine flushes several times.
fn tcfg() -> TelemetryConfig {
    TelemetryConfig::new().every_events(32)
}

fn assert_series_monotone(tel: &TelemetryReport) {
    for (name, track, points) in tel.series_lanes() {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "series {name}[{track}] has non-monotone timestamps"
        );
        assert!(
            points.iter().all(|p| p.0.is_finite()),
            "series {name}[{track}] has non-finite timestamps"
        );
    }
}

const N: usize = 6;
const UNTIL: f64 = 30.0;

#[test]
fn sequential_bit_identical_with_telemetry() {
    let (lps, edges) = workload(N, UNTIL);
    let plain = run_sequential(lps, &edges, SimTime::new(UNTIL));
    let (lps, edges) = workload(N, UNTIL);
    let (report, tel) = run_sequential_telemetry(lps, &edges, SimTime::new(UNTIL), tcfg());
    assert_eq!(state_of(&report.lps), state_of(&plain.lps));
    assert_eq!(tel.events(), report.total_events());
    assert_series_monotone(&tel);
}

#[test]
fn cmb_bit_identical_with_telemetry() {
    let (lps, edges) = workload(N, UNTIL);
    let plain = run_cmb(lps, &edges, SimTime::new(UNTIL));
    let (lps, edges) = workload(N, UNTIL);
    let (report, tel) = run_cmb_telemetry(lps, &edges, SimTime::new(UNTIL), tcfg());
    assert_eq!(state_of(&report.lps), state_of(&plain.lps));
    assert_eq!(tel.events(), report.total_events());
    // Null messages and blocks mirror this run's own stats exactly.
    assert_eq!(tel.counter("cmb.nulls"), report.total_nulls());
    assert_series_monotone(&tel);
}

#[test]
fn timestep_bit_identical_with_telemetry() {
    let (lps, _) = workload(N, UNTIL);
    let plain = run_timestep(lps, 0.5, SimTime::new(UNTIL));
    let (lps, _) = workload(N, UNTIL);
    let (report, tel) = run_timestep_telemetry(lps, 0.5, SimTime::new(UNTIL), tcfg());
    assert_eq!(state_of(&report.lps), state_of(&plain.lps));
    assert_eq!(tel.events(), report.total_events());
    // Barrier waits are structural: every LP crosses every window.
    let waits = tel.counter("ts.barrier_waits");
    assert!(waits > 0 && waits.is_multiple_of(N as u64), "waits {waits}");
    assert_series_monotone(&tel);
}

#[test]
fn timewarp_bit_identical_with_telemetry_and_anti_invariant() {
    let cfg = TwConfig {
        checkpoint_every: 1,
        window: 2.0,
    };
    let (lps, edges) = workload(N, UNTIL);
    let plain = run_timewarp_cfg(lps, &edges, SimTime::new(UNTIL), cfg);
    let (lps, edges) = workload(N, UNTIL);
    let (report, tel) = run_timewarp_telemetry(lps, &edges, SimTime::new(UNTIL), cfg, tcfg());
    assert_eq!(state_of(&report.lps), state_of(&plain.lps));
    // Counters mirror this run's own stats (rollback counts are
    // timing-dependent, so compare within the run, never across runs).
    assert_eq!(tel.events(), report.total_processed());
    assert_eq!(tel.counter("tw.rollbacks"), report.total_rollbacks());
    assert_eq!(tel.counter("tw.rolled_back"), report.total_rolled_back());
    assert_eq!(tel.counter("tw.antis"), report.total_antis());
    // An anti-message cancels a previously sent positive message, so
    // antis can never exceed real sends.
    let remote: u64 = report.stats.iter().map(|s| s.remote_sent).sum();
    assert!(
        tel.counter("tw.antis") <= remote,
        "antis {} > remote sends {remote}",
        tel.counter("tw.antis")
    );
    // Undone plus committed is exactly what was executed.
    assert_eq!(
        report.total_processed(),
        report.total_events() + report.total_rolled_back()
    );
    assert_series_monotone(&tel);
}

#[test]
fn worksteal_bit_identical_with_telemetry_and_steal_invariant() {
    let cfg = WsConfig {
        workers: 3,
        batch: 8,
        migration_epoch: Some(64),
    };
    let (lps, edges) = workload(N, UNTIL);
    let plain = run_worksteal_cfg(lps, &edges, SimTime::new(UNTIL), cfg);
    let (lps, edges) = workload(N, UNTIL);
    let (report, tel) = run_worksteal_telemetry(lps, &edges, SimTime::new(UNTIL), cfg, tcfg());
    assert_eq!(state_of(&report.lps), state_of(&plain.lps));
    assert_eq!(tel.events(), report.total_events());
    // A steal hands an activation to a thief, so steals can never
    // exceed activations.
    assert!(
        tel.counter("ws.steals") <= tel.counter("ws.activations"),
        "steals {} > activations {}",
        tel.counter("ws.steals"),
        tel.counter("ws.activations")
    );
    assert_eq!(tel.counter("ws.steals"), report.sched.steals);
    assert_eq!(tel.counter("ws.migrations"), report.sched.migrations);
    assert_eq!(
        tel.counter("ws.activations"),
        report.stats.iter().map(|s| s.activations).sum::<u64>()
    );
    assert_series_monotone(&tel);
}

/// The sixth engine: the centralized core executor, telemetry attached
/// via the state-preserving converter.
#[test]
fn core_engine_bit_identical_with_telemetry() {
    use lsds_core::{Ctx, EventDriven, Model};
    use lsds_obs::EngineTelemetry;

    struct Hold {
        acc: u64,
        left: u32,
    }
    impl Model for Hold {
        type Event = u64;
        fn handle(&mut self, ev: u64, ctx: &mut Ctx<'_, u64>) {
            self.acc = self.acc.wrapping_mul(0x9E3779B97F4A7C15) ^ ev;
            if self.left > 0 {
                self.left -= 1;
                ctx.schedule_in(0.125 + (self.acc % 7) as f64 * 0.01, self.acc >> 8);
            }
        }
    }

    let run_plain = || {
        let mut sim = EventDriven::new(Hold { acc: 1, left: 500 });
        sim.schedule(SimTime::ZERO, 42);
        sim.run();
        sim.into_model().acc
    };
    let mut sim =
        EventDriven::new(Hold { acc: 1, left: 500 }).with_telemetry(EngineTelemetry::new(tcfg()));
    sim.schedule(SimTime::ZERO, 42);
    sim.run();
    let acc = sim.model().acc;
    let tel = TelemetryReport::merge(vec![sim.into_telemetry()]);
    assert_eq!(acc, run_plain(), "telemetry perturbed the core engine");
    assert_eq!(tel.events(), 501);
    assert!(tel.series_on("engine.queue_len", 0).is_some());
    assert_series_monotone(&tel);
}

/// Telemetry-off is the compile-time default: the plain entry points use
/// [`lsds_obs::NoopTelemetry`] (`ENABLED = false`), asserted here so the
/// zero-cost claim is pinned by a test, not a comment.
#[test]
fn disabled_telemetry_is_zero_sized_and_off() {
    use lsds_obs::{NoopTelemetry, Telemetry};
    const { assert!(!NoopTelemetry::ENABLED) }
    assert_eq!(std::mem::size_of::<NoopTelemetry>(), 0);
}
