//! Adversarial scheduling tests for the work-stealing engine: under
//! extreme load imbalance (one LP owning ~90% of the work), forced
//! mid-run migration, and every worker count, results are bit-identical
//! to the sequential oracle — scheduling decisions must never leak into
//! simulation state.
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{run_sequential, run_worksteal_cfg, LogicalProcess, LpCtx, WsConfig};
use lsds_stats::SimRng;

/// Marks a message as a pure cross-LP sink (mutates state, schedules
/// nothing) so the event population stays linear — same trick as the
/// Time Warp straggler property.
const REMOTE: u64 = 1 << 63;

/// Ring node whose per-event cost and event rate are per-LP knobs, so a
/// single LP can own nearly all the work while the rest idle.
#[derive(Clone)]
struct SkewLp {
    n: usize,
    acc: u64,
    events: u64,
    /// Self-scheduling period: the hot LP fires orders of magnitude
    /// more often than the cold ones.
    local_dt: f64,
    /// State-mixing iterations per event — simulated "handler cost"
    /// that is pure state computation, so results stay deterministic.
    work: u32,
    until: f64,
    la: f64,
}

impl LogicalProcess for SkewLp {
    type Msg = u64;
    fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
        self.events += 1;
        let mut h = self.acc ^ (v & !REMOTE) ^ now.seconds().to_bits();
        for i in 0..self.work {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        self.acc = h;
        if v & REMOTE != 0 {
            return;
        }
        if now.seconds() + self.local_dt <= self.until {
            ctx.schedule_in(self.local_dt, h >> 32);
        }
        // deterministic function of state: some events also poke the
        // next LP at exactly the declared lookahead. The delay is
        // constant on purpose: conservative channel clocks require each
        // edge's sends in nondecreasing timestamp order (the same
        // contract cmb.rs enforces), so only the payload varies.
        if h.is_multiple_of(5) && self.n > 1 && now.seconds() + self.la <= self.until {
            ctx.send((ctx.me() + 1) % self.n, self.la, REMOTE | (h & 0xffff_ffff));
        }
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for SkewLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        ctx.schedule_in(0.0, ctx.me() as u64 + 1);
    }
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// Builds `n` LPs where LP 0 is the hot spot: it self-schedules ~50×
/// more often with ~100× the per-event cost of its neighbors.
fn skewed(n: usize, until: f64, rng: &mut SimRng) -> Vec<SkewLp> {
    (0..n)
        .map(|i| SkewLp {
            n,
            acc: 0x9e37 + i as u64 + rng.next_below(1000),
            events: 0,
            local_dt: if i == 0 { 0.01 } else { 0.5 },
            work: if i == 0 { 1000 } else { 10 },
            until,
            la: 0.2,
        })
        .collect()
}

/// FNV-1a fold of every LP's final state — any lost, duplicated, or
/// reordered delivery anywhere diverges it.
fn fingerprint(lps: &[SkewLp]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for lp in lps {
        for part in [lp.acc, lp.events] {
            h = (h ^ part).wrapping_mul(0x100000001b3);
        }
    }
    h
}

#[test]
fn imbalanced_run_bit_identical_across_worker_counts() {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    for trial in 0..6u64 {
        let mut rng = SimRng::new(0x5EA1 + trial);
        let n = 4 + rng.next_below(5) as usize;
        let until = 4.0 + rng.next_below(4) as f64;
        let proto = skewed(n, until, &mut rng);
        let edges = ring_edges(n);
        let t_end = SimTime::new(until);
        let seq = run_sequential(proto.clone(), &edges, t_end);
        // the scenario is genuinely skewed: LP 0 owns ≥ 90% of the
        // *work* (events weighted by per-event handler cost — its sink
        // messages inflate the neighbor's raw event count)
        let weighted: u64 = seq
            .events
            .iter()
            .zip(&proto)
            .map(|(&e, lp)| e * lp.work as u64)
            .sum();
        assert!(
            seq.events[0] * proto[0].work as u64 * 10 >= weighted * 9,
            "trial {trial}: hot LP owns {}/{weighted} weighted work — scenario lost its skew",
            seq.events[0] * proto[0].work as u64,
        );
        for workers in [1usize, 2, cores] {
            let ws = run_worksteal_cfg(
                proto.clone(),
                &edges,
                t_end,
                WsConfig {
                    workers,
                    batch: 8,
                    migration_epoch: None,
                },
            );
            assert_eq!(
                fingerprint(&ws.lps),
                fingerprint(&seq.lps),
                "trial {trial} workers={workers} diverged from sequential"
            );
            for i in 0..n {
                assert_eq!(
                    seq.events[i], ws.stats[i].events,
                    "trial {trial} workers={workers} LP {i} event count"
                );
            }
        }
    }
}

#[test]
fn forced_migration_mid_run_preserves_bit_identity() {
    let mut total_epochs = 0u64;
    for trial in 0..6u64 {
        let mut rng = SimRng::new(0xA11C + trial);
        let n = 4 + rng.next_below(4) as usize;
        let until = 4.0 + rng.next_below(3) as f64;
        let proto = skewed(n, until, &mut rng);
        let edges = ring_edges(n);
        let t_end = SimTime::new(until);
        let seq = run_sequential(proto.clone(), &edges, t_end);
        // an epoch every 25 events forces many rebalances mid-run
        let migr = run_worksteal_cfg(
            proto.clone(),
            &edges,
            t_end,
            WsConfig {
                workers: 2,
                batch: 4,
                migration_epoch: Some(25),
            },
        );
        assert_eq!(
            fingerprint(&migr.lps),
            fingerprint(&seq.lps),
            "trial {trial}: migration changed results"
        );
        total_epochs += migr.sched.epochs;
    }
    // the whole point: rebalancing must actually have happened mid-run
    assert!(
        total_epochs > 0,
        "migration epochs never fired — test lost its teeth"
    );
}

/// Steal order is scheduling noise: repeated runs with maximal
/// interleaving (several workers, batch 1, so every event is a separate
/// activation that can be stolen) must produce byte-identical state.
#[test]
fn steal_order_never_affects_results() {
    for trial in 0..4u64 {
        let mut rng = SimRng::new(0x57EA + trial);
        let n = 5 + rng.next_below(3) as usize;
        let until = 3.0;
        let proto = skewed(n, until, &mut rng);
        let edges = ring_edges(n);
        let t_end = SimTime::new(until);
        let mut prints = Vec::new();
        for _rep in 0..6 {
            let ws = run_worksteal_cfg(
                proto.clone(),
                &edges,
                t_end,
                WsConfig {
                    workers: 4,
                    batch: 1,
                    migration_epoch: Some(10),
                },
            );
            prints.push(fingerprint(&ws.lps));
        }
        assert!(
            prints.windows(2).all(|w| w[0] == w[1]),
            "trial {trial}: repeated runs diverged: {prints:x?}"
        );
    }
}

/// Batch size trades fairness for locking overhead but must be invisible
/// in results, including at the extremes.
#[test]
fn batch_size_invisible_in_results() {
    let mut rng = SimRng::new(0xBA7C);
    let n = 6;
    let until = 3.0;
    let proto = skewed(n, until, &mut rng);
    let edges = ring_edges(n);
    let t_end = SimTime::new(until);
    let reference = run_sequential(proto.clone(), &edges, t_end);
    for batch in [1u32, 2, 7, 64, 4096] {
        let ws = run_worksteal_cfg(
            proto.clone(),
            &edges,
            t_end,
            WsConfig {
                workers: 3,
                batch,
                migration_epoch: None,
            },
        );
        assert_eq!(
            fingerprint(&ws.lps),
            fingerprint(&reference.lps),
            "batch={batch} diverged"
        );
    }
}
