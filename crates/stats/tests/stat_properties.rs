//! Property-based tests of the statistics substrate.

use lsds_stats::{mser5_truncation, Dist, Histogram, SimRng, Summary, ZipfTable};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welford summary matches naive two-pass computation.
    #[test]
    fn summary_matches_naive(xs in proptest::collection::vec(-1.0e6..1.0e6f64, 2..500)) {
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let scale = var.abs().max(1.0);
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-6 * scale);
        prop_assert_eq!(s.count(), xs.len() as u64);
    }

    /// Merging any split equals processing the whole stream.
    #[test]
    fn summary_merge_any_split(
        xs in proptest::collection::vec(-1.0e3..1.0e3f64, 2..300),
        split in 0usize..300,
    ) {
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
    }

    /// Exponential samples are positive and deterministic per seed.
    #[test]
    fn exponential_positive_and_deterministic(rate in 0.01..100.0f64, seed in 0u64..1000) {
        let d = Dist::Exponential { rate };
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        for _ in 0..100 {
            let a = d.sample(&mut r1);
            let b = d.sample(&mut r2);
            prop_assert!(a > 0.0);
            prop_assert_eq!(a, b);
        }
    }

    /// Uniform samples stay in range for arbitrary bounds.
    #[test]
    fn uniform_in_range(lo in -1.0e6..1.0e6f64, width in 0.001..1.0e6f64, seed in 0u64..100) {
        let d = Dist::Uniform { lo, hi: lo + width };
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x < lo + width);
        }
    }

    /// Histogram mass accounting: bins + underflow + overflow = count.
    #[test]
    fn histogram_mass_conserved(
        xs in proptest::collection::vec(-10.0..10.0f64, 1..500),
        bins in 1usize..50,
    ) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        for &x in &xs {
            h.add(x);
        }
        let binned: u64 = h.bins().iter().sum();
        prop_assert_eq!(binned + h.underflow() + h.overflow(), h.count());
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// Zipf pmf is a probability distribution for any (n, s).
    #[test]
    fn zipf_pmf_valid(n in 1usize..500, s in 0.0..3.0f64) {
        let z = ZipfTable::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// MSER-5 truncation is bounded: multiple of 5, at most half the data.
    #[test]
    fn mser5_bounds(xs in proptest::collection::vec(-100.0..100.0f64, 0..400)) {
        let cut = mser5_truncation(&xs);
        prop_assert_eq!(cut % 5, 0);
        let batches = xs.len() / 5;
        prop_assert!(cut <= (batches / 2) * 5);
        prop_assert!(cut <= xs.len());
    }

    /// Fork streams never collide with the parent stream.
    #[test]
    fn fork_differs_from_parent(seed in 0u64..10_000, label in 0u64..10_000) {
        let mut parent = SimRng::new(seed);
        let mut fork = parent.fork(label);
        let same = (0..32).filter(|_| parent.next_u64() == fork.next_u64()).count();
        prop_assert!(same < 4);
    }

    /// next_below is always within bounds.
    #[test]
    fn next_below_in_bounds(n in 1u64..1_000_000, seed in 0u64..100) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(n) < n);
        }
    }
}
