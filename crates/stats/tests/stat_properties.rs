//! Randomized tests of the statistics substrate, generated with the
//! deterministic [`SimRng`] (the offline build has no property-testing
//! framework; the properties and case counts match the original suite).

use lsds_stats::{mser5_truncation, Dist, Histogram, SimRng, Summary, ZipfTable};

const TRIALS: u64 = 64;

/// Welford summary matches naive two-pass computation.
#[test]
fn summary_matches_naive() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x57A70 + trial);
        let n = 2 + rng.next_below(498) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0e6, 1.0e6)).collect();
        let mut s = Summary::new();
        for &x in &xs {
            s.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
        let scale = var.abs().max(1.0);
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        assert!((s.variance() - var).abs() < 1e-6 * scale);
        assert_eq!(s.count(), xs.len() as u64);
    }
}

/// Merging any split equals processing the whole stream.
#[test]
fn summary_merge_any_split() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x57A71 + trial);
        let n = 2 + rng.next_below(298) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-1.0e3, 1.0e3)).collect();
        let split = rng.next_below(300) as usize;
        let split = split.min(xs.len());
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..split] {
            a.add(x);
        }
        for &x in &xs[split..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9 * whole.mean().abs().max(1.0));
        assert!((a.variance() - whole.variance()).abs() < 1e-6 * whole.variance().max(1.0));
    }
}

/// Exponential samples are positive and deterministic per seed.
#[test]
fn exponential_positive_and_deterministic() {
    for trial in 0..TRIALS {
        let mut meta = SimRng::new(0x57A72 + trial);
        let rate = meta.range_f64(0.01, 100.0);
        let seed = meta.next_below(1000);
        let d = Dist::Exponential { rate };
        let mut r1 = SimRng::new(seed);
        let mut r2 = SimRng::new(seed);
        for _ in 0..100 {
            let a = d.sample(&mut r1);
            let b = d.sample(&mut r2);
            assert!(a > 0.0);
            assert_eq!(a, b);
        }
    }
}

/// Uniform samples stay in range for arbitrary bounds.
#[test]
fn uniform_in_range() {
    for trial in 0..TRIALS {
        let mut meta = SimRng::new(0x57A73 + trial);
        let lo = meta.range_f64(-1.0e6, 1.0e6);
        let width = meta.range_f64(0.001, 1.0e6);
        let seed = meta.next_below(100);
        let d = Dist::Uniform { lo, hi: lo + width };
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let x = d.sample(&mut rng);
            assert!(x >= lo && x < lo + width);
        }
    }
}

/// Histogram mass accounting: bins + underflow + overflow = count.
#[test]
fn histogram_mass_conserved() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x57A74 + trial);
        let n = 1 + rng.next_below(499) as usize;
        let bins = 1 + rng.next_below(49) as usize;
        let mut h = Histogram::new(-5.0, 5.0, bins);
        for _ in 0..n {
            h.add(rng.range_f64(-10.0, 10.0));
        }
        let binned: u64 = h.bins().iter().sum();
        assert_eq!(binned + h.underflow() + h.overflow(), h.count());
        assert_eq!(h.count(), n as u64);
    }
}

/// Zipf pmf is a probability distribution for any (n, s).
#[test]
fn zipf_pmf_valid() {
    for trial in 0..TRIALS {
        let mut meta = SimRng::new(0x57A75 + trial);
        let n = 1 + meta.next_below(499) as usize;
        let s = meta.range_f64(0.0, 3.0);
        let z = ZipfTable::new(n, s);
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SimRng::new(7);
        for _ in 0..100 {
            assert!(z.sample(&mut rng) < n);
        }
    }
}

/// MSER-5 truncation is bounded: multiple of 5, at most half the data.
#[test]
fn mser5_bounds() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x57A76 + trial);
        let n = rng.next_below(400) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.range_f64(-100.0, 100.0)).collect();
        let cut = mser5_truncation(&xs);
        assert_eq!(cut % 5, 0);
        let batches = xs.len() / 5;
        assert!(cut <= (batches / 2) * 5);
        assert!(cut <= xs.len());
    }
}

/// Fork streams never collide with the parent stream.
#[test]
fn fork_differs_from_parent() {
    for trial in 0..TRIALS {
        let mut meta = SimRng::new(0x57A77 + trial);
        let seed = meta.next_below(10_000);
        let label = meta.next_below(10_000);
        let mut parent = SimRng::new(seed);
        let mut fork = parent.fork(label);
        let same = (0..32)
            .filter(|_| parent.next_u64() == fork.next_u64())
            .count();
        assert!(same < 4);
    }
}

/// next_below is always within bounds.
#[test]
fn next_below_in_bounds() {
    for trial in 0..TRIALS {
        let mut meta = SimRng::new(0x57A78 + trial);
        let n = 1 + meta.next_below(999_999);
        let seed = meta.next_below(100);
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            assert!(rng.next_below(n) < n);
        }
    }
}
