//! Warm-up (initialization-bias) truncation via MSER-5.
//!
//! OptorSim-style studies explicitly target "the stability and transient
//! behavior of replication optimization methods" (§4); separating the
//! transient from the steady state is therefore a first-class output
//! operation. MSER-5 (White, 1997) groups the output series into batches of
//! five and picks the truncation point minimizing the standard error of the
//! remaining data.

/// Returns the truncation index (in raw observations) chosen by MSER-5,
/// i.e. observations `0..index` are the estimated warm-up transient.
///
/// The search is restricted to the first half of the series, the customary
/// safeguard against degenerate all-but-tail truncations.
pub fn mser5_truncation(data: &[f64]) -> usize {
    const B: usize = 5;
    let nb = data.len() / B;
    if nb < 4 {
        return 0;
    }
    let means: Vec<f64> = (0..nb)
        .map(|i| data[i * B..(i + 1) * B].iter().sum::<f64>() / B as f64)
        .collect();
    let mut best_d = 0usize;
    let mut best_stat = f64::INFINITY;
    // candidate truncation: drop the first d batch means, d <= nb/2
    for d in 0..=nb / 2 {
        let rest = &means[d..];
        let n = rest.len() as f64;
        let mean = rest.iter().sum::<f64>() / n;
        let ss: f64 = rest.iter().map(|x| (x - mean) * (x - mean)).sum();
        let stat = ss / (n * n);
        if stat < best_stat {
            best_stat = stat;
            best_d = d;
        }
    }
    best_d * B
}

/// Convenience: returns the steady-state portion of `data` after MSER-5
/// truncation.
pub fn truncate_warmup(data: &[f64]) -> &[f64] {
    &data[mser5_truncation(data)..]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use crate::summary::Summary;

    #[test]
    fn short_series_not_truncated() {
        assert_eq!(mser5_truncation(&[1.0, 2.0, 3.0]), 0);
    }

    #[test]
    fn stationary_series_barely_truncated() {
        let mut rng = SimRng::new(21);
        let data: Vec<f64> = (0..2000).map(|_| rng.next_f64()).collect();
        let cut = mser5_truncation(&data);
        assert!(cut <= data.len() / 4, "cut {cut} too aggressive");
    }

    #[test]
    fn ramp_then_flat_is_cut_near_ramp_end() {
        // transient climbs 0→10 over 200 samples, then stationary noise
        let mut rng = SimRng::new(22);
        let mut data = Vec::new();
        for i in 0..200 {
            data.push(i as f64 / 20.0);
        }
        for _ in 0..1800 {
            data.push(10.0 + rng.range_f64(-0.5, 0.5));
        }
        let cut = mser5_truncation(&data);
        assert!(
            (150..=400).contains(&cut),
            "cut {cut} should fall near end of 200-sample ramp"
        );
        let mut s = Summary::new();
        for &x in truncate_warmup(&data) {
            s.add(x);
        }
        assert!((s.mean() - 10.0).abs() < 0.3, "steady mean {}", s.mean());
    }

    #[test]
    fn truncation_is_multiple_of_batch() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(mser5_truncation(&data) % 5, 0);
    }
}
