//! Probability distributions used by the stochastic simulation models.
//!
//! The set covers what the surveyed simulators draw on: exponential/Poisson
//! arrival processes ("all the stochastic arrival patterns, specific for such
//! type of simulation" — MONARC 2, §4), heavy-tailed file sizes and transfer
//! demands (Pareto, log-normal, Weibull), Zipf popularity for replication
//! studies, and degenerate/deterministic components for the taxonomy's
//! deterministic behavior class.
//!
//! Every variant exposes closed-form `mean`/`variance` so `lsds-queueing`
//! can validate the samplers against analytical queueing results (E11).

use crate::rng::SimRng;

/// A real-valued probability distribution, samplable from a [`SimRng`].
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Point mass at `value` — no randomness (taxonomy: deterministic).
    Deterministic {
        /// The constant returned by every sample.
        value: f64,
    },
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Exponential with rate `rate` (mean `1/rate`).
    Exponential {
        /// Rate parameter λ.
        rate: f64,
    },
    /// Erlang-`k`: sum of `k` i.i.d. exponentials of rate `rate`.
    Erlang {
        /// Number of exponential phases.
        k: u32,
        /// Rate of each phase.
        rate: f64,
    },
    /// Two-phase hyperexponential: rate `r1` w.p. `p`, else rate `r2`.
    HyperExp {
        /// Probability of drawing from the first phase.
        p: f64,
        /// Rate of the first phase.
        r1: f64,
        /// Rate of the second phase.
        r2: f64,
    },
    /// Normal with mean `mu` and standard deviation `sigma`.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// Log-normal: `exp(N(mu, sigma))`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Pareto with scale `xm > 0` and shape `alpha > 0`.
    Pareto {
        /// Scale (minimum value).
        xm: f64,
        /// Tail index; heavier tails for smaller `alpha`.
        alpha: f64,
    },
    /// Weibull with scale `lambda` and shape `k`.
    Weibull {
        /// Scale parameter.
        lambda: f64,
        /// Shape parameter.
        k: f64,
    },
    /// Poisson counting distribution with mean `lambda` (integer-valued).
    Poisson {
        /// Mean event count.
        lambda: f64,
    },
    /// Geometric on `{1, 2, ...}` with success probability `p`.
    Geometric {
        /// Per-trial success probability.
        p: f64,
    },
    /// Bernoulli on `{0, 1}` with success probability `p`.
    Bernoulli {
        /// Success probability.
        p: f64,
    },
}

impl Dist {
    /// Exponential distribution with the given mean.
    pub fn exp_mean(mean: f64) -> Dist {
        assert!(mean > 0.0, "exponential mean must be positive");
        Dist::Exponential { rate: 1.0 / mean }
    }

    /// Constant distribution.
    pub fn constant(value: f64) -> Dist {
        Dist::Deterministic { value }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Dist::Exponential { rate } => -rng.next_open_f64().ln() / rate,
            Dist::Erlang { k, rate } => {
                let mut sum = 0.0;
                for _ in 0..k {
                    sum += -rng.next_open_f64().ln();
                }
                sum / rate
            }
            Dist::HyperExp { p, r1, r2 } => {
                let rate = if rng.chance(p) { r1 } else { r2 };
                -rng.next_open_f64().ln() / rate
            }
            Dist::Normal { mu, sigma } => mu + sigma * sample_standard_normal(rng),
            Dist::LogNormal { mu, sigma } => (mu + sigma * sample_standard_normal(rng)).exp(),
            Dist::Pareto { xm, alpha } => xm / rng.next_open_f64().powf(1.0 / alpha),
            Dist::Weibull { lambda, k } => lambda * (-rng.next_open_f64().ln()).powf(1.0 / k),
            Dist::Poisson { lambda } => sample_poisson(rng, lambda) as f64,
            Dist::Geometric { p } => {
                // inversion: ceil(ln U / ln (1-p)), support {1,2,...}
                (rng.next_open_f64().ln() / (1.0 - p).ln()).ceil().max(1.0)
            }
            Dist::Bernoulli { p } => {
                if rng.chance(p) {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Draws one sample, clamped below at `floor` (useful for strictly
    /// positive service demands when using normal-family distributions).
    pub fn sample_at_least(&self, rng: &mut SimRng, floor: f64) -> f64 {
        self.sample(rng).max(floor)
    }

    /// Theoretical mean.
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Deterministic { value } => value,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Exponential { rate } => 1.0 / rate,
            Dist::Erlang { k, rate } => k as f64 / rate,
            Dist::HyperExp { p, r1, r2 } => p / r1 + (1.0 - p) / r2,
            Dist::Normal { mu, .. } => mu,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Pareto { xm, alpha } => {
                if alpha > 1.0 {
                    alpha * xm / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
            Dist::Weibull { lambda, k } => lambda * gamma_fn(1.0 + 1.0 / k),
            Dist::Poisson { lambda } => lambda,
            Dist::Geometric { p } => 1.0 / p,
            Dist::Bernoulli { p } => p,
        }
    }

    /// Theoretical variance.
    pub fn variance(&self) -> f64 {
        match *self {
            Dist::Deterministic { .. } => 0.0,
            Dist::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
            Dist::Exponential { rate } => 1.0 / (rate * rate),
            Dist::Erlang { k, rate } => k as f64 / (rate * rate),
            Dist::HyperExp { p, r1, r2 } => {
                let m = p / r1 + (1.0 - p) / r2;
                let m2 = 2.0 * (p / (r1 * r1) + (1.0 - p) / (r2 * r2));
                m2 - m * m
            }
            Dist::Normal { sigma, .. } => sigma * sigma,
            Dist::LogNormal { mu, sigma } => {
                let s2 = sigma * sigma;
                (s2.exp() - 1.0) * (2.0 * mu + s2).exp()
            }
            Dist::Pareto { xm, alpha } => {
                if alpha > 2.0 {
                    xm * xm * alpha / ((alpha - 1.0) * (alpha - 1.0) * (alpha - 2.0))
                } else {
                    f64::INFINITY
                }
            }
            Dist::Weibull { lambda, k } => {
                let g1 = gamma_fn(1.0 + 1.0 / k);
                let g2 = gamma_fn(1.0 + 2.0 / k);
                lambda * lambda * (g2 - g1 * g1)
            }
            Dist::Poisson { lambda } => lambda,
            Dist::Geometric { p } => (1.0 - p) / (p * p),
            Dist::Bernoulli { p } => p * (1.0 - p),
        }
    }

    /// Squared coefficient of variation, `Var/Mean²` — the quantity that
    /// enters the Pollaczek–Khinchine formula for M/G/1 validation.
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }
}

/// Standard normal via Marsaglia's polar method.
fn sample_standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = 2.0 * rng.next_f64() - 1.0;
        let v = 2.0 * rng.next_f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * ((-2.0 * s.ln()) / s).sqrt();
        }
    }
}

/// Poisson sampling: Knuth multiplication for small `lambda`, normal
/// approximation (rounded, clamped at 0) above 30 where Knuth underflows.
fn sample_poisson(rng: &mut SimRng, lambda: f64) -> u64 {
    assert!(lambda >= 0.0);
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let x = lambda + lambda.sqrt() * sample_standard_normal(rng);
        x.round().max(0.0) as u64
    }
}

/// Lanczos approximation of the gamma function (g = 7, n = 9 coefficients).
pub fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // reflection formula
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Zipf popularity sampler over ranks `0..n`, built once as a CDF table.
///
/// Rank `i` (0-based) has probability proportional to `1/(i+1)^s`. Used for
/// file-popularity skew in the replication experiments (E7, E8): OptorSim-
/// and ChicagoSim-style studies assume a small set of "hot" files.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the table for `n` ranks with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfTable over empty support");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the support is empty (never: constructor requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("NaN in CDF"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::Summary;

    fn check_moments(d: &Dist, n: usize, tol_mean: f64, tol_sd: f64) {
        let mut rng = SimRng::new(0xD15);
        let mut s = Summary::new();
        for _ in 0..n {
            s.add(d.sample(&mut rng));
        }
        let m = d.mean();
        let sd = d.variance().sqrt();
        assert!(
            (s.mean() - m).abs() <= tol_mean.max(3.0 * sd / (n as f64).sqrt() + 1e-12),
            "{d:?}: sample mean {} vs {}",
            s.mean(),
            m
        );
        if sd.is_finite() && sd > 0.0 {
            assert!(
                (s.std_dev() - sd).abs() / sd < tol_sd,
                "{d:?}: sample sd {} vs {}",
                s.std_dev(),
                sd
            );
        }
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Dist::constant(3.5);
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.5);
        }
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
    }

    #[test]
    fn exponential_moments() {
        check_moments(&Dist::Exponential { rate: 2.0 }, 200_000, 0.01, 0.05);
    }

    #[test]
    fn exp_mean_helper() {
        let d = Dist::exp_mean(4.0);
        assert!((d.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_moments() {
        check_moments(&Dist::Uniform { lo: 2.0, hi: 8.0 }, 100_000, 0.02, 0.05);
    }

    #[test]
    fn erlang_moments() {
        check_moments(&Dist::Erlang { k: 4, rate: 2.0 }, 100_000, 0.02, 0.05);
    }

    #[test]
    fn hyperexp_moments() {
        check_moments(
            &Dist::HyperExp {
                p: 0.3,
                r1: 0.5,
                r2: 5.0,
            },
            200_000,
            0.03,
            0.05,
        );
    }

    #[test]
    fn normal_moments() {
        check_moments(
            &Dist::Normal {
                mu: 10.0,
                sigma: 3.0,
            },
            100_000,
            0.05,
            0.05,
        );
    }

    #[test]
    fn lognormal_moments() {
        check_moments(
            &Dist::LogNormal {
                mu: 0.5,
                sigma: 0.4,
            },
            200_000,
            0.02,
            0.05,
        );
    }

    #[test]
    fn pareto_moments_alpha3() {
        check_moments(
            &Dist::Pareto {
                xm: 1.0,
                alpha: 3.5,
            },
            400_000,
            0.02,
            0.15,
        );
    }

    #[test]
    fn pareto_heavy_tail_infinite_mean() {
        let d = Dist::Pareto {
            xm: 1.0,
            alpha: 0.9,
        };
        assert!(d.mean().is_infinite());
    }

    #[test]
    fn weibull_moments() {
        check_moments(
            &Dist::Weibull {
                lambda: 2.0,
                k: 1.5,
            },
            200_000,
            0.02,
            0.05,
        );
    }

    #[test]
    fn poisson_moments_small_and_large_lambda() {
        check_moments(&Dist::Poisson { lambda: 4.0 }, 100_000, 0.05, 0.05);
        check_moments(&Dist::Poisson { lambda: 80.0 }, 100_000, 0.2, 0.05);
    }

    #[test]
    fn geometric_moments() {
        check_moments(&Dist::Geometric { p: 0.25 }, 200_000, 0.03, 0.05);
    }

    #[test]
    fn bernoulli_moments() {
        check_moments(&Dist::Bernoulli { p: 0.7 }, 100_000, 0.01, 0.05);
    }

    #[test]
    fn positivity_of_positive_distributions() {
        let mut rng = SimRng::new(99);
        for d in [
            Dist::Exponential { rate: 1.0 },
            Dist::Erlang { k: 3, rate: 1.0 },
            Dist::Pareto {
                xm: 2.0,
                alpha: 1.5,
            },
            Dist::Weibull {
                lambda: 1.0,
                k: 0.7,
            },
            Dist::LogNormal {
                mu: 0.0,
                sigma: 1.0,
            },
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut rng) > 0.0, "{d:?} produced non-positive");
            }
        }
    }

    #[test]
    fn scv_of_exponential_is_one() {
        assert!((Dist::Exponential { rate: 3.0 }.scv() - 1.0).abs() < 1e-12);
        assert_eq!(Dist::constant(5.0).scv(), 0.0);
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-8);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_monotone() {
        let z = ZipfTable::new(100, 0.9);
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for i in 1..100 {
            assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_pmf() {
        let z = ZipfTable::new(20, 1.0);
        let mut rng = SimRng::new(123);
        let n = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let emp = c as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: {emp} vs {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn zipf_s0_is_uniform() {
        let z = ZipfTable::new(10, 0.0);
        for i in 0..10 {
            assert!((z.pmf(i) - 0.1).abs() < 1e-12);
        }
    }
}
