//! Seeded, splittable pseudo-random number generator.
//!
//! `SimRng` is xoshiro256++ seeded through splitmix64. It is implemented
//! in-crate (rather than relying on `rand`'s unspecified `StdRng` algorithm)
//! so that simulation results are reproducible across toolchain and
//! dependency upgrades — a requirement for the taxonomy's
//! deterministic-replay property and for regression-testing experiments.
//! It has no external dependencies, so the workspace builds fully offline.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// Two `SimRng`s created with the same seed produce identical streams.
/// Independent substreams for model components are derived with [`fork`],
/// which hashes a stream label into a fresh, statistically independent state;
/// components sampling from their own forks are insensitive to each other's
/// consumption order, which keeps probabilistic models reproducible even when
/// event interleaving changes (e.g. under the parallel engines).
///
/// [`fork`]: SimRng::fork
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // xoshiro256++ must not be seeded with the all-zero state; splitmix64
        // of any seed cannot produce four zero outputs in a row, but guard
        // anyway so the invariant is local.
        debug_assert!(s.iter().any(|&w| w != 0));
        SimRng { s }
    }

    /// Derives an independent substream labelled by `stream`.
    ///
    /// The label is mixed with the parent state through splitmix64, so forks
    /// with different labels (or from different parents) are decorrelated.
    pub fn fork(&self, stream: u64) -> Self {
        let mut sm = self.s[0] ^ self.s[2] ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the open interval `(0, 1)`.
    ///
    /// Useful for inverse-CDF sampling where `ln(0)` must be avoided.
    #[inline]
    pub fn next_open_f64(&mut self) -> f64 {
        loop {
            let u = self.next_f64();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[0, n)` using Lemire's unbiased method.
    #[inline]
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "range_u64: lo > hi");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        assert!(!xs.is_empty(), "choose from empty slice");
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let parent = SimRng::new(7);
        let mut f1 = parent.fork(3);
        let parent2 = SimRng::new(7);
        // consuming the parent after the fork must not change the fork
        let _ = parent2.fork(99);
        let mut f1b = parent2.fork(3);
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f1b.next_u64());
        }
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let parent = SimRng::new(7);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_roughly_uniform() {
        let mut r = SimRng::new(13);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_bounds_and_coverage() {
        let mut r = SimRng::new(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let x = r.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_u64_inclusive() {
        let mut r = SimRng::new(19);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2000 {
            let x = r.range_u64(5, 9);
            assert!((5..=9).contains(&x));
            hit_lo |= x == 5;
            hit_hi |= x == 9;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(29);
        assert!((0..100).all(|_| !r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
