//! Time-weighted averages for piecewise-constant processes.
//!
//! Queue lengths, numbers-in-system, and link utilizations are step
//! functions of simulated time; their long-run averages must weight each
//! value by how long it was held, not by how many times it changed. This is
//! the estimator the queueing-theory validation (E11) compares against
//! analytic `L` and `ρ` values.

/// Tracks the time-average of a piecewise-constant real-valued signal.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: f64,
    last_t: f64,
    last_v: f64,
    area: f64,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking at time `t0` with initial value `v0`.
    pub fn new(t0: f64, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            last_v: v0,
            area: 0.0,
            max: v0,
        }
    }

    /// Records that the signal changed to `v` at time `t` (must be ≥ the
    /// previous update time).
    pub fn update(&mut self, t: f64, v: f64) {
        assert!(
            t >= self.last_t,
            "time-weighted update out of order: {t} < {}",
            self.last_t
        );
        self.area += self.last_v * (t - self.last_t);
        self.last_t = t;
        self.last_v = v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Adds `delta` to the current value at time `t` (convenience for
    /// queue-length style +1/-1 updates).
    pub fn add(&mut self, t: f64, delta: f64) {
        let v = self.last_v + delta;
        self.update(t, v);
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.last_v
    }

    /// Maximum value observed.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-average over `[start, t_end]`.
    pub fn average(&self, t_end: f64) -> f64 {
        assert!(t_end >= self.last_t, "average endpoint before last update");
        let span = t_end - self.start;
        if span <= 0.0 {
            return self.last_v;
        }
        (self.area + self.last_v * (t_end - self.last_t)) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_signal() {
        let w = TimeWeighted::new(0.0, 3.0);
        assert_eq!(w.average(10.0), 3.0);
    }

    #[test]
    fn step_signal() {
        let mut w = TimeWeighted::new(0.0, 0.0);
        w.update(2.0, 1.0); // 0 for [0,2)
        w.update(6.0, 3.0); // 1 for [2,6)
        assert!((w.average(10.0) - (0.0 * 2.0 + 1.0 * 4.0 + 3.0 * 4.0) / 10.0).abs() < 1e-12);
        assert_eq!(w.max(), 3.0);
        assert_eq!(w.value(), 3.0);
    }

    #[test]
    fn add_deltas() {
        let mut w = TimeWeighted::new(0.0, 0.0);
        w.add(1.0, 1.0);
        w.add(2.0, 1.0);
        w.add(3.0, -2.0);
        assert_eq!(w.value(), 0.0);
        // areas: 0*1 + 1*1 + 2*1 = 3 over 4 time units
        assert!((w.average(4.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_span_returns_current() {
        let w = TimeWeighted::new(5.0, 2.0);
        assert_eq!(w.average(5.0), 2.0);
    }

    #[test]
    #[should_panic]
    fn out_of_order_update_panics() {
        let mut w = TimeWeighted::new(0.0, 0.0);
        w.update(2.0, 1.0);
        w.update(1.0, 0.0);
    }
}
