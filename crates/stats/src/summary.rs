//! Streaming sample statistics (Welford's online algorithm) with
//! HDR-style log-bucketed percentiles.

use std::collections::BTreeMap;

/// Sub-buckets per power-of-two octave in the log-bucket histogram: the
/// top 3 mantissa bits split each octave into 8 slices, bounding the
/// relative quantile error at 1/16 (≈ 6%).
const SUB_BUCKETS_LOG2: u32 = 3;
/// Binary exponents are clamped to `[-EXP_CLAMP, EXP_CLAMP)`, covering
/// ~9 decimal orders of magnitude in either direction — nanoseconds to
/// years when observations are in seconds.
const EXP_CLAMP: i32 = 32;

/// Maps a non-negative observation to its log bucket. Bucket 0 collects
/// zero, negative, and NaN observations; every other bucket covers one
/// eighth of a power-of-two octave.
fn bucket_of(x: f64) -> u16 {
    if x.is_nan() || x <= 0.0 {
        return 0;
    }
    let bits = x.to_bits();
    let exp = (((bits >> 52) & 0x7ff) as i32 - 1023).clamp(-EXP_CLAMP, EXP_CLAMP - 1);
    let sub = ((bits >> (52 - SUB_BUCKETS_LOG2)) & ((1 << SUB_BUCKETS_LOG2) - 1)) as i32;
    (((exp + EXP_CLAMP) << SUB_BUCKETS_LOG2) + sub + 1) as u16
}

/// Representative value of a bucket: the midpoint of its range.
fn bucket_value(b: u16) -> f64 {
    if b == 0 {
        return 0.0;
    }
    let idx = (b - 1) as i32;
    let exp = (idx >> SUB_BUCKETS_LOG2) - EXP_CLAMP;
    let sub = (idx & ((1 << SUB_BUCKETS_LOG2) - 1)) as f64;
    let per = (1u32 << SUB_BUCKETS_LOG2) as f64;
    // lower bound 2^exp·(1 + sub/8), width 2^exp/8 → midpoint
    (2.0f64).powi(exp) * (1.0 + (sub + 0.5) / per)
}

/// Running mean/variance/min/max over a stream of observations, plus a
/// sparse log-bucketed histogram for quantile estimates.
///
/// Uses Welford's numerically stable one-pass update, so millions of
/// simulation observations can be summarized without storing them — the
/// output side of the taxonomy's "huge amounts of statistics and events
/// captured" problem. The histogram shares the same stream: each
/// observation lands in one of 8 log-spaced sub-buckets per power-of-two
/// octave (HDR-histogram style), giving [`Summary::percentile`] a bounded
/// ≈6% relative error without storing samples.
#[derive(Debug, Clone)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
    buckets: BTreeMap<u16, u64>,
}

/// Same as [`Summary::new`]. A derived `Default` would zero the min/max
/// sentinels and silently report `min() == 0.0` for any all-positive
/// stream.
impl Default for Summary {
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            buckets: BTreeMap::new(),
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        *self.buckets.entry(bucket_of(x)).or_insert(0) += 1;
    }

    /// Merges another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (&b, &c) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += c;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Two-sided confidence half-width for the mean at the given level.
    ///
    /// Uses the Student-t quantile for small samples and the normal
    /// quantile beyond 30 degrees of freedom.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        if self.n < 2 {
            return f64::INFINITY;
        }
        t_quantile(level, self.n - 1) * self.std_error()
    }

    /// `(lower, upper)` confidence interval for the mean.
    pub fn ci(&self, level: f64) -> (f64, f64) {
        let h = self.ci_half_width(level);
        (self.mean() - h, self.mean() + h)
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`) from the log-bucket histogram.
    ///
    /// The estimate is the representative value of the bucket containing
    /// the `⌈q·n⌉`-th smallest observation, clamped into `[min, max]`
    /// (which are tracked exactly), so the relative error is bounded by
    /// the bucket width: ≈6%. Returns 0 for an empty summary.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (&b, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                let v = bucket_value(b);
                // A stream of only NaN observations leaves min/max at
                // their ±inf sentinels (NaN comparisons are all false),
                // inverting the clamp range — `f64::clamp` panics on
                // min > max, so fall back to the raw bucket value.
                return if self.min <= self.max {
                    v.clamp(self.min, self.max)
                } else {
                    v
                };
            }
        }
        self.max
    }

    /// Median estimate (see [`Summary::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (see [`Summary::percentile`]).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (see [`Summary::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Two-sided Student-t critical value for confidence `level` and `df`
/// degrees of freedom. Table-based for df ≤ 30, normal quantile above.
pub fn t_quantile(level: f64, df: u64) -> f64 {
    // Rows: df 1..=30; columns: 0.90, 0.95, 0.99 two-sided.
    const TABLE: [[f64; 3]; 30] = [
        [6.314, 12.706, 63.657],
        [2.920, 4.303, 9.925],
        [2.353, 3.182, 5.841],
        [2.132, 2.776, 4.604],
        [2.015, 2.571, 4.032],
        [1.943, 2.447, 3.707],
        [1.895, 2.365, 3.499],
        [1.860, 2.306, 3.355],
        [1.833, 2.262, 3.250],
        [1.812, 2.228, 3.169],
        [1.796, 2.201, 3.106],
        [1.782, 2.179, 3.055],
        [1.771, 2.160, 3.012],
        [1.761, 2.145, 2.977],
        [1.753, 2.131, 2.947],
        [1.746, 2.120, 2.921],
        [1.740, 2.110, 2.898],
        [1.734, 2.101, 2.878],
        [1.729, 2.093, 2.861],
        [1.725, 2.086, 2.845],
        [1.721, 2.080, 2.831],
        [1.717, 2.074, 2.819],
        [1.714, 2.069, 2.807],
        [1.711, 2.064, 2.797],
        [1.708, 2.060, 2.787],
        [1.706, 2.056, 2.779],
        [1.703, 2.052, 2.771],
        [1.701, 2.048, 2.763],
        [1.699, 2.045, 2.756],
        [1.697, 2.042, 2.750],
    ];
    let col = if level >= 0.985 {
        2
    } else if level >= 0.925 {
        1
    } else {
        0
    };
    if (1..=30).contains(&df) {
        TABLE[(df - 1) as usize][col]
    } else {
        // normal quantiles for 0.90 / 0.95 / 0.99 two-sided
        [1.645, 1.960, 2.576][col]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance 4 => sample variance 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = Summary::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for &x in &xs[..400] {
            a.add(x);
        }
        for &x in &xs[400..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Summary::new();
        a.add(1.0);
        a.add(3.0);
        let b = Summary::new();
        let before = a.clone();
        a.merge(&b);
        assert_eq!(a.count(), before.count());
        assert_eq!(a.mean(), before.mean());
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e.count(), 2);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ci_contains_true_mean_usually() {
        // 95% CI over repeated experiments should cover the mean ~95% of
        // the time; check it is not wildly off with a fixed-seed stream.
        use crate::rng::SimRng;
        let mut rng = SimRng::new(5);
        let mut covered = 0;
        let reps = 200;
        for _ in 0..reps {
            let mut s = Summary::new();
            for _ in 0..50 {
                s.add(rng.range_f64(0.0, 2.0)); // mean 1.0
            }
            let (lo, hi) = s.ci(0.95);
            if lo <= 1.0 && 1.0 <= hi {
                covered += 1;
            }
        }
        assert!(covered >= 180, "coverage {covered}/200");
    }

    #[test]
    fn t_quantile_monotone_in_level() {
        for df in [1, 5, 10, 29, 100] {
            assert!(t_quantile(0.90, df) < t_quantile(0.95, df));
            assert!(t_quantile(0.95, df) < t_quantile(0.99, df));
        }
    }

    #[test]
    fn percentiles_on_uniform_stream() {
        let mut s = Summary::new();
        for i in 1..=1000 {
            s.add(i as f64);
        }
        // log buckets guarantee ≤ ~6% relative error
        assert!((s.p50() - 500.0).abs() / 500.0 < 0.07, "p50 {}", s.p50());
        assert!((s.p95() - 950.0).abs() / 950.0 < 0.07, "p95 {}", s.p95());
        assert!((s.p99() - 990.0).abs() / 990.0 < 0.07, "p99 {}", s.p99());
        assert!(s.percentile(0.0) >= s.min());
        assert_eq!(s.percentile(1.0).max(s.max()), s.max());
    }

    #[test]
    fn percentiles_empty_and_degenerate() {
        let s = Summary::new();
        assert_eq!(s.p50(), 0.0);
        let mut one = Summary::new();
        one.add(42.0);
        assert_eq!(one.p50(), 42.0); // clamped into [min, max]
        assert_eq!(one.p99(), 42.0);
        let mut z = Summary::new();
        z.add(0.0);
        z.add(0.0);
        assert_eq!(z.p95(), 0.0);
    }

    #[test]
    fn percentile_merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| ((i * 37) % 911) as f64 + 0.5).collect();
        let mut whole = Summary::new();
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.add(x);
            if i % 2 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(q), whole.percentile(q));
        }
    }

    #[test]
    fn bucket_mapping_is_monotone_and_bounded() {
        let mut prev = 0u16;
        let mut x = 1e-9; // stays inside the ±2^32 exponent clamp
        while x < 1e9 {
            let b = super::bucket_of(x);
            assert!(b >= prev, "bucket regressed at {x}");
            prev = b;
            // representative stays within ~6% of any member of the bucket
            let rep = super::bucket_value(b);
            assert!((rep - x).abs() / x < 0.07, "x {x} rep {rep}");
            x *= 1.07;
        }
        assert_eq!(super::bucket_of(-1.0), 0);
        assert_eq!(super::bucket_of(f64::NAN), 0);
        assert_eq!(super::bucket_of(0.0), 0);
    }

    /// Regression (PR 7): an all-NaN stream leaves min/max at their ±inf
    /// sentinels (every NaN comparison is false) while `n > 0`, so the
    /// percentile clamp saw an inverted `[+inf, -inf]` range and
    /// `f64::clamp` panicked. It must return a finite value instead.
    #[test]
    fn percentile_of_all_nan_stream_does_not_panic() {
        let mut s = Summary::new();
        s.add(f64::NAN);
        s.add(f64::NAN);
        assert_eq!(s.p50(), 0.0, "NaN lands in bucket 0");
        assert_eq!(s.p95(), 0.0);
        assert_eq!(s.p99(), 0.0);
    }

    /// NaN mixed into an otherwise-ordinary stream: min/max ignore the
    /// NaN, so the clamp range is valid and percentiles stay finite.
    #[test]
    fn percentile_with_nan_among_samples_stays_finite() {
        let mut s = Summary::new();
        s.add(5.0);
        s.add(f64::NAN);
        s.add(10.0);
        for q in [0.5, 0.95, 0.99] {
            assert!(s.percentile(q).is_finite(), "q={q}");
        }
        assert_eq!(s.min(), 5.0);
        assert_eq!(s.max(), 10.0);
    }

    /// An infinite observation drives max (and the top-rank percentile
    /// fallback) to +inf; the summary itself reports what it saw, and the
    /// snapshot layer (`lsds-obs`) sanitizes for JSON export.
    #[test]
    fn percentile_with_infinite_sample() {
        let mut s = Summary::new();
        s.add(1.0);
        s.add(f64::INFINITY);
        assert!(s.p50().is_finite(), "median is the finite sample");
        assert_eq!(s.max(), f64::INFINITY);
    }

    /// Regression: a derived `Default` zeroed the min/max sentinels, so a
    /// default-constructed summary fed only positive observations reported
    /// `min() == 0.0`.
    #[test]
    fn default_keeps_min_max_sentinels() {
        let mut s = Summary::default();
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        s.add(0.5);
        s.add(2.0);
        assert_eq!(s.min(), 0.5);
        assert_eq!(s.max(), 2.0);
    }
}
