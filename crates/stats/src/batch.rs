//! Batch-means confidence intervals for steady-state simulation output.
//!
//! Successive observations from one simulation run are autocorrelated, so a
//! naive CI over raw observations is too narrow. Batch means groups the
//! stream into `b` consecutive batches, treats batch averages as
//! approximately independent, and builds the CI over those — the standard
//! method the paper's §5 validation discussion presumes ("validation is
//! essentially a statistical problem").

use crate::summary::Summary;

/// Accumulates a stream into fixed-size batches and summarizes batch means.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Summary,
    batches: Summary,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an accumulator with the given observations-per-batch.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Summary::new(),
            batches: Summary::new(),
            batch_means: Vec::new(),
        }
    }

    /// Adds one observation; closes the batch when it is full.
    pub fn add(&mut self, x: f64) {
        self.current.add(x);
        if self.current.count() == self.batch_size {
            let m = self.current.mean();
            self.batches.add(m);
            self.batch_means.push(m);
            self.current = Summary::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches.
    pub fn mean(&self) -> f64 {
        self.batches.mean()
    }

    /// Completed batch means.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Confidence half-width over batch means at `level`.
    pub fn ci_half_width(&self, level: f64) -> f64 {
        self.batches.ci_half_width(level)
    }

    /// Lag-1 autocorrelation of the batch means — a diagnostic that the
    /// batch size is large enough (should be near 0 at steady state).
    pub fn lag1_autocorrelation(&self) -> f64 {
        let n = self.batch_means.len();
        if n < 3 {
            return 0.0;
        }
        let mean = self.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..n {
            let d = self.batch_means[i] - mean;
            den += d * d;
            if i + 1 < n {
                num += d * (self.batch_means[i + 1] - mean);
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn batches_close_at_size() {
        let mut b = BatchMeans::new(10);
        for i in 0..35 {
            b.add(i as f64);
        }
        assert_eq!(b.batches(), 3);
        assert_eq!(b.batch_means().len(), 3);
        assert!((b.batch_means()[0] - 4.5).abs() < 1e-12);
        assert!((b.batch_means()[1] - 14.5).abs() < 1e-12);
    }

    #[test]
    fn iid_stream_grand_mean() {
        let mut rng = SimRng::new(3);
        let mut b = BatchMeans::new(100);
        for _ in 0..100_000 {
            b.add(rng.range_f64(0.0, 1.0));
        }
        assert!((b.mean() - 0.5).abs() < 0.01);
        assert!(b.ci_half_width(0.95) < 0.01);
    }

    #[test]
    fn lag1_autocorrelation_near_zero_for_iid() {
        let mut rng = SimRng::new(9);
        let mut b = BatchMeans::new(50);
        for _ in 0..50_000 {
            b.add(rng.next_f64());
        }
        assert!(b.lag1_autocorrelation().abs() < 0.1);
    }

    #[test]
    fn correlated_stream_has_positive_lag1_with_tiny_batches() {
        // AR(1)-style stream; with batch size 1 batch means inherit the
        // correlation, which the diagnostic should expose.
        let mut rng = SimRng::new(10);
        let mut b = BatchMeans::new(1);
        let mut x = 0.0;
        for _ in 0..5_000 {
            x = 0.95 * x + rng.range_f64(-0.5, 0.5);
            b.add(x);
        }
        assert!(b.lag1_autocorrelation() > 0.5);
    }
}
