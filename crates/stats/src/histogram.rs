//! Fixed-bin histograms with quantile estimation.

/// A histogram over `[lo, hi)` with uniformly sized bins plus underflow and
/// overflow counters. Backs the "visual output analyzer" axis of the
/// taxonomy: simulation outputs are reduced to plottable bin series rather
/// than raw event dumps.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` uniform bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let i = ((x - self.lo) / w) as usize;
            let i = i.min(self.bins.len() - 1);
            self.bins[i] += 1;
        }
    }

    /// Total number of observations, including under/overflow.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Approximate `q`-quantile (`0 < q < 1`) by linear interpolation within
    /// the containing bin. Returns `None` if the histogram is empty or the
    /// quantile falls in the under/overflow mass.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "quantile in (0,1)");
        if self.count == 0 {
            return None;
        }
        let target = q * self.count as f64;
        let mut acc = self.underflow as f64;
        if acc >= target {
            return None; // inside underflow mass
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target {
                let frac = if c == 0 {
                    0.5
                } else {
                    (target - acc) / c as f64
                };
                return Some(self.lo + (i as f64 + frac) * w);
            }
            acc = next;
        }
        None // inside overflow mass
    }

    /// Emits `(bin_center, count)` pairs for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.bins.len())
            .map(|i| (self.bin_center(i), self.bins[i]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_land_in_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9] {
            h.add(x);
        }
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[1], 2);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.add(-0.1);
        h.add(1.0);
        h.add(5.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn quantile_of_uniform_stream() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.add(i as f64 / 10_000.0);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 0.5).abs() < 0.02, "median {med}");
        let p90 = h.quantile(0.9).unwrap();
        assert!((p90 - 0.9).abs() < 0.02, "p90 {p90}");
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn series_matches_bins() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add(0.5);
        h.add(2.5);
        let s = h.series();
        assert_eq!(s.len(), 4);
        assert_eq!(s[0], (0.5, 1));
        assert_eq!(s[2], (2.5, 1));
    }
}
