//! Deterministic random numbers, probability distributions, and streaming
//! statistics for large scale distributed systems simulation.
//!
//! The paper's taxonomy (§3) distinguishes *deterministic* from
//! *probabilistic* simulation behavior: "repeating the same simulation will
//! always return the same simulation results". Everything stochastic in the
//! `lsds` workspace draws from [`SimRng`], a self-contained xoshiro256++
//! generator whose output is fully specified by its seed, so a probabilistic
//! model re-run with the same seed is bit-for-bit reproducible — and a model
//! built only from [`Dist::Deterministic`] components is deterministic in the
//! taxonomy's stronger sense of having no random events at all.
//!
//! Distributions are implemented here, from scratch, rather than imported:
//! the paper's §5 validation trend ("the formalism provided by the queuing
//! models is important for the definition and validation of the simulation
//! stochastic models") requires numerics we can audit against closed-form
//! queueing results, which `lsds-queueing` does in experiment E11.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod dist;
pub mod histogram;
pub mod rng;
pub mod summary;
pub mod timeweighted;
pub mod warmup;

pub use batch::BatchMeans;
pub use dist::{Dist, ZipfTable};
pub use histogram::Histogram;
pub use rng::SimRng;
pub use summary::Summary;
pub use timeweighted::TimeWeighted;
pub use warmup::mser5_truncation;
