//! `lsds-bench` — experiment harnesses regenerating every exhibit.
//!
//! One binary per experiment (see DESIGN.md §3 and EXPERIMENTS.md):
//!
//! | binary | experiment |
//! |---|---|
//! | `table1` | E1 — the paper's Table 1 |
//! | `exp_queues` | E2 — event-list structures |
//! | `exp_advance` | E3 — event- vs time-driven advance |
//! | `exp_parallel` | E4 — centralized vs distributed execution |
//! | `exp_simgrid` | E5 — SimGrid analytic validation |
//! | `exp_lhc` | E6 — MONARC T0/T1 replication study |
//! | `exp_replication` | E7 — OptorSim pull strategies |
//! | `exp_pushpull` | E8 — push vs pull replication |
//! | `exp_economy` | E9 — GridSim deadline/budget economy |
//! | `exp_models` | E10 — central vs tier organization |
//! | `exp_queueing` | E11 — queueing-theory validation |
//! | `exp_mapping` | E12 — job→context mapping schemes |
//! | `exp_granularity` | E13 — packet- vs flow-level networks |
//!
//! Benches (`benches/`) measure the wall-clock side of E2, E3, E4, E12
//! and E13 on the in-tree Criterion-compatible [`harness`] (the offline
//! build has no external bench framework).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod harness;
pub mod workloads;

pub use harness::{black_box, Bencher, BenchmarkGroup, BenchmarkId, Criterion, Throughput};
pub use workloads::*;
