//! Shared workload drivers used by both the experiment binaries and the
//! Criterion benches, so measured numbers and printed tables come from
//! the same code paths.

use lsds_core::process::{Action, MappingScheme, ProcessEngine};
use lsds_core::{
    Ctx, EventDriven, EventQueue, Model, QueueKind, ScheduledEvent, SimTime, TimeDriven,
};
use lsds_stats::{Dist, SimRng};
use std::time::Instant;

/// The classic *hold model* for event-list benchmarking: keep `size`
/// events pending; repeatedly pop the minimum and insert a replacement a
/// random increment in the future. Returns wall seconds for `ops`
/// hold operations.
pub fn hold_model(kind: QueueKind, size: usize, ops: u64, increment: &Dist, seed: u64) -> f64 {
    let mut q = kind.build::<u64>();
    let mut rng = SimRng::new(seed);
    let mut seq = 0u64;
    for _ in 0..size {
        let t = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(SimTime::new(t), seq, seq));
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..ops {
        let ev = q.pop_min().expect("hold model never drains");
        let dt = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(ev.time.after(dt), seq, seq));
        seq += 1;
    }
    start.elapsed().as_secs_f64()
}

/// A sparse-event model: `n_sources` periodic sources with period
/// `period`, simulated to `horizon`. Used by E3 to compare advance
/// mechanisms at varying event density.
pub struct SparseModel {
    /// Sources re-arm themselves with this period.
    pub period: f64,
    /// Events handled.
    pub handled: u64,
}

impl Model for SparseModel {
    type Event = u32;
    fn handle(&mut self, src: u32, ctx: &mut Ctx<'_, u32>) {
        self.handled += 1;
        ctx.schedule_in(self.period, src);
    }
}

/// Runs the sparse model on the event-driven engine; returns
/// `(events, ticks = 0, wall seconds)`.
pub fn run_event_driven(n_sources: u32, period: f64, horizon: f64) -> (u64, u64, f64) {
    let mut sim = EventDriven::new(SparseModel { period, handled: 0 });
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// Runs the sparse model on the time-driven engine with step `dt`;
/// returns `(events, ticks, wall seconds)`.
pub fn run_time_driven(n_sources: u32, period: f64, horizon: f64, dt: f64) -> (u64, u64, f64) {
    let mut sim = TimeDriven::new(SparseModel { period, handled: 0 }, dt);
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// E12 job workload: `jobs` multi-phase jobs arriving over `spread`
/// seconds, each holding `phases` times. Returns
/// `(allocations, reuses, peak_live, wall seconds)`.
pub fn mapping_workload(
    scheme: MappingScheme,
    jobs: u64,
    phases: u32,
    spread: f64,
    seed: u64,
) -> (u64, u64, u64, f64) {
    let mut rng = SimRng::new(seed);
    let mut sim = ProcessEngine::new(scheme);
    for _ in 0..jobs {
        let at = rng.range_f64(0.0, spread);
        let mut left = phases;
        let hold = rng.range_f64(0.5, 2.0);
        sim.spawn_at(SimTime::new(at), move |_now: SimTime| {
            if left == 0 {
                Action::Done
            } else {
                left -= 1;
                Action::Hold(hold)
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let cs = sim.context_stats();
    assert_eq!(sim.stats().completed, jobs);
    (cs.allocations, cs.reuses, cs.peak_live, wall)
}

/// A queue-churn model that keeps an event list at a controlled size
/// while running on a real engine (used by Criterion's E2 macro bench).
pub struct ChurnModel {
    /// Inter-event increment distribution.
    pub increment: Dist,
    /// RNG.
    pub rng: SimRng,
    /// Stop after this many events.
    pub limit: u64,
    /// Events handled.
    pub handled: u64,
}

impl Model for ChurnModel {
    type Event = ();
    fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
        self.handled += 1;
        if self.handled >= self.limit {
            ctx.stop();
            return;
        }
        let dt = self.increment.sample(&mut self.rng).abs();
        ctx.schedule_in(dt, ());
    }
}

/// Runs `events` churn events over a queue of `size` pending events.
pub fn churn_run(kind: QueueKind, size: usize, events: u64, seed: u64) -> u64 {
    let model = ChurnModel {
        increment: Dist::Exponential { rate: 1.0 },
        rng: SimRng::new(seed),
        limit: events,
        handled: 0,
    };
    let mut sim = EventDriven::with_queue(model, kind.build::<()>());
    for _ in 0..size {
        sim.schedule(SimTime::ZERO, ());
    }
    sim.run();
    sim.model().handled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_model_runs_all_kinds() {
        for kind in QueueKind::ALL {
            let wall = hold_model(kind, 100, 1000, &Dist::Exponential { rate: 1.0 }, 1);
            assert!(wall >= 0.0);
        }
    }

    #[test]
    fn advance_mechanisms_agree_on_event_count() {
        let (ev_e, ticks_e, _) = run_event_driven(4, 10.0, 1000.0);
        let (ev_t, ticks_t, _) = run_time_driven(4, 10.0, 1000.0, 0.1);
        // quantization shifts each source's phase by up to one step, so
        // the horizon may cut one event per source
        assert!(
            ev_e.abs_diff(ev_t) <= 4,
            "event-driven {ev_e} vs time-driven {ev_t}"
        );
        assert_eq!(ticks_e, 0);
        assert!(ticks_t >= 10_000, "time-driven pays per tick: {ticks_t}");
    }

    #[test]
    fn mapping_workload_counts() {
        let (alloc_per_job, ..) = mapping_workload(MappingScheme::PerJob, 50, 3, 100.0, 2);
        let (alloc_pooled, reuses, ..) = mapping_workload(MappingScheme::Pooled, 50, 3, 100.0, 2);
        assert_eq!(alloc_per_job, 50);
        assert!(alloc_pooled < 50);
        assert!(reuses > 0);
    }

    #[test]
    fn churn_counts_events() {
        assert_eq!(churn_run(QueueKind::Calendar, 64, 5_000, 3), 5_000);
    }
}
