//! Shared workload drivers used by both the experiment binaries and the
//! Criterion benches, so measured numbers and printed tables come from
//! the same code paths.

use lsds_core::process::{Action, MappingScheme, ProcessEngine};
use lsds_core::{
    Ctx, EventDriven, EventQueue, Model, QueueKind, ScheduledEvent, SimTime, TimeDriven,
};
use lsds_net::{
    mbps, poisson_link_outages, FlowEvent, FlowNet, LinkFault, LinkId, NodeId, NodeKind, ShareMode,
    Topology,
};
use lsds_obs::{NoopTracer, RingTracer, SpanKind, SpanTrace, TraceConfig, Tracer};
use lsds_stats::{Dist, SimRng};
use std::time::Instant;

/// The classic *hold model* for event-list benchmarking: keep `size`
/// events pending; repeatedly pop the minimum and insert a replacement a
/// random increment in the future. Returns wall seconds for `ops`
/// hold operations.
pub fn hold_model(kind: QueueKind, size: usize, ops: u64, increment: &Dist, seed: u64) -> f64 {
    let mut q = kind.build::<u64>();
    let mut rng = SimRng::new(seed);
    let mut seq = 0u64;
    for _ in 0..size {
        let t = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(SimTime::new(t), seq, seq));
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..ops {
        let ev = q.pop_min().expect("hold model never drains");
        let dt = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(ev.time.after(dt), seq, seq));
        seq += 1;
    }
    start.elapsed().as_secs_f64()
}

/// A sparse-event model: `n_sources` periodic sources with period
/// `period`, simulated to `horizon`. Used by E3 to compare advance
/// mechanisms at varying event density.
pub struct SparseModel {
    /// Sources re-arm themselves with this period.
    pub period: f64,
    /// Events handled.
    pub handled: u64,
}

impl Model for SparseModel {
    type Event = u32;
    fn handle(&mut self, src: u32, ctx: &mut Ctx<'_, u32>) {
        self.handled += 1;
        ctx.schedule_in(self.period, src);
    }
}

/// Runs the sparse model on the event-driven engine; returns
/// `(events, ticks = 0, wall seconds)`.
pub fn run_event_driven(n_sources: u32, period: f64, horizon: f64) -> (u64, u64, f64) {
    let mut sim = EventDriven::new(SparseModel { period, handled: 0 });
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// Runs the sparse model on the time-driven engine with step `dt`;
/// returns `(events, ticks, wall seconds)`.
pub fn run_time_driven(n_sources: u32, period: f64, horizon: f64, dt: f64) -> (u64, u64, f64) {
    let mut sim = TimeDriven::new(SparseModel { period, handled: 0 }, dt);
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// E12 job workload: `jobs` multi-phase jobs arriving over `spread`
/// seconds, each holding `phases` times. Returns
/// `(allocations, reuses, peak_live, wall seconds)`.
pub fn mapping_workload(
    scheme: MappingScheme,
    jobs: u64,
    phases: u32,
    spread: f64,
    seed: u64,
) -> (u64, u64, u64, f64) {
    let mut rng = SimRng::new(seed);
    let mut sim = ProcessEngine::new(scheme);
    for _ in 0..jobs {
        let at = rng.range_f64(0.0, spread);
        let mut left = phases;
        let hold = rng.range_f64(0.5, 2.0);
        sim.spawn_at(SimTime::new(at), move |_now: SimTime| {
            if left == 0 {
                Action::Done
            } else {
                left -= 1;
                Action::Hold(hold)
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let cs = sim.context_stats();
    assert_eq!(sim.stats().completed, jobs);
    (cs.allocations, cs.reuses, cs.peak_live, wall)
}

/// A queue-churn model that keeps an event list at a controlled size
/// while running on a real engine (used by Criterion's E2 macro bench).
pub struct ChurnModel {
    /// Inter-event increment distribution.
    pub increment: Dist,
    /// RNG.
    pub rng: SimRng,
    /// Stop after this many events.
    pub limit: u64,
    /// Events handled.
    pub handled: u64,
}

impl Model for ChurnModel {
    type Event = ();
    fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
        self.handled += 1;
        if self.handled >= self.limit {
            ctx.stop();
            return;
        }
        let dt = self.increment.sample(&mut self.rng).abs();
        ctx.schedule_in(dt, ());
    }
}

/// Runs `events` churn events over a queue of `size` pending events.
pub fn churn_run(kind: QueueKind, size: usize, events: u64, seed: u64) -> u64 {
    let model = ChurnModel {
        increment: Dist::Exponential { rate: 1.0 },
        rng: SimRng::new(seed),
        limit: events,
        handled: 0,
    };
    let mut sim = EventDriven::with_queue(model, kind.build::<()>());
    for _ in 0..size {
        sim.schedule(SimTime::ZERO, ());
    }
    sim.run();
    sim.model().handled
}

/// Outcome of one [`run_flow_sharing`] run: the completion fingerprint
/// (for bit-identity checks between share modes) plus the scope counters
/// that quantify how much work each reshare strategy did.
pub struct FlowSharingResult {
    /// `(tag, finished-time bits)` per completed transfer, completion order.
    pub completions: Vec<(u64, u64)>,
    /// Transfers aborted by link outages.
    pub aborted: u64,
    /// Fair-share recomputations performed.
    pub reshare_count: u64,
    /// Cumulative links visited across reshares.
    pub links_touched: u64,
    /// Cumulative flows visited across reshares.
    pub flows_touched: u64,
    /// Pairwise route-cache hits.
    pub route_cache_hits: u64,
    /// Pairwise route-cache misses.
    pub route_cache_misses: u64,
}

/// `(arrival, src, dst, bytes)` per planned transfer.
type FlowPlan = Vec<(f64, NodeId, NodeId, f64)>;
/// `(at, fault)` per scheduled link fault.
type FaultPlan = Vec<(f64, LinkFault)>;

struct FlowModel {
    net: FlowNet,
    plan: FlowPlan,
    completions: Vec<(u64, u64)>,
}

enum FlowEv {
    Kick(usize),
    Fault(LinkFault),
    Net(FlowEvent),
}

impl Model for FlowModel {
    type Event = FlowEv;

    fn trace_kind(&self, ev: &FlowEv) -> SpanKind {
        match ev {
            FlowEv::Kick(i) => SpanKind::tagged("bench.kick", *i as u64),
            FlowEv::Fault(_) => SpanKind::new("net.fault"),
            FlowEv::Net(fe) => fe.span_kind(),
        }
    }

    fn handle(&mut self, ev: FlowEv, ctx: &mut Ctx<'_, FlowEv>) {
        match ev {
            FlowEv::Kick(i) => {
                let (_, s, d, b) = self.plan[i];
                // a transfer can race an outage and lose its only route;
                // dropping it keeps the workload meaningful under faults
                let _ = self
                    .net
                    .try_start(s, d, b, i as u64, &mut ctx.map(FlowEv::Net));
            }
            FlowEv::Fault(f) => {
                self.net.apply_fault(f, &mut ctx.map(FlowEv::Net));
            }
            FlowEv::Net(fe) => {
                for done in self.net.handle(fe, &mut ctx.map(FlowEv::Net)) {
                    self.completions
                        .push((done.tag, done.finished.seconds().to_bits()));
                }
            }
        }
    }
}

/// The flow-sharing workload behind `benches/flow_sharing.rs` and
/// `exp_flownet` (→ `BENCH_flownet.json`): `n_flows` bulk transfers over
/// `pairs` disjoint duplex host pairs, arrivals staggered so the target
/// concurrency is actually reached, sizes drawn so completions keep
/// triggering reshares throughout. With `faults`, seeded Poisson outages
/// knock links down and back up mid-run. Returns the completion
/// fingerprint and scope counters, so callers can both time the run and
/// verify that [`ShareMode::Full`] and [`ShareMode::Incremental`]
/// trajectories are bit-identical.
///
/// Disjoint pairs are the favourable case for the incremental engine
/// (many small components); see [`run_flow_sharing_dumbbell`] for the
/// adversarial single-component case.
pub fn run_flow_sharing(
    pairs: usize,
    n_flows: usize,
    mode: ShareMode,
    faults: bool,
    seed: u64,
) -> FlowSharingResult {
    let (topo, plan, fault_plan) = flow_sharing_setup(pairs, n_flows, faults, seed);
    run_flow_model(topo, mode, plan, fault_plan)
}

/// [`run_flow_sharing`] with causal tracing enabled: same workload, same
/// trajectory (the tracer only observes), plus the span trace. The
/// `trace_overhead` bench and `exp_trace` compare its wall time against
/// the untraced run to price the instrumentation.
pub fn run_flow_sharing_traced(
    pairs: usize,
    n_flows: usize,
    mode: ShareMode,
    faults: bool,
    seed: u64,
    cfg: TraceConfig,
) -> (FlowSharingResult, SpanTrace) {
    let (topo, plan, fault_plan) = flow_sharing_setup(pairs, n_flows, faults, seed);
    let (result, tracer) = run_flow_model_with(topo, mode, plan, fault_plan, RingTracer::new(cfg));
    (result, tracer.finish())
}

fn flow_sharing_setup(
    pairs: usize,
    n_flows: usize,
    faults: bool,
    seed: u64,
) -> (Topology, FlowPlan, FaultPlan) {
    let mut topo = Topology::new();
    let mut endpoints = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let a = topo.add_node(NodeKind::Host, format!("a{p}"));
        let b = topo.add_node(NodeKind::Host, format!("b{p}"));
        topo.add_duplex(a, b, mbps(100.0), 0.001);
        endpoints.push((a, b));
    }
    let mut rng = SimRng::new(seed);
    // all arrivals land inside [0, 10) while transfers take ~40–100 s, so
    // n_flows genuinely overlap before the first completions arrive
    let plan: FlowPlan = (0..n_flows)
        .map(|i| {
            let (a, b) = endpoints[i % pairs];
            let t = rng.range_f64(0.0, 10.0);
            let bytes =
                rng.range_f64(2.0e7, 8.0e7) * (n_flows as f64 / pairs as f64).max(1.0) / 16.0;
            (t, a, b, bytes)
        })
        .collect();
    let fault_plan = if faults {
        let links: Vec<LinkId> = (0..topo.link_count()).step_by(5).map(LinkId).collect();
        poisson_link_outages(&mut rng.fork(11), &links, 120.0, 40.0, 5.0)
    } else {
        Vec::new()
    };
    (topo, plan, fault_plan)
}

/// Adversarial counterpart of [`run_flow_sharing`]: a dumbbell where
/// every transfer crosses the one shared middle link, so the link↔flow
/// graph is a single connected component and the incremental engine
/// cannot shrink the scope. `exp_flownet` reports this case alongside
/// the favourable one so the baseline states where the optimization does
/// *not* help.
pub fn run_flow_sharing_dumbbell(
    hosts: usize,
    n_flows: usize,
    mode: ShareMode,
    seed: u64,
) -> FlowSharingResult {
    let mut topo = Topology::new();
    let h1 = topo.add_node(NodeKind::Router, "h1");
    let h2 = topo.add_node(NodeKind::Router, "h2");
    topo.add_duplex(h1, h2, mbps(400.0), 0.001);
    let mut left = Vec::with_capacity(hosts);
    let mut right = Vec::with_capacity(hosts);
    for i in 0..hosts {
        let a = topo.add_node(NodeKind::Host, format!("a{i}"));
        let b = topo.add_node(NodeKind::Host, format!("b{i}"));
        topo.add_duplex(a, h1, mbps(100.0), 0.001);
        topo.add_duplex(h2, b, mbps(100.0), 0.001);
        left.push(a);
        right.push(b);
    }
    let mut rng = SimRng::new(seed);
    let plan: FlowPlan = (0..n_flows)
        .map(|i| {
            let t = rng.range_f64(0.0, 10.0);
            let bytes = rng.range_f64(2.0e6, 8.0e6) * (n_flows as f64 / hosts as f64).max(1.0);
            (t, left[i % hosts], right[(i + 1) % hosts], bytes)
        })
        .collect();
    run_flow_model(topo, mode, plan, Vec::new())
}

fn run_flow_model(
    topo: Topology,
    mode: ShareMode,
    plan: FlowPlan,
    faults: FaultPlan,
) -> FlowSharingResult {
    let (result, _tracer) = run_flow_model_with(topo, mode, plan, faults, NoopTracer);
    result
}

fn run_flow_model_with<T: Tracer>(
    topo: Topology,
    mode: ShareMode,
    plan: FlowPlan,
    faults: FaultPlan,
    tracer: T,
) -> (FlowSharingResult, T) {
    let mut net = FlowNet::new(topo);
    net.set_share_mode(mode);
    let mut sim = EventDriven::new(FlowModel {
        net,
        plan: plan.clone(),
        completions: Vec::new(),
    })
    .with_tracer(tracer);
    for (i, &(t, ..)) in plan.iter().enumerate() {
        sim.schedule(SimTime::new(t), FlowEv::Kick(i));
    }
    for &(t, f) in &faults {
        sim.schedule(SimTime::new(t), FlowEv::Fault(f));
    }
    sim.run();
    let (m, tracer) = sim.into_model_and_tracer();
    assert_eq!(m.net.in_flight(), 0, "flow-sharing workload must drain");
    let (route_cache_hits, route_cache_misses) = m.net.route_cache_stats();
    (
        FlowSharingResult {
            completions: m.completions,
            aborted: m.net.aborted(),
            reshare_count: m.net.reshare_count(),
            links_touched: m.net.links_touched(),
            flows_touched: m.net.flows_touched(),
            route_cache_hits,
            route_cache_misses,
        },
        tracer,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_model_runs_all_kinds() {
        for kind in QueueKind::ALL {
            let wall = hold_model(kind, 100, 1000, &Dist::Exponential { rate: 1.0 }, 1);
            assert!(wall >= 0.0);
        }
    }

    #[test]
    fn advance_mechanisms_agree_on_event_count() {
        let (ev_e, ticks_e, _) = run_event_driven(4, 10.0, 1000.0);
        let (ev_t, ticks_t, _) = run_time_driven(4, 10.0, 1000.0, 0.1);
        // quantization shifts each source's phase by up to one step, so
        // the horizon may cut one event per source
        assert!(
            ev_e.abs_diff(ev_t) <= 4,
            "event-driven {ev_e} vs time-driven {ev_t}"
        );
        assert_eq!(ticks_e, 0);
        assert!(ticks_t >= 10_000, "time-driven pays per tick: {ticks_t}");
    }

    #[test]
    fn mapping_workload_counts() {
        let (alloc_per_job, ..) = mapping_workload(MappingScheme::PerJob, 50, 3, 100.0, 2);
        let (alloc_pooled, reuses, ..) = mapping_workload(MappingScheme::Pooled, 50, 3, 100.0, 2);
        assert_eq!(alloc_per_job, 50);
        assert!(alloc_pooled < 50);
        assert!(reuses > 0);
    }

    #[test]
    fn churn_counts_events() {
        assert_eq!(churn_run(QueueKind::Calendar, 64, 5_000, 3), 5_000);
    }

    #[test]
    fn flow_sharing_modes_agree_and_incremental_shrinks_scope() {
        let full = run_flow_sharing(8, 64, ShareMode::Full, false, 42);
        let inc = run_flow_sharing(8, 64, ShareMode::Incremental, false, 42);
        assert_eq!(full.completions, inc.completions, "trajectory diverged");
        assert_eq!(full.reshare_count, inc.reshare_count);
        assert!(inc.flows_touched < full.flows_touched);
        assert!(inc.route_cache_hits > 0);
    }

    #[test]
    fn flow_sharing_faulty_modes_agree() {
        let full = run_flow_sharing(8, 64, ShareMode::Full, true, 7);
        let inc = run_flow_sharing(8, 64, ShareMode::Incremental, true, 7);
        assert_eq!(full.completions, inc.completions);
        assert_eq!(full.aborted, inc.aborted);
    }

    #[test]
    fn flow_sharing_dumbbell_is_one_component() {
        let r = run_flow_sharing_dumbbell(6, 48, ShareMode::Incremental, 5);
        let f = run_flow_sharing_dumbbell(6, 48, ShareMode::Full, 5);
        assert_eq!(r.completions, f.completions);
        // single shared component: the incremental engine touches just as
        // many flows as the full recompute
        assert_eq!(r.flows_touched, f.flows_touched);
    }
}
