//! Shared workload drivers used by both the experiment binaries and the
//! Criterion benches, so measured numbers and printed tables come from
//! the same code paths.

use lsds_core::process::{Action, MappingScheme, ProcessEngine};
use lsds_core::{
    Ctx, EventDriven, EventQueue, Model, QueueKind, ScheduledEvent, SimTime, TimeDriven,
};
use lsds_net::{
    mbps, poisson_link_outages, FlowEvent, FlowNet, LinkFault, LinkId, NodeId, NodeKind, ShareMode,
    Topology,
};
use lsds_obs::{NoopTracer, RingTracer, SpanKind, SpanTrace, TraceConfig, Tracer};
use lsds_stats::{Dist, SimRng};
use std::time::Instant;

/// The classic *hold model* for event-list benchmarking: keep `size`
/// events pending; repeatedly pop the minimum and insert a replacement a
/// random increment in the future. Returns wall seconds for `ops`
/// hold operations.
pub fn hold_model(kind: QueueKind, size: usize, ops: u64, increment: &Dist, seed: u64) -> f64 {
    let mut q = kind.build::<u64>();
    let mut rng = SimRng::new(seed);
    let mut seq = 0u64;
    for _ in 0..size {
        let t = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(SimTime::new(t), seq, seq));
        seq += 1;
    }
    let start = Instant::now();
    for _ in 0..ops {
        let ev = q.pop_min().expect("hold model never drains");
        let dt = increment.sample(&mut rng).abs();
        q.insert(ScheduledEvent::new(ev.time.after(dt), seq, seq));
        seq += 1;
    }
    start.elapsed().as_secs_f64()
}

/// A sparse-event model: `n_sources` periodic sources with period
/// `period`, simulated to `horizon`. Used by E3 to compare advance
/// mechanisms at varying event density.
pub struct SparseModel {
    /// Sources re-arm themselves with this period.
    pub period: f64,
    /// Events handled.
    pub handled: u64,
}

impl Model for SparseModel {
    type Event = u32;
    fn handle(&mut self, src: u32, ctx: &mut Ctx<'_, u32>) {
        self.handled += 1;
        ctx.schedule_in(self.period, src);
    }
}

/// Runs the sparse model on the event-driven engine; returns
/// `(events, ticks = 0, wall seconds)`.
pub fn run_event_driven(n_sources: u32, period: f64, horizon: f64) -> (u64, u64, f64) {
    let mut sim = EventDriven::new(SparseModel { period, handled: 0 });
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// Runs the sparse model on the time-driven engine with step `dt`;
/// returns `(events, ticks, wall seconds)`.
pub fn run_time_driven(n_sources: u32, period: f64, horizon: f64, dt: f64) -> (u64, u64, f64) {
    let mut sim = TimeDriven::new(SparseModel { period, handled: 0 }, dt);
    for s in 0..n_sources {
        sim.schedule(SimTime::ZERO, s);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, stats.ticks, start.elapsed().as_secs_f64())
}

/// E12 job workload: `jobs` multi-phase jobs arriving over `spread`
/// seconds, each holding `phases` times. Returns
/// `(allocations, reuses, peak_live, wall seconds)`.
pub fn mapping_workload(
    scheme: MappingScheme,
    jobs: u64,
    phases: u32,
    spread: f64,
    seed: u64,
) -> (u64, u64, u64, f64) {
    let mut rng = SimRng::new(seed);
    let mut sim = ProcessEngine::new(scheme);
    for _ in 0..jobs {
        let at = rng.range_f64(0.0, spread);
        let mut left = phases;
        let hold = rng.range_f64(0.5, 2.0);
        sim.spawn_at(SimTime::new(at), move |_now: SimTime| {
            if left == 0 {
                Action::Done
            } else {
                left -= 1;
                Action::Hold(hold)
            }
        });
    }
    let start = Instant::now();
    sim.run();
    let wall = start.elapsed().as_secs_f64();
    let cs = sim.context_stats();
    assert_eq!(sim.stats().completed, jobs);
    (cs.allocations, cs.reuses, cs.peak_live, wall)
}

/// A queue-churn model that keeps an event list at a controlled size
/// while running on a real engine (used by Criterion's E2 macro bench).
pub struct ChurnModel {
    /// Inter-event increment distribution.
    pub increment: Dist,
    /// RNG.
    pub rng: SimRng,
    /// Stop after this many events.
    pub limit: u64,
    /// Events handled.
    pub handled: u64,
}

impl Model for ChurnModel {
    type Event = ();
    fn handle(&mut self, _: (), ctx: &mut Ctx<'_, ()>) {
        self.handled += 1;
        if self.handled >= self.limit {
            ctx.stop();
            return;
        }
        let dt = self.increment.sample(&mut self.rng).abs();
        ctx.schedule_in(dt, ());
    }
}

/// Runs `events` churn events over a queue of `size` pending events.
pub fn churn_run(kind: QueueKind, size: usize, events: u64, seed: u64) -> u64 {
    let model = ChurnModel {
        increment: Dist::Exponential { rate: 1.0 },
        rng: SimRng::new(seed),
        limit: events,
        handled: 0,
    };
    let mut sim = EventDriven::with_queue(model, kind.build::<()>());
    for _ in 0..size {
        sim.schedule(SimTime::ZERO, ());
    }
    sim.run();
    sim.model().handled
}

/// Outcome of one [`run_flow_sharing`] run: the completion fingerprint
/// (for bit-identity checks between share modes) plus the scope counters
/// that quantify how much work each reshare strategy did.
pub struct FlowSharingResult {
    /// `(tag, finished-time bits)` per completed transfer, completion order.
    pub completions: Vec<(u64, u64)>,
    /// Transfers aborted by link outages.
    pub aborted: u64,
    /// Fair-share recomputations performed.
    pub reshare_count: u64,
    /// Cumulative links visited across reshares.
    pub links_touched: u64,
    /// Cumulative flows visited across reshares.
    pub flows_touched: u64,
    /// Pairwise route-cache hits.
    pub route_cache_hits: u64,
    /// Pairwise route-cache misses.
    pub route_cache_misses: u64,
}

/// `(arrival, src, dst, bytes)` per planned transfer.
type FlowPlan = Vec<(f64, NodeId, NodeId, f64)>;
/// `(at, fault)` per scheduled link fault.
type FaultPlan = Vec<(f64, LinkFault)>;

struct FlowModel {
    net: FlowNet,
    plan: FlowPlan,
    completions: Vec<(u64, u64)>,
}

enum FlowEv {
    Kick(usize),
    Fault(LinkFault),
    Net(FlowEvent),
}

impl Model for FlowModel {
    type Event = FlowEv;

    fn trace_kind(&self, ev: &FlowEv) -> SpanKind {
        match ev {
            FlowEv::Kick(i) => SpanKind::tagged("bench.kick", *i as u64),
            FlowEv::Fault(_) => SpanKind::new("net.fault"),
            FlowEv::Net(fe) => fe.span_kind(),
        }
    }

    fn handle(&mut self, ev: FlowEv, ctx: &mut Ctx<'_, FlowEv>) {
        match ev {
            FlowEv::Kick(i) => {
                let (_, s, d, b) = self.plan[i];
                // a transfer can race an outage and lose its only route;
                // dropping it keeps the workload meaningful under faults
                let _ = self
                    .net
                    .try_start(s, d, b, i as u64, &mut ctx.map(FlowEv::Net));
            }
            FlowEv::Fault(f) => {
                self.net.apply_fault(f, &mut ctx.map(FlowEv::Net));
            }
            FlowEv::Net(fe) => {
                for done in self.net.handle(fe, &mut ctx.map(FlowEv::Net)) {
                    self.completions
                        .push((done.tag, done.finished.seconds().to_bits()));
                }
            }
        }
    }
}

/// The flow-sharing workload behind `benches/flow_sharing.rs` and
/// `exp_flownet` (→ `BENCH_flownet.json`): `n_flows` bulk transfers over
/// `pairs` disjoint duplex host pairs, arrivals staggered so the target
/// concurrency is actually reached, sizes drawn so completions keep
/// triggering reshares throughout. With `faults`, seeded Poisson outages
/// knock links down and back up mid-run. Returns the completion
/// fingerprint and scope counters, so callers can both time the run and
/// verify that [`ShareMode::Full`] and [`ShareMode::Incremental`]
/// trajectories are bit-identical.
///
/// Disjoint pairs are the favourable case for the incremental engine
/// (many small components); see [`run_flow_sharing_dumbbell`] for the
/// adversarial single-component case.
pub fn run_flow_sharing(
    pairs: usize,
    n_flows: usize,
    mode: ShareMode,
    faults: bool,
    seed: u64,
) -> FlowSharingResult {
    let (topo, plan, fault_plan) = flow_sharing_setup(pairs, n_flows, faults, seed);
    run_flow_model(topo, mode, plan, fault_plan)
}

/// [`run_flow_sharing`] with causal tracing enabled: same workload, same
/// trajectory (the tracer only observes), plus the span trace. The
/// `trace_overhead` bench and `exp_trace` compare its wall time against
/// the untraced run to price the instrumentation.
pub fn run_flow_sharing_traced(
    pairs: usize,
    n_flows: usize,
    mode: ShareMode,
    faults: bool,
    seed: u64,
    cfg: TraceConfig,
) -> (FlowSharingResult, SpanTrace) {
    let (topo, plan, fault_plan) = flow_sharing_setup(pairs, n_flows, faults, seed);
    let (result, tracer) = run_flow_model_with(topo, mode, plan, fault_plan, RingTracer::new(cfg));
    (result, tracer.finish())
}

fn flow_sharing_setup(
    pairs: usize,
    n_flows: usize,
    faults: bool,
    seed: u64,
) -> (Topology, FlowPlan, FaultPlan) {
    let mut topo = Topology::new();
    let mut endpoints = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let a = topo.add_node(NodeKind::Host, format!("a{p}"));
        let b = topo.add_node(NodeKind::Host, format!("b{p}"));
        topo.add_duplex(a, b, mbps(100.0), 0.001);
        endpoints.push((a, b));
    }
    let mut rng = SimRng::new(seed);
    // all arrivals land inside [0, 10) while transfers take ~40–100 s, so
    // n_flows genuinely overlap before the first completions arrive
    let plan: FlowPlan = (0..n_flows)
        .map(|i| {
            let (a, b) = endpoints[i % pairs];
            let t = rng.range_f64(0.0, 10.0);
            let bytes =
                rng.range_f64(2.0e7, 8.0e7) * (n_flows as f64 / pairs as f64).max(1.0) / 16.0;
            (t, a, b, bytes)
        })
        .collect();
    let fault_plan = if faults {
        let links: Vec<LinkId> = (0..topo.link_count()).step_by(5).map(LinkId).collect();
        poisson_link_outages(&mut rng.fork(11), &links, 120.0, 40.0, 5.0)
    } else {
        Vec::new()
    };
    (topo, plan, fault_plan)
}

/// Adversarial counterpart of [`run_flow_sharing`]: a dumbbell where
/// every transfer crosses the one shared middle link, so the link↔flow
/// graph is a single connected component and the incremental engine
/// cannot shrink the scope. `exp_flownet` reports this case alongside
/// the favourable one so the baseline states where the optimization does
/// *not* help.
pub fn run_flow_sharing_dumbbell(
    hosts: usize,
    n_flows: usize,
    mode: ShareMode,
    seed: u64,
) -> FlowSharingResult {
    let mut topo = Topology::new();
    let h1 = topo.add_node(NodeKind::Router, "h1");
    let h2 = topo.add_node(NodeKind::Router, "h2");
    topo.add_duplex(h1, h2, mbps(400.0), 0.001);
    let mut left = Vec::with_capacity(hosts);
    let mut right = Vec::with_capacity(hosts);
    for i in 0..hosts {
        let a = topo.add_node(NodeKind::Host, format!("a{i}"));
        let b = topo.add_node(NodeKind::Host, format!("b{i}"));
        topo.add_duplex(a, h1, mbps(100.0), 0.001);
        topo.add_duplex(h2, b, mbps(100.0), 0.001);
        left.push(a);
        right.push(b);
    }
    let mut rng = SimRng::new(seed);
    let plan: FlowPlan = (0..n_flows)
        .map(|i| {
            let t = rng.range_f64(0.0, 10.0);
            let bytes = rng.range_f64(2.0e6, 8.0e6) * (n_flows as f64 / hosts as f64).max(1.0);
            (t, left[i % hosts], right[(i + 1) % hosts], bytes)
        })
        .collect();
    run_flow_model(topo, mode, plan, Vec::new())
}

fn run_flow_model(
    topo: Topology,
    mode: ShareMode,
    plan: FlowPlan,
    faults: FaultPlan,
) -> FlowSharingResult {
    let (result, _tracer) = run_flow_model_with(topo, mode, plan, faults, NoopTracer);
    result
}

fn run_flow_model_with<T: Tracer>(
    topo: Topology,
    mode: ShareMode,
    plan: FlowPlan,
    faults: FaultPlan,
    tracer: T,
) -> (FlowSharingResult, T) {
    let mut net = FlowNet::new(topo);
    net.set_share_mode(mode);
    let mut sim = EventDriven::new(FlowModel {
        net,
        plan: plan.clone(),
        completions: Vec::new(),
    })
    .with_tracer(tracer);
    for (i, &(t, ..)) in plan.iter().enumerate() {
        sim.schedule(SimTime::new(t), FlowEv::Kick(i));
    }
    for &(t, f) in &faults {
        sim.schedule(SimTime::new(t), FlowEv::Fault(f));
    }
    sim.run();
    let (m, tracer) = sim.into_model_and_tracer();
    assert_eq!(m.net.in_flight(), 0, "flow-sharing workload must drain");
    let (route_cache_hits, route_cache_misses) = m.net.route_cache_stats();
    (
        FlowSharingResult {
            completions: m.completions,
            aborted: m.net.aborted(),
            reshare_count: m.net.reshare_count(),
            links_touched: m.net.links_touched(),
            flows_touched: m.net.flows_touched(),
            route_cache_hits,
            route_cache_misses,
        },
        tracer,
    )
}

/// Outcome of one [`run_net_scale`] run: enough to check cross-variant
/// agreement (fingerprint) and to compute throughput (events / wall).
pub struct ScaleResult {
    /// Transfers completed (must equal `pairs * per_pair`).
    pub completions: u64,
    /// Order-sensitive rolling hash over `(tag, finished-time bits)` —
    /// identical across queue structures on the same engine.
    pub fingerprint: u64,
    /// Events the engine delivered.
    pub events: u64,
    /// Wall-clock seconds for the run (excluding topology setup).
    pub wall: f64,
    /// Modeled entities: nodes + links in the topology.
    pub entities: usize,
}

/// Sliding-window transfer generator over disjoint duplex host pairs.
///
/// Each pair runs `per_pair` sequential transfers; at most `window` pairs
/// are active at once, and a pair finishing its quota activates the next
/// inactive pair. This keeps the pending-event set ~`window` (so even the
/// O(n)-insert sorted list survives a million jobs) while every entity in
/// the topology eventually participates — the scale profile the paper's
/// §5 describes: huge modeled system, bounded simulator working set.
struct ScaleModel {
    net: FlowNet,
    endpoints: Vec<(NodeId, NodeId)>,
    remaining: Vec<u32>,
    next_pair: usize,
    rng: SimRng,
    completions: u64,
    fingerprint: u64,
    /// Reused completion buffer: the per-event `FlowNet` call is
    /// allocation-free in steady state.
    done: Vec<lsds_net::FlowDone>,
}

/// Event alphabet of the scale scenario (public so callers can build a
/// queue of the right payload type, e.g. `QueueKind::build::<ScaleEv>()`).
pub enum ScaleEv {
    /// Start the next transfer for this pair.
    Kick(u32),
    /// Internal FlowNet event.
    Net(FlowEvent),
}

fn fold_fingerprint(acc: u64, tag: u64, bits: u64) -> u64 {
    acc.wrapping_mul(0x100000001b3)
        .wrapping_add(tag)
        .wrapping_mul(0x100000001b3)
        .wrapping_add(bits)
}

impl ScaleModel {
    fn kick(&mut self, p: u32, ctx: &mut Ctx<'_, ScaleEv>) {
        let (a, b) = self.endpoints[p as usize];
        let bytes = self.rng.range_f64(5.0e5, 2.0e6);
        // disjoint pairs: the only way to lose the route is a fault, and
        // this workload injects none, so the start must succeed
        let started = self
            .net
            .try_start(a, b, bytes, p as u64, &mut ctx.map(ScaleEv::Net));
        assert!(started.is_ok(), "scale workload transfer failed to route");
    }
}

impl Model for ScaleModel {
    type Event = ScaleEv;

    fn trace_kind(&self, ev: &ScaleEv) -> SpanKind {
        match ev {
            ScaleEv::Kick(p) => SpanKind::tagged("scale.kick", *p as u64),
            ScaleEv::Net(fe) => fe.span_kind(),
        }
    }

    fn handle(&mut self, ev: ScaleEv, ctx: &mut Ctx<'_, ScaleEv>) {
        match ev {
            ScaleEv::Kick(p) => self.kick(p, ctx),
            ScaleEv::Net(fe) => {
                let mut done_buf = std::mem::take(&mut self.done);
                self.net
                    .handle_into(fe, &mut ctx.map(ScaleEv::Net), &mut done_buf);
                for done in done_buf.drain(..) {
                    self.completions += 1;
                    self.fingerprint = fold_fingerprint(
                        self.fingerprint,
                        done.tag,
                        done.finished.seconds().to_bits(),
                    );
                    let p = done.tag as u32;
                    self.remaining[p as usize] -= 1;
                    if self.remaining[p as usize] > 0 {
                        let gap = self.rng.range_f64(0.01, 0.5);
                        ctx.schedule_in(gap, ScaleEv::Kick(p));
                    } else if self.next_pair < self.endpoints.len() {
                        let np = self.next_pair as u32;
                        self.next_pair += 1;
                        let gap = self.rng.range_f64(0.01, 0.5);
                        ctx.schedule_in(gap, ScaleEv::Kick(np));
                    }
                }
                self.done = done_buf;
            }
        }
    }
}

fn scale_model(pairs: usize, per_pair: u32, window: usize, seed: u64) -> (ScaleModel, usize) {
    let mut topo = Topology::new();
    let mut endpoints = Vec::with_capacity(pairs);
    for p in 0..pairs {
        let a = topo.add_node(NodeKind::Host, format!("a{p}"));
        let b = topo.add_node(NodeKind::Host, format!("b{p}"));
        topo.add_duplex(a, b, mbps(100.0), 0.001);
        endpoints.push((a, b));
    }
    let entities = topo.node_count() + topo.link_count();
    let mut net = FlowNet::new(topo);
    net.set_share_mode(ShareMode::Incremental);
    let window = window.min(pairs);
    (
        ScaleModel {
            net,
            endpoints,
            remaining: vec![per_pair; pairs],
            next_pair: window,
            rng: SimRng::new(seed),
            completions: 0,
            fingerprint: 0,
            done: Vec::new(),
        },
        entities,
    )
}

fn scale_result(m: &ScaleModel, events: u64, wall: f64, entities: usize) -> ScaleResult {
    assert_eq!(m.net.in_flight(), 0, "scale workload must drain");
    ScaleResult {
        completions: m.completions,
        fingerprint: m.fingerprint,
        events,
        wall,
        entities,
    }
}

/// Runs the sliding-window transfer scenario (`pairs * per_pair` jobs over
/// `2*pairs` hosts and `2*pairs` links) on the event-driven engine with
/// the given event-list structure. See [`ScaleResult`].
pub fn run_net_scale(
    pairs: usize,
    per_pair: u32,
    window: usize,
    queue: impl EventQueue<ScaleEv>,
    seed: u64,
) -> ScaleResult {
    let (model, entities) = scale_model(pairs, per_pair, window, seed);
    let n_endpoints = model.endpoints.len().min(window.max(1));
    let mut sim = EventDriven::with_queue(model, queue);
    for p in 0..n_endpoints {
        sim.schedule(SimTime::new(p as f64 * 1.0e-3), ScaleEv::Kick(p as u32));
    }
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    scale_result(sim.model(), stats.events, wall, entities)
}

/// [`run_net_scale`] on the time-driven engine with step `dt` (event
/// delivery quantized to tick boundaries, so the trajectory legitimately
/// differs from the event-driven one).
pub fn run_net_scale_time_driven(
    pairs: usize,
    per_pair: u32,
    window: usize,
    dt: f64,
    seed: u64,
) -> ScaleResult {
    let (model, entities) = scale_model(pairs, per_pair, window, seed);
    let n_endpoints = model.endpoints.len().min(window.max(1));
    let total = pairs as u64 * per_pair as u64;
    let mut sim = TimeDriven::new(model, dt);
    for p in 0..n_endpoints {
        sim.schedule(SimTime::new(p as f64 * 1.0e-3), ScaleEv::Kick(p as u32));
    }
    let start = Instant::now();
    while sim.model().completions < total && sim.tick() {
        assert!(
            sim.pending() > 0 || sim.model().completions >= total,
            "time-driven scale run wedged with no pending events"
        );
    }
    let wall = start.elapsed().as_secs_f64();
    scale_result(sim.model(), sim.processed(), wall, entities)
}

/// [`run_net_scale`] with the metrics recorder attached: exercises the
/// monitored engine path (handler output staged in a side buffer, then
/// drained with a queue-op hook per insert) rather than the unmonitored
/// direct-insert path. The trajectory must match the unmonitored run
/// bit-for-bit — asserted by the bit-identity tests below.
pub fn run_net_scale_monitored(
    pairs: usize,
    per_pair: u32,
    window: usize,
    queue: impl EventQueue<ScaleEv>,
    seed: u64,
) -> ScaleResult {
    let (model, entities) = scale_model(pairs, per_pair, window, seed);
    let n_endpoints = model.endpoints.len().min(window.max(1));
    let mut sim = EventDriven::with_parts(model, queue, lsds_obs::MetricsRecorder::new());
    for p in 0..n_endpoints {
        sim.schedule(SimTime::new(p as f64 * 1.0e-3), ScaleEv::Kick(p as u32));
    }
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    scale_result(sim.model(), stats.events, wall, entities)
}

/// [`run_net_scale`] with causal tracing, for per-handler-kind profiles.
pub fn run_net_scale_traced(
    pairs: usize,
    per_pair: u32,
    window: usize,
    queue: impl EventQueue<ScaleEv>,
    seed: u64,
    cfg: TraceConfig,
) -> (ScaleResult, SpanTrace) {
    let (model, entities) = scale_model(pairs, per_pair, window, seed);
    let n_endpoints = model.endpoints.len().min(window.max(1));
    let mut sim = EventDriven::with_queue(model, queue).with_tracer(RingTracer::new(cfg));
    for p in 0..n_endpoints {
        sim.schedule(SimTime::new(p as f64 * 1.0e-3), ScaleEv::Kick(p as u32));
    }
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    let result = scale_result(sim.model(), stats.events, wall, entities);
    let (_, tracer) = sim.into_model_and_tracer();
    (result, tracer.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_model_runs_all_kinds() {
        for kind in QueueKind::ALL {
            let wall = hold_model(kind, 100, 1000, &Dist::Exponential { rate: 1.0 }, 1);
            assert!(wall >= 0.0);
        }
    }

    #[test]
    fn advance_mechanisms_agree_on_event_count() {
        let (ev_e, ticks_e, _) = run_event_driven(4, 10.0, 1000.0);
        let (ev_t, ticks_t, _) = run_time_driven(4, 10.0, 1000.0, 0.1);
        // quantization shifts each source's phase by up to one step, so
        // the horizon may cut one event per source
        assert!(
            ev_e.abs_diff(ev_t) <= 4,
            "event-driven {ev_e} vs time-driven {ev_t}"
        );
        assert_eq!(ticks_e, 0);
        assert!(ticks_t >= 10_000, "time-driven pays per tick: {ticks_t}");
    }

    #[test]
    fn mapping_workload_counts() {
        let (alloc_per_job, ..) = mapping_workload(MappingScheme::PerJob, 50, 3, 100.0, 2);
        let (alloc_pooled, reuses, ..) = mapping_workload(MappingScheme::Pooled, 50, 3, 100.0, 2);
        assert_eq!(alloc_per_job, 50);
        assert!(alloc_pooled < 50);
        assert!(reuses > 0);
    }

    #[test]
    fn churn_counts_events() {
        assert_eq!(churn_run(QueueKind::Calendar, 64, 5_000, 3), 5_000);
    }

    #[test]
    fn scale_trajectory_identity_across_storage_and_instrumentation() {
        // one scenario, every storage/instrumentation combination: the
        // trajectory fingerprint must be identical for plain vs pooled
        // event storage (all four structures), traced vs untraced, and
        // monitored vs unmonitored delivery
        let (pairs, per_pair, window, seed) = (48, 6, 16, 9);
        let base = run_net_scale(pairs, per_pair, window, QueueKind::BinaryHeap.build(), seed);
        assert_eq!(base.completions, pairs as u64 * per_pair as u64);
        for kind in QueueKind::ALL {
            let plain = run_net_scale(pairs, per_pair, window, kind.build(), seed);
            let pooled = run_net_scale(pairs, per_pair, window, kind.build_pooled(), seed);
            assert_eq!(
                plain.fingerprint, base.fingerprint,
                "{kind:?} plain diverged"
            );
            assert_eq!(
                pooled.fingerprint, base.fingerprint,
                "{kind:?} pooled storage diverged"
            );
        }
        let (traced, spans) = run_net_scale_traced(
            pairs,
            per_pair,
            window,
            QueueKind::BinaryHeap.build_pooled(),
            seed,
            TraceConfig::default(),
        );
        assert_eq!(
            traced.fingerprint, base.fingerprint,
            "tracing changed the trajectory"
        );
        assert!(!spans.spans.is_empty(), "traced run must capture spans");
        let mon = run_net_scale_monitored(
            pairs,
            per_pair,
            window,
            QueueKind::BinaryHeap.build_pooled(),
            seed,
        );
        assert_eq!(
            mon.fingerprint, base.fingerprint,
            "monitoring changed the trajectory"
        );
    }

    #[test]
    fn flow_sharing_modes_agree_and_incremental_shrinks_scope() {
        let full = run_flow_sharing(8, 64, ShareMode::Full, false, 42);
        let inc = run_flow_sharing(8, 64, ShareMode::Incremental, false, 42);
        assert_eq!(full.completions, inc.completions, "trajectory diverged");
        assert_eq!(full.reshare_count, inc.reshare_count);
        assert!(inc.flows_touched < full.flows_touched);
        assert!(inc.route_cache_hits > 0);
    }

    #[test]
    fn flow_sharing_faulty_modes_agree() {
        let full = run_flow_sharing(8, 64, ShareMode::Full, true, 7);
        let inc = run_flow_sharing(8, 64, ShareMode::Incremental, true, 7);
        assert_eq!(full.completions, inc.completions);
        assert_eq!(full.aborted, inc.aborted);
    }

    #[test]
    fn flow_sharing_dumbbell_is_one_component() {
        let r = run_flow_sharing_dumbbell(6, 48, ShareMode::Incremental, 5);
        let f = run_flow_sharing_dumbbell(6, 48, ShareMode::Full, 5);
        assert_eq!(r.completions, f.completions);
        // single shared component: the incremental engine touches just as
        // many flows as the full recompute
        assert_eq!(r.flows_touched, f.flows_touched);
    }
}
