//! E3 — event-driven vs time-driven advance.
//!
//! "An event-driven DES is more efficient than a time-driven DES since it
//! does not step through regular time intervals when no event occurs."
//! (§3) — the sweep varies event density (sources × period) at a fixed
//! tick resolution and shows where the fixed-increment engine's per-tick
//! cost dominates, and where dense events amortize it.

use lsds_bench::{run_event_driven, run_time_driven};
use lsds_trace::TextTable;

fn main() {
    let horizon = 1000.0;
    let dt = 0.01;
    println!("E3 — advance mechanisms: horizon {horizon} s, tick {dt} s\n");
    let mut table = TextTable::with_columns(&[
        "sources",
        "period (s)",
        "events",
        "ticks",
        "event-driven (ms)",
        "time-driven (ms)",
        "slowdown",
    ]);
    for &(sources, period) in &[
        (1u32, 100.0f64), // very sparse
        (4, 10.0),
        (16, 1.0),
        (64, 0.1),
        (256, 0.02), // denser than the tick
    ] {
        let (ev_e, _, wall_e) = run_event_driven(sources, period, horizon);
        let (_ev_t, ticks, wall_t) = run_time_driven(sources, period, horizon, dt);
        table.row(vec![
            format!("{sources}"),
            format!("{period}"),
            format!("{ev_e}"),
            format!("{ticks}"),
            format!("{:.2}", wall_e * 1e3),
            format!("{:.2}", wall_t * 1e3),
            format!("{:.1}x", wall_t / wall_e.max(1e-9)),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: sparse events → the time-driven engine burns its {} empty\n\
         ticks and loses badly; as density approaches one event per tick the\n\
         gap closes. (Delivery times also quantize to the tick — a fidelity\n\
         cost E13 quantifies on the network side.)",
        (horizon / dt) as u64
    );
}
