//! E12 — job→execution-context mapping schemes.
//!
//! "Reusing threads, using advanced mapping schemes in which multiple
//! jobs can be simulated running in the same thread context, or any other
//! aspect considered in this direction can yield higher simulation
//! performances." (§3)
//!
//! The workload spawns many short multi-phase jobs (MONARC-style active
//! objects); the schemes differ in how execution contexts (16 KiB
//! stand-ins for thread stacks) are allocated, reused, or shared.

use lsds_bench::mapping_workload;
use lsds_core::process::MappingScheme;
use lsds_trace::TextTable;

fn main() {
    println!("E12 — job→context mapping (multi-phase jobs, 16 KiB contexts)\n");
    for &(jobs, spread) in &[(5_000u64, 500.0f64), (20_000, 2_000.0), (50_000, 5_000.0)] {
        println!("{jobs} jobs over {spread} simulated seconds:");
        let mut table = TextTable::with_columns(&[
            "scheme",
            "contexts allocated",
            "reuses",
            "peak live",
            "wall (ms)",
        ]);
        for scheme in [
            MappingScheme::PerJob,
            MappingScheme::Pooled,
            MappingScheme::Batched {
                jobs_per_context: 8,
            },
        ] {
            let (alloc, reuses, peak, wall) = mapping_workload(scheme, jobs, 4, spread, 7);
            table.row(vec![
                scheme.name(),
                format!("{alloc}"),
                format!("{reuses}"),
                format!("{peak}"),
                format!("{:.1}", wall * 1e3),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "Reading: per-job allocation pays one context (and its page faults)\n\
         per job; pooling caps allocations at the peak concurrency; batching\n\
         shares contexts below even that — the paper's 'higher simulation\n\
         performances' from mapping schemes."
    );
}
