//! E2 — event-list structures under the hold model.
//!
//! The paper: "A system using an O(1) structure for the event list will
//! behave better than another one using an O(log n) queuing structure …
//! There is not a single unanimity accepted queuing structure that
//! performs best when modeling distributed systems, they all tend to
//! behave different depending on various parameters." (§3)
//!
//! The experiment sweeps the pending-set size across four structures and
//! two event-time distributions (well-behaved exponential vs adversarial
//! bimodal), reporting nanoseconds per hold operation.

use lsds_bench::hold_model;
use lsds_core::QueueKind;
use lsds_stats::Dist;
use lsds_trace::TextTable;

fn sweep(name: &str, increment: &Dist, sizes: &[usize], ops: u64) {
    println!("\nincrement distribution: {name}");
    let mut table = TextTable::with_columns(&[
        "pending events",
        "binary-heap (ns/op)",
        "sorted-list (ns/op)",
        "calendar (ns/op)",
        "ladder (ns/op)",
    ]);
    for &size in sizes {
        // the sorted list is O(n): cap its ops so the sweep finishes
        let mut cells = vec![format!("{size}")];
        for kind in QueueKind::ALL {
            let kind_ops = if kind == QueueKind::SortedList && size > 10_000 {
                ops / 50
            } else {
                ops
            };
            let wall = hold_model(kind, size, kind_ops, increment, 42);
            cells.push(format!("{:.0}", wall * 1e9 / kind_ops as f64));
        }
        table.row(cells);
    }
    print!("{}", table.render());
}

fn main() {
    println!(
        "E2 — event-queue structures, hold model ({} ops/point)",
        200_000
    );
    let sizes = [100, 1_000, 10_000, 100_000];
    sweep(
        "exponential (mean 1) — the friendly case",
        &Dist::Exponential { rate: 1.0 },
        &sizes,
        200_000,
    );
    sweep(
        "bimodal (99% near 0.01, 1% at 100) — calendar-adversarial",
        &Dist::HyperExp {
            p: 0.99,
            r1: 100.0,
            r2: 0.01,
        },
        &sizes,
        200_000,
    );
    println!(
        "\nReading: the O(1) structures win at scale on friendly increments;\n\
         skew narrows (or flips) the gap — exactly the paper's caveat."
    );
}
