//! `exp_trace` — machine-readable baseline for the causal-tracing layer.
//!
//! Runs the 1000-flow sharing workload three ways — untraced
//! (`NoopTracer`), fully traced, and 1-in-16 sampled — asserting the
//! traced runs are bit-identical to the untraced one before recording the
//! wall-time overhead ratios. Exports the full trace as Chrome
//! trace-event JSON (`exp_trace.trace.json`), reloads it through the
//! in-tree parser, and validates the viewer-required fields, so CI's
//! trace smoke check exercises the whole export path. Writes
//! `BENCH_trace.json`; `--smoke` shrinks sizes and repetitions for CI.

use lsds_bench::{run_flow_sharing, run_flow_sharing_traced};
use lsds_net::ShareMode;
use lsds_obs::TraceConfig;
use lsds_trace::{validate_chrome_trace, write_chrome_trace, Json, TextTable};
use std::time::Instant;

const SEED: u64 = 0x7ACE;

/// Median wall-seconds over `reps` runs of `f`, plus the last result.
fn timed<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut walls = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        walls.push(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    walls.sort_by(f64::total_cmp);
    let Some(result) = out else {
        unreachable!("reps >= 1");
    };
    (walls[walls.len() / 2], result)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n = if smoke { 100 } else { 1000 };
    let reps = if smoke { 2 } else { 5 };
    let pairs = (n / 16).clamp(1, 64);
    let mode = ShareMode::Incremental;

    let (wall_plain, plain) = timed(reps, || run_flow_sharing(pairs, n, mode, false, SEED));
    let (wall_full, (full, trace)) = timed(reps, || {
        run_flow_sharing_traced(pairs, n, mode, false, SEED, TraceConfig::default())
    });
    let (wall_sampled, (sampled, strace)) = timed(reps, || {
        run_flow_sharing_traced(
            pairs,
            n,
            mode,
            false,
            SEED,
            TraceConfig::default().sampled(16),
        )
    });

    // tracing must only observe: every fingerprint identical
    assert_eq!(
        plain.completions, full.completions,
        "full tracing changed the trajectory"
    );
    assert_eq!(
        plain.completions, sampled.completions,
        "sampled tracing changed the trajectory"
    );
    assert_eq!(plain.reshare_count, full.reshare_count);
    assert_eq!(plain.reshare_count, sampled.reshare_count);
    assert!(!trace.is_empty(), "full trace recorded no spans");
    assert!(
        strace.len() < trace.len(),
        "sampling must record fewer spans"
    );

    let overhead_full = wall_full / wall_plain;
    let overhead_sampled = wall_sampled / wall_plain;
    let path = trace.critical_path();

    // export → reload → validate: the CI trace smoke check
    let trace_file = "exp_trace.trace.json";
    let mut buf = Vec::new();
    write_chrome_trace(&trace, &mut buf).expect("render chrome trace");
    std::fs::write(trace_file, &buf).expect("write exp_trace.trace.json");
    let reloaded = std::fs::read_to_string(trace_file).expect("reload trace");
    let slices = validate_chrome_trace(&reloaded).expect("chrome trace must validate");
    assert_eq!(slices, trace.len(), "exported slice count mismatch");
    assert!(slices > 0, "trace export must contain spans");

    let mut table = TextTable::with_columns(&["variant", "wall (s)", "overhead", "spans"]);
    table.row(vec![
        "untraced".into(),
        format!("{wall_plain:.4}"),
        "1.00x".into(),
        "-".into(),
    ]);
    table.row(vec![
        "traced (full)".into(),
        format!("{wall_full:.4}"),
        format!("{overhead_full:.2}x"),
        trace.len().to_string(),
    ]);
    table.row(vec![
        "traced (1/16)".into(),
        format!("{wall_sampled:.4}"),
        format!("{overhead_sampled:.2}x"),
        strace.len().to_string(),
    ]);
    println!("E-trace — causal tracing overhead on the {n}-flow workload");
    println!("(all variants verified bit-identical to the untraced run)");
    println!("{}", table.render());
    println!(
        "critical path: {} events over {:.1} s virtual time ({} spans exported to {trace_file})",
        path.steps.len(),
        path.makespan,
        slices
    );

    let doc = Json::Obj(vec![
        ("experiment".into(), Json::Str("trace_overhead".into())),
        ("seed".into(), Json::Num(SEED as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("n_flows".into(), Json::Num(n as f64)),
        ("wall_untraced_s".into(), Json::Num(wall_plain)),
        ("wall_traced_full_s".into(), Json::Num(wall_full)),
        ("wall_traced_sampled16_s".into(), Json::Num(wall_sampled)),
        ("overhead_full".into(), Json::Num(overhead_full)),
        ("overhead_sampled16".into(), Json::Num(overhead_sampled)),
        ("bit_identical".into(), Json::Bool(true)),
        ("spans_full".into(), Json::Num(trace.len() as f64)),
        ("spans_sampled16".into(), Json::Num(strace.len() as f64)),
        ("spans_dropped".into(), Json::Num(trace.dropped as f64)),
        (
            "critical_path_events".into(),
            Json::Num(path.steps.len() as f64),
        ),
        ("critical_path_vt_s".into(), Json::Num(path.makespan)),
        ("chrome_trace_slices".into(), Json::Num(slices as f64)),
    ]);
    let out = "BENCH_trace.json";
    std::fs::write(out, doc.render_pretty() + "\n").expect("write BENCH_trace.json");
    println!("wrote {out}");
}
