//! `exp_flownet` — machine-readable perf baseline for FlowNet's
//! incremental max-min fair-share engine.
//!
//! Runs the `flow_sharing` workload (disjoint pairs — many small
//! components, the favourable case) at 10/100/1000 concurrent flows,
//! with and without Poisson link outages, under both [`ShareMode::Full`]
//! and [`ShareMode::Incremental`]; plus the adversarial single-component
//! dumbbell where the incremental engine cannot shrink the scope. Every
//! scenario checks the two modes produce bit-identical completion
//! trajectories before recording the speedup.
//!
//! Writes `BENCH_flownet.json` (via `lsds-trace`'s in-tree JSON) so the
//! perf trajectory of the repo is diffable run over run; prints the same
//! numbers as a table. `--smoke` shrinks sizes and repetitions for CI.

use lsds_bench::{run_flow_sharing, run_flow_sharing_dumbbell, FlowSharingResult};
use lsds_net::ShareMode;
use lsds_trace::{Json, TextTable};
use std::time::Instant;

const SEED: u64 = 0xF10;

/// Median wall-seconds over `reps` runs, plus the (identical) result.
fn timed(reps: usize, mut f: impl FnMut() -> FlowSharingResult) -> (f64, FlowSharingResult) {
    let mut walls = Vec::with_capacity(reps);
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        walls.push(t0.elapsed().as_secs_f64());
        out = Some(r);
    }
    walls.sort_by(f64::total_cmp);
    let Some(result) = out else {
        unreachable!("reps >= 1");
    };
    (walls[walls.len() / 2], result)
}

struct Scenario {
    name: String,
    n_flows: usize,
    faults: bool,
    wall_full: f64,
    wall_inc: f64,
    full: FlowSharingResult,
    inc: FlowSharingResult,
}

impl Scenario {
    fn speedup(&self) -> f64 {
        self.wall_full / self.wall_inc
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("n_flows".into(), Json::Num(self.n_flows as f64)),
            ("faults".into(), Json::Bool(self.faults)),
            ("wall_full_s".into(), Json::Num(self.wall_full)),
            ("wall_incremental_s".into(), Json::Num(self.wall_inc)),
            ("speedup".into(), Json::Num(self.speedup())),
            ("bit_identical".into(), Json::Bool(true)),
            (
                "completions".into(),
                Json::Num(self.inc.completions.len() as f64),
            ),
            ("aborted".into(), Json::Num(self.inc.aborted as f64)),
            (
                "reshare_count".into(),
                Json::Num(self.inc.reshare_count as f64),
            ),
            (
                "links_touched_full".into(),
                Json::Num(self.full.links_touched as f64),
            ),
            (
                "links_touched_incremental".into(),
                Json::Num(self.inc.links_touched as f64),
            ),
            (
                "flows_touched_full".into(),
                Json::Num(self.full.flows_touched as f64),
            ),
            (
                "flows_touched_incremental".into(),
                Json::Num(self.inc.flows_touched as f64),
            ),
            (
                "route_cache_hits".into(),
                Json::Num(self.inc.route_cache_hits as f64),
            ),
            (
                "route_cache_misses".into(),
                Json::Num(self.inc.route_cache_misses as f64),
            ),
        ])
    }
}

fn check_identical(name: &str, full: &FlowSharingResult, inc: &FlowSharingResult) {
    assert_eq!(
        full.completions, inc.completions,
        "{name}: full and incremental trajectories diverged"
    );
    assert_eq!(full.aborted, inc.aborted, "{name}: abort counts diverged");
    assert_eq!(
        full.reshare_count, inc.reshare_count,
        "{name}: reshare counts diverged"
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke { &[10, 100] } else { &[10, 100, 1000] };
    let reps = if smoke { 2 } else { 5 };

    let mut scenarios = Vec::new();
    for &n in sizes {
        // ~16 concurrent flows per pair at every scale
        let pairs = (n / 16).clamp(1, 64);
        for faults in [false, true] {
            let (wall_full, full) = timed(reps, || {
                run_flow_sharing(pairs, n, ShareMode::Full, faults, SEED)
            });
            let (wall_inc, inc) = timed(reps, || {
                run_flow_sharing(pairs, n, ShareMode::Incremental, faults, SEED)
            });
            let name = format!("pairs/{n}{}", if faults { "/faults" } else { "" });
            check_identical(&name, &full, &inc);
            scenarios.push(Scenario {
                name,
                n_flows: n,
                faults,
                wall_full,
                wall_inc,
                full,
                inc,
            });
        }
    }
    // adversarial single-component case: every flow crosses the shared
    // dumbbell waist, so incremental cannot beat full (speedup ≈ 1)
    let n_dumbbell = if smoke { 64 } else { 256 };
    let (wall_full, full) = timed(reps, || {
        run_flow_sharing_dumbbell(8, n_dumbbell, ShareMode::Full, SEED)
    });
    let (wall_inc, inc) = timed(reps, || {
        run_flow_sharing_dumbbell(8, n_dumbbell, ShareMode::Incremental, SEED)
    });
    check_identical("dumbbell", &full, &inc);
    scenarios.push(Scenario {
        name: format!("dumbbell/{n_dumbbell}"),
        n_flows: n_dumbbell,
        faults: false,
        wall_full,
        wall_inc,
        full,
        inc,
    });

    let mut table = TextTable::with_columns(&[
        "scenario",
        "full (s)",
        "incremental (s)",
        "speedup",
        "flows touched full",
        "flows touched inc",
    ]);
    for s in &scenarios {
        table.row(vec![
            s.name.clone(),
            format!("{:.4}", s.wall_full),
            format!("{:.4}", s.wall_inc),
            format!("{:.2}x", s.speedup()),
            s.full.flows_touched.to_string(),
            s.inc.flows_touched.to_string(),
        ]);
    }
    println!("E-flownet — incremental vs full max-min fair share");
    println!("(all scenarios verified bit-identical between modes)");
    println!("{}", table.render());

    let doc = Json::Obj(vec![
        (
            "experiment".into(),
            Json::Str("flownet_incremental_sharing".into()),
        ),
        ("seed".into(), Json::Num(SEED as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        (
            "scenarios".into(),
            Json::Arr(scenarios.iter().map(Scenario::to_json).collect()),
        ),
    ]);
    let path = "BENCH_flownet.json";
    std::fs::write(path, doc.render_pretty() + "\n").expect("write BENCH_flownet.json");
    println!("wrote {path}");
}
