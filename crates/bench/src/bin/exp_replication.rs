//! E7 — OptorSim: stability and transient behavior of replication
//! optimization methods (pull family), across disk-pressure regimes.

use lsds_grid::ReplicationPolicy;
use lsds_simulators::optorsim::OptorSim;
use lsds_trace::{BarChart, TextTable};

fn main() {
    println!("E7 — OptorSim replication strategies (200 Zipf jobs, 5 sites)\n");
    for &(label, disk) in &[
        ("plentiful disks (40 files fit)", 45.0e9),
        ("tight disks (12 files fit) — replacement pressure", 12.0e9),
        ("scarce disks (4 files fit)", 4.0e9),
    ] {
        println!("{label}:");
        let mut table =
            TextTable::with_columns(&["strategy", "mean job (s)", "mean staging (s)", "WAN (GB)"]);
        for strategy in [
            ReplicationPolicy::None,
            ReplicationPolicy::PullLru,
            ReplicationPolicy::PullLfu,
            ReplicationPolicy::PullEconomic,
        ] {
            let rep = OptorSim {
                strategy,
                disk,
                seed: 12,
                ..OptorSim::default()
            }
            .run(1.0e7);
            assert_eq!(rep.records.len(), 200);
            table.row(vec![
                strategy.name().into(),
                format!("{:.1}", rep.mean_makespan),
                format!("{:.1}", rep.mean_stage_time),
                format!("{:.1}", rep.wan_bytes / 1e9),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    // visual output analyzer: WAN traffic per strategy at tight disks
    println!("WAN traffic at tight disks (GB):");
    let mut chart = BarChart::new();
    for strategy in [
        ReplicationPolicy::None,
        ReplicationPolicy::PullLru,
        ReplicationPolicy::PullLfu,
        ReplicationPolicy::PullEconomic,
    ] {
        let rep = OptorSim {
            strategy,
            disk: 12.0e9,
            seed: 12,
            ..OptorSim::default()
        }
        .run(1.0e7);
        chart.bar(strategy.name(), rep.wan_bytes / 1e9);
    }
    print!("{}", chart.render());
    println!();
    println!(
        "Reading: with room to spare every pull strategy converges (each hot\n\
         file staged once per site); under pressure the eviction choice starts\n\
         to matter, and with scarce disks economic/LFU protect reused files\n\
         where plain LRU churns — while no-replication pays full WAN cost\n\
         in every regime."
    );
}
