//! E11 — queueing-theory validation of the simulation substrate.
//!
//! "The formalism provided by the queuing models is important for the
//! definition and validation of the simulation stochastic models." (§5)
//! Every Markovian station the substrates rely on is simulated and held
//! against its closed form; a Jackson tandem validates composition.

use lsds_queueing::{simulate_station, JacksonNetwork, Station, MD1, MG1, MM1, MM1K, MMC};
use lsds_stats::Dist;
use lsds_trace::TextTable;

fn row(
    table: &mut TextTable,
    name: &str,
    analytic_w: f64,
    analytic_l: f64,
    spec: &Station,
    horizon: f64,
) {
    let r = simulate_station(spec, horizon, 1137);
    let err_w = (r.mean_w - analytic_w).abs() / analytic_w * 100.0;
    let err_l = (r.time_avg_l - analytic_l).abs() / analytic_l * 100.0;
    table.row(vec![
        name.into(),
        format!("{analytic_w:.4}"),
        format!("{:.4}", r.mean_w),
        format!("{err_w:.1}%"),
        format!("{analytic_l:.4}"),
        format!("{:.4}", r.time_avg_l),
        format!("{err_l:.1}%"),
    ]);
}

fn main() {
    println!("E11 — simulated stations vs closed-form queueing theory");
    let horizon = 400_000.0;
    println!("(horizon {horizon} simulated seconds per station)\n");
    let mut table = TextTable::with_columns(&[
        "station",
        "W analytic",
        "W simulated",
        "err",
        "L analytic",
        "L simulated",
        "err",
    ]);

    for &rho in &[0.3, 0.5, 0.7, 0.9] {
        let q = MM1::new(rho, 1.0);
        row(
            &mut table,
            &format!("M/M/1 rho={rho}"),
            q.w(),
            q.l(),
            &Station {
                interarrival: Dist::Exponential { rate: rho },
                service: Dist::Exponential { rate: 1.0 },
                servers: 1,
                capacity: None,
            },
            horizon,
        );
    }
    {
        let q = MMC::new(2.0, 1.0, 3);
        row(
            &mut table,
            "M/M/3 lambda=2",
            q.w(),
            q.l(),
            &Station {
                interarrival: Dist::Exponential { rate: 2.0 },
                service: Dist::Exponential { rate: 1.0 },
                servers: 3,
                capacity: None,
            },
            horizon,
        );
    }
    {
        let q = MD1::new(0.7, 1.0);
        row(
            &mut table,
            "M/D/1 rho=0.7 (packet link)",
            q.w(),
            q.l(),
            &Station {
                interarrival: Dist::Exponential { rate: 0.7 },
                service: Dist::constant(1.0),
                servers: 1,
                capacity: None,
            },
            horizon,
        );
    }
    {
        // hyperexponential service: SCV > 1 via P-K
        let service = Dist::HyperExp {
            p: 0.3,
            r1: 0.5,
            r2: 5.0,
        };
        let q = MG1::new(0.6, service.mean(), service.scv());
        row(
            &mut table,
            "M/G/1 (hyperexp, P-K)",
            q.w(),
            q.l(),
            &Station {
                interarrival: Dist::Exponential { rate: 0.6 },
                service,
                servers: 1,
                capacity: None,
            },
            horizon,
        );
    }
    print!("{}", table.render());

    // loss system
    {
        let q = MM1K::new(2.0, 1.0, 5);
        let r = simulate_station(
            &Station {
                interarrival: Dist::Exponential { rate: 2.0 },
                service: Dist::Exponential { rate: 1.0 },
                servers: 1,
                capacity: Some(5),
            },
            horizon,
            1138,
        );
        let measured = r.blocked as f64 / r.arrivals as f64;
        println!(
            "\nM/M/1/5 overloaded (rho = 2): blocking analytic {:.4}, simulated {:.4} ({:+.1}%)",
            q.p_block(),
            measured,
            (measured - q.p_block()) / q.p_block() * 100.0
        );
    }

    // Jackson tandem: two M/M/1 stations in series
    {
        let net = JacksonNetwork::new(
            vec![0.5, 0.0],
            vec![vec![0.0, 1.0], vec![0.0, 0.0]],
            vec![1.0, 0.8],
            vec![1, 1],
        );
        let analytic = net.total_w();
        // simulate stage 1, feed its departures into stage 2: for M/M/1 in
        // tandem, Burke's theorem says stage-2 arrivals are Poisson(λ) —
        // simulate both stations independently and add sojourns.
        let r1 = simulate_station(
            &Station {
                interarrival: Dist::Exponential { rate: 0.5 },
                service: Dist::Exponential { rate: 1.0 },
                servers: 1,
                capacity: None,
            },
            horizon,
            1139,
        );
        let r2 = simulate_station(
            &Station {
                interarrival: Dist::Exponential { rate: 0.5 },
                service: Dist::Exponential { rate: 0.8 },
                servers: 1,
                capacity: None,
            },
            horizon,
            1140,
        );
        let measured = r1.mean_w + r2.mean_w;
        println!(
            "Jackson tandem (Burke): end-to-end W analytic {:.4}, simulated {:.4} ({:+.1}%)",
            analytic,
            measured,
            (measured - analytic) / analytic * 100.0
        );
    }
    println!(
        "\nReading: every substrate station tracks its closed form within a\n\
         few percent — the per-component validation regime §5 prescribes."
    );
}
