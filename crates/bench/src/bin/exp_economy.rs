//! E9 — GridSim's deadline-and-budget-constrained economy scheduling:
//! cost/time optimization curves over the constraint space.

use lsds_grid::scheduler::EconomyGoal;
use lsds_simulators::gridsim::GridSim;
use lsds_trace::TextTable;

fn main() {
    println!("E9 — GridSim computational economy (200-task farm,");
    println!("resources: 1x speed @ 1, 2x @ 3, 4x @ 8 currency/CPU-s)\n");

    println!("budget sweep (deadline factor 6.0):");
    let mut t1 = TextTable::with_columns(&[
        "goal",
        "budget factor",
        "done",
        "rejected",
        "cost",
        "mean time (s)",
        "deadline hits",
    ]);
    for goal in [EconomyGoal::CostMin, EconomyGoal::TimeMin] {
        for &bf in &[1.0, 2.0, 4.0, 8.0, 16.0] {
            let rep = GridSim {
                goal,
                budget_factor: bf,
                deadline_factor: 6.0,
                seed: 31,
                ..GridSim::default()
            }
            .run(1.0e7);
            t1.row(vec![
                match goal {
                    EconomyGoal::CostMin => "cost-min".into(),
                    EconomyGoal::TimeMin => "time-min".into(),
                },
                format!("{bf:.1}"),
                format!("{}", rep.records.len()),
                format!("{}", rep.rejected),
                format!("{:.0}", rep.total_cost),
                format!("{:.1}", rep.mean_makespan),
                format!("{:.0}%", rep.deadline_hit_rate * 100.0),
            ]);
        }
    }
    print!("{}", t1.render());

    println!("\ndeadline sweep (budget factor 8.0):");
    let mut t2 = TextTable::with_columns(&[
        "goal",
        "deadline factor",
        "done",
        "rejected",
        "cost",
        "deadline hits",
    ]);
    for goal in [EconomyGoal::CostMin, EconomyGoal::TimeMin] {
        for &df in &[1.5, 3.0, 6.0, 12.0] {
            let rep = GridSim {
                goal,
                budget_factor: 8.0,
                deadline_factor: df,
                seed: 31,
                ..GridSim::default()
            }
            .run(1.0e7);
            t2.row(vec![
                match goal {
                    EconomyGoal::CostMin => "cost-min".into(),
                    EconomyGoal::TimeMin => "time-min".into(),
                },
                format!("{df:.1}"),
                format!("{}", rep.records.len()),
                format!("{}", rep.rejected),
                format!("{:.0}", rep.total_cost),
                format!("{:.0}%", rep.deadline_hit_rate * 100.0),
            ]);
        }
    }
    print!("{}", t2.render());
    println!(
        "\nReading: cost optimization saturates the cheap tier and spends the\n\
         minimum that meets the deadline; time optimization converts budget\n\
         into fast-tier placements. Infeasible constraint pairs are rejected\n\
         up front — GridSim's deadline-and-budget-constrained behavior."
    );
}
