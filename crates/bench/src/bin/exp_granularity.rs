//! E13 — network granularity: packet-level vs flow-level simulation.
//!
//! "The simulation of the network can model in detail the flow of each
//! packet through the network, a time consuming operation that leads to
//! better output results, or it can model only the flows of packets going
//! from one end to another in the network." (§3)
//!
//! The same bulk transfers cross a two-hop path under both models; the
//! table reports predicted completion times, the packet model's extra
//! fidelity (store-and-forward pipelining, queueing), and the cost in
//! simulation events and wall time.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_net::{FlowEvent, FlowNet, NodeId, NodeKind, PacketEvent, PacketNet, Topology};
use lsds_trace::TextTable;
use std::time::Instant;

const BW: f64 = 1.0e6; // 1 MB/s per hop
const LAT: f64 = 0.005;
const MTU: f64 = 1500.0;

fn two_hop() -> (Topology, NodeId, NodeId) {
    let mut t = Topology::new();
    let a = t.add_node(NodeKind::Host, "a");
    let r = t.add_node(NodeKind::Router, "r");
    let b = t.add_node(NodeKind::Host, "b");
    t.add_duplex(a, r, BW, LAT);
    t.add_duplex(r, b, BW, LAT);
    (t, a, b)
}

// ---- flow model ----

struct FlowH {
    net: FlowNet,
    done_at: Vec<f64>,
}

enum FEv {
    Kick(f64),
    Net(FlowEvent),
}

impl Model for FlowH {
    type Event = FEv;
    fn handle(&mut self, ev: FEv, ctx: &mut Ctx<'_, FEv>) {
        match ev {
            FEv::Kick(bytes) => {
                let topo = self.net.topology();
                let a = NodeId(0);
                let b = NodeId(2);
                let _ = topo;
                self.net.start(a, b, bytes, 0, &mut ctx.map(FEv::Net));
            }
            FEv::Net(fe) => {
                for d in self.net.handle(fe, &mut ctx.map(FEv::Net)) {
                    self.done_at.push(d.finished.seconds());
                }
            }
        }
    }
}

fn run_flow(n_transfers: usize, bytes: f64) -> (f64, u64, f64) {
    let (t, _, _) = two_hop();
    let mut sim = EventDriven::new(FlowH {
        net: FlowNet::new(t),
        done_at: vec![],
    });
    for i in 0..n_transfers {
        sim.schedule(SimTime::new(i as f64 * 0.001), FEv::Kick(bytes));
    }
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    let last = sim.model().done_at.iter().cloned().fold(0.0f64, f64::max);
    (last, stats.events, wall)
}

// ---- packet model ----

struct PacketH {
    net: PacketNet,
    delivered: u64,
    last: f64,
}

enum PEv {
    Kick { transfer: u64, packets: u32 },
    Net(PacketEvent),
}

impl Model for PacketH {
    type Event = PEv;
    fn handle(&mut self, ev: PEv, ctx: &mut Ctx<'_, PEv>) {
        match ev {
            PEv::Kick { transfer, packets } => {
                self.net.inject_transfer(
                    transfer,
                    NodeId(0),
                    NodeId(2),
                    packets,
                    MTU,
                    &mut ctx.map(PEv::Net),
                );
            }
            PEv::Net(pe) => {
                for note in self.net.handle(pe, &mut ctx.map(PEv::Net)) {
                    if let lsds_net::PacketNote::Delivered { .. } = note {
                        self.delivered += 1;
                        self.last = ctx.now().seconds();
                    }
                }
            }
        }
    }
}

fn run_packet(n_transfers: usize, bytes: f64) -> (f64, u64, f64) {
    let (t, _, _) = two_hop();
    let packets = (bytes / MTU).ceil() as u32;
    let mut sim = EventDriven::new(PacketH {
        net: PacketNet::new(t, 1_000_000),
        delivered: 0,
        last: 0.0,
    });
    for i in 0..n_transfers {
        sim.schedule(
            SimTime::new(i as f64 * 0.001),
            PEv::Kick {
                transfer: i as u64,
                packets,
            },
        );
    }
    let start = Instant::now();
    let stats = sim.run();
    let wall = start.elapsed().as_secs_f64();
    (sim.model().last, stats.events, wall)
}

fn main() {
    println!("E13 — packet vs flow granularity (two-hop path, 1 MB/s hops)\n");
    let mut table = TextTable::with_columns(&[
        "transfers x size",
        "model",
        "completion (s)",
        "events",
        "wall (ms)",
    ]);
    for &(n, mb) in &[(1usize, 1.0f64), (4, 1.0), (8, 4.0)] {
        let bytes = mb * 1.0e6;
        let (t_f, ev_f, w_f) = run_flow(n, bytes);
        let (t_p, ev_p, w_p) = run_packet(n, bytes);
        table.row(vec![
            format!("{n} x {mb} MB"),
            "flow (fluid)".into(),
            format!("{t_f:.3}"),
            format!("{ev_f}"),
            format!("{:.2}", w_f * 1e3),
        ]);
        table.row(vec![
            String::new(),
            "packet".into(),
            format!("{t_p:.3}"),
            format!("{ev_p}"),
            format!("{:.2}", w_p * 1e3),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: the models agree on completion times to within the\n\
         store-and-forward pipelining the fluid model cannot see (one MTU\n\
         of serialization), while the packet model pays thousands of times\n\
         more events — the cost/fidelity axis of the taxonomy."
    );
}
