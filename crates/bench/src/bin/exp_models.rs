//! E10 — the Bricks "central model" vs the MONARC "tier model".
//!
//! "Bricks uses a model which the authors call the 'central model'. In
//! this simulation model it is assumed that all the jobs are processed at
//! a single site. In contrast with the model, MONARC also proposed
//! another simulation model, called the 'tier model', in which jobs are
//! processed according to their hierarchical levels." (§4)
//!
//! The same aggregate capacity (48 cores) is organized both ways and
//! driven by the same job stream at increasing load.

use lsds_core::SimTime;
use lsds_grid::model::{GridConfig, GridModel};
use lsds_grid::organization::{central_grid, tiered_grid, SiteSpec};
use lsds_grid::scheduler::{FixedSite, LeastLoaded};
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};
use lsds_trace::TextTable;

const JOBS: u64 = 4000;
const WORK_MEAN: f64 = 60.0;

fn run_central(mean_ia: f64, seed: u64) -> (f64, f64) {
    let grid = central_grid(
        6,
        SiteSpec {
            cores: 48,
            ..SiteSpec::default()
        },
        1.0e12,
        lsds_net::mbps(622.0),
        0.02,
    );
    let master = SimRng::new(seed);
    let n_sites = grid.sites.len();
    let cfg = GridConfig {
        grid,
        policy: Box::new(FixedSite(SiteId(0))),
        replication: ReplicationPolicy::None,
        activities: vec![
            Activity::compute(0, mean_ia, Dist::exp_mean(WORK_MEAN), master.fork(1))
                .with_limit(JOBS),
        ],
        production: None,
        agent: None,
        eligible: Some((0..n_sites).map(|i| i == 0).collect()),
        initial_files: vec![],
        seed,
    };
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e8));
    let rep = sim.model().report();
    assert_eq!(rep.records.len() as u64, JOBS);
    let max_queue: f64 = rep
        .records
        .iter()
        .map(|r| r.queue_time())
        .fold(0.0, f64::max);
    (rep.mean_makespan, max_queue)
}

fn run_tiered(mean_ia: f64, seed: u64) -> (f64, f64) {
    // 48 cores spread over 1 T1-ish root (16) + 2×T1(8) + 4×T2(4)
    let grid = tiered_grid(
        SiteSpec {
            cores: 16,
            ..SiteSpec::default()
        },
        2,
        SiteSpec {
            cores: 8,
            ..SiteSpec::default()
        },
        2,
        SiteSpec {
            cores: 4,
            ..SiteSpec::default()
        },
        lsds_net::mbps(2500.0),
        lsds_net::mbps(622.0),
        0.02,
    );
    let master = SimRng::new(seed);
    let cfg = GridConfig {
        grid,
        policy: Box::new(LeastLoaded),
        replication: ReplicationPolicy::None,
        activities: vec![
            Activity::compute(0, mean_ia, Dist::exp_mean(WORK_MEAN), master.fork(1))
                .with_limit(JOBS),
        ],
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed,
    };
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e8));
    let rep = sim.model().report();
    assert_eq!(rep.records.len() as u64, JOBS);
    let max_queue: f64 = rep
        .records
        .iter()
        .map(|r| r.queue_time())
        .fold(0.0, f64::max);
    (rep.mean_makespan, max_queue)
}

fn main() {
    println!("E10 — central model (Bricks) vs tier model (MONARC)");
    println!("same 48 aggregate cores, same job stream (exp work, mean {WORK_MEAN} s)\n");
    let mut table = TextTable::with_columns(&[
        "mean interarrival (s)",
        "offered load",
        "central: mean makespan",
        "central: max queue",
        "tiered: mean makespan",
        "tiered: max queue",
    ]);
    for &mean_ia in &[2.0, 1.5, 1.35, 1.28] {
        // offered load = work rate / capacity = (WORK/ia) / 48
        let rho = WORK_MEAN / mean_ia / 48.0;
        let (mc, qc) = run_central(mean_ia, 5);
        let (mt, qt) = run_tiered(mean_ia, 5);
        table.row(vec![
            format!("{mean_ia}"),
            format!("{:.2}", rho),
            format!("{mc:.1}"),
            format!("{qc:.1}"),
            format!("{mt:.1}"),
            format!("{qt:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: one pooled 48-core site beats the same capacity split\n\
         across tiers (resource pooling), and the gap widens with load —\n\
         the structural trade the two organizations make. The tier model's\n\
         payoff is data locality and autonomy (E6), not raw queueing."
    );
}
