//! E4 — centralized vs distributed execution.
//!
//! The taxonomy splits engines into centralized (one execution unit) and
//! distributed (multiple processors); the paper notes that distributed
//! simulation "has not significantly impressed the general simulation
//! community" because efficiency takes real effort (§3, citing Misra 1986
//! and Fujimoto 1993). The experiment runs the same partitioned workload:
//!
//! * centralized — all partitions in one event-driven engine;
//! * distributed — one logical process per partition under conservative
//!   CMB synchronization, with a lookahead sweep showing the
//!   null-message overhead that conservatism costs;
//! * work-stealing — the same conservative synchronization on a fixed
//!   worker pool (`--workers N`, default host parallelism), where the
//!   sync column counts shared-memory bound updates instead of nulls.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{run_cmb, run_worksteal_cfg, LogicalProcess, LpCtx, WsConfig};
use lsds_trace::TextTable;
use std::time::Instant;

/// Per-event model computation (identical in both engines) — enough work
/// that parallelism has something to win.
fn busy_work(seed: u64, iters: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xD1B5;
    }
    x
}

const WORK_ITERS: u32 = 20_000;
const INTERNAL_PERIOD: f64 = 0.1;
const CROSS_EVERY: u64 = 10;
const CROSS_DELAY: f64 = 1.0;

// ---- centralized version ----

struct Central {
    n_parts: usize,
    counters: Vec<u64>,
    sink: u64,
}

#[derive(Clone, Copy)]
enum CEv {
    Internal { part: usize },
    Cross { part: usize },
}

impl Model for Central {
    type Event = CEv;
    fn handle(&mut self, ev: CEv, ctx: &mut Ctx<'_, CEv>) {
        match ev {
            CEv::Internal { part } => {
                self.counters[part] += 1;
                self.sink ^= busy_work(self.counters[part], WORK_ITERS);
                ctx.schedule_in(INTERNAL_PERIOD, CEv::Internal { part });
                if self.counters[part].is_multiple_of(CROSS_EVERY) {
                    let next = (part + 1) % self.n_parts;
                    ctx.schedule_in(CROSS_DELAY, CEv::Cross { part: next });
                }
            }
            CEv::Cross { part } => {
                self.counters[part] += 1;
                self.sink ^= busy_work(self.counters[part], WORK_ITERS);
            }
        }
    }
}

fn run_central(n_parts: usize, horizon: f64) -> (u64, f64) {
    let mut sim = EventDriven::new(Central {
        n_parts,
        counters: vec![0; n_parts],
        sink: 0,
    });
    for part in 0..n_parts {
        sim.schedule(SimTime::ZERO, CEv::Internal { part });
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::new(horizon));
    (stats.events, start.elapsed().as_secs_f64())
}

// ---- distributed version ----

struct PartLp {
    n_parts: usize,
    la: f64,
    counter: u64,
    sink: u64,
}

#[derive(Clone, Copy)]
enum LEv {
    Internal,
    Cross,
}

impl LogicalProcess for PartLp {
    type Msg = LEv;
    fn handle(&mut self, _now: SimTime, ev: LEv, ctx: &mut LpCtx<'_, LEv>) {
        match ev {
            LEv::Internal => {
                self.counter += 1;
                self.sink ^= busy_work(self.counter, WORK_ITERS);
                ctx.schedule_in(INTERNAL_PERIOD, LEv::Internal);
                if self.counter.is_multiple_of(CROSS_EVERY) {
                    ctx.send((ctx.me() + 1) % self.n_parts, CROSS_DELAY, LEv::Cross);
                }
            }
            LEv::Cross => {
                self.counter += 1;
                self.sink ^= busy_work(self.counter, WORK_ITERS);
            }
        }
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for PartLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, LEv>) {
        ctx.schedule_in(0.0, LEv::Internal);
    }
}

fn run_distributed(n_parts: usize, la: f64, horizon: f64) -> (u64, u64, f64) {
    let lps: Vec<PartLp> = (0..n_parts)
        .map(|_| PartLp {
            n_parts,
            la,
            counter: 0,
            sink: 0,
        })
        .collect();
    let edges: Vec<(usize, usize)> = (0..n_parts).map(|i| (i, (i + 1) % n_parts)).collect();
    let start = Instant::now();
    let report = run_cmb(lps, &edges, SimTime::new(horizon));
    let wall = start.elapsed().as_secs_f64();
    (report.total_events(), report.total_nulls(), wall)
}

/// Same partitioned workload on the work-stealing pool; returns
/// `(events, bound updates, actual workers, wall seconds)`.
fn run_worksteal_engine(
    n_parts: usize,
    la: f64,
    horizon: f64,
    workers: usize,
) -> (u64, u64, usize, f64) {
    let lps: Vec<PartLp> = (0..n_parts)
        .map(|_| PartLp {
            n_parts,
            la,
            counter: 0,
            sink: 0,
        })
        .collect();
    let edges: Vec<(usize, usize)> = (0..n_parts).map(|i| (i, (i + 1) % n_parts)).collect();
    let start = Instant::now();
    let report = run_worksteal_cfg(
        lps,
        &edges,
        SimTime::new(horizon),
        WsConfig {
            workers,
            ..WsConfig::default()
        },
    );
    let wall = start.elapsed().as_secs_f64();
    (
        report.total_events(),
        report.sched.bound_updates,
        report.sched.workers,
        wall,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // 0 = let the scheduler use the host's available parallelism
    let ws_workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map_or(0, |v| v.parse().expect("--workers takes a number"));
    let horizon = 200.0;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("E4 — centralized vs distributed execution (horizon {horizon} s)");
    println!("host parallelism: {cores} core(s)\n");

    let mut table = TextTable::with_columns(&[
        "partitions",
        "engine",
        "events",
        "nulls",
        "wall (ms)",
        "speedup",
    ]);
    for &parts in &[2usize, 4, 8] {
        let (ev_c, wall_c) = run_central(parts, horizon);
        table.row(vec![
            format!("{parts}"),
            "centralized".into(),
            format!("{ev_c}"),
            "-".into(),
            format!("{:.0}", wall_c * 1e3),
            "1.00x".into(),
        ]);
        let (ev_d, nulls, wall_d) = run_distributed(parts, CROSS_DELAY, horizon);
        table.row(vec![
            format!("{parts}"),
            "CMB distributed".into(),
            format!("{ev_d}"),
            format!("{nulls}"),
            format!("{:.0}", wall_d * 1e3),
            format!("{:.2}x", wall_c / wall_d),
        ]);
        assert_eq!(ev_c, ev_d, "both engines process identical events");
        let (ev_w, bound_updates, used, wall_w) =
            run_worksteal_engine(parts, CROSS_DELAY, horizon, ws_workers);
        table.row(vec![
            format!("{parts}"),
            format!("worksteal ({used}w)"),
            format!("{ev_w}"),
            format!("{bound_updates}*"),
            format!("{:.0}", wall_w * 1e3),
            format!("{:.2}x", wall_c / wall_w),
        ]);
        assert_eq!(
            ev_c, ev_w,
            "work-stealing engine processes identical events"
        );
    }
    print!("{}", table.render());
    println!("(* shared-memory channel-bound updates, the worksteal analog of nulls)");

    println!("\nnull-message overhead vs lookahead (8 partitions):");
    let mut t2 = TextTable::with_columns(&["lookahead", "nulls", "nulls/event", "wall (ms)"]);
    for &la in &[1.0, 0.5, 0.2, 0.1] {
        let (ev, nulls, wall) = run_distributed(8, la, horizon);
        t2.row(vec![
            format!("{la}"),
            format!("{nulls}"),
            format!("{:.3}", nulls as f64 / ev as f64),
            format!("{:.0}", wall * 1e3),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "\nReading: speedup is bounded by the host's cores — on a single-core\n\
         host the interesting number is the *overhead*: CMB costs only a few\n\
         percent over the centralized engine while preserving identical\n\
         results. With multiple cores the per-window concurrency converts\n\
         into wall-clock speedup; shrinking lookahead buys nothing here but\n\
         null traffic — the \"considerable efforts and expertise\" the paper\n\
         quotes (Fujimoto 1993)."
    );
}
