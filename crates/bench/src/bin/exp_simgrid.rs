//! E5 — SimGrid's analytic validation (Casanova 2001).
//!
//! "A validation of SimGrid was presented in its very first paper … The
//! validation consisted in comparing the results of the simulator with
//! the ones obtained analytically on a mathematically tractable
//! scheduling problem." (§4)
//!
//! For a bag of independent tasks under a static schedule, per-host
//! finish times are analytically computable; the simulated makespan must
//! match to machine precision across many random instances. The runtime
//! (agent) scheduler is then compared against the analytic lower bound.

use lsds_simulators::simgrid::{SchedulingMode, SimGrid};
use lsds_stats::{SimRng, Summary};
use lsds_trace::TextTable;

fn random_instance(rng: &mut SimRng, hosts: usize, tasks: usize) -> (Vec<f64>, Vec<f64>) {
    let speeds = (0..hosts).map(|_| rng.range_f64(0.5, 4.0)).collect();
    let works = (0..tasks).map(|_| rng.range_f64(1.0, 50.0)).collect();
    (speeds, works)
}

fn main() {
    println!("E5 — SimGrid validation against the tractable scheduling problem\n");
    let mut rng = SimRng::new(2001);
    let mut max_err = 0.0f64;
    let mut ratio_static = Summary::new();
    let mut ratio_dynamic = Summary::new();
    let instances = 200;
    for _ in 0..instances {
        let hosts = 2 + rng.index(7);
        let tasks = 10 + rng.index(190);
        let (speeds, works) = random_instance(&mut rng, hosts, tasks);
        let sg = SimGrid::new(speeds.clone(), works.clone(), SchedulingMode::CompileTime);
        let (_, analytic) = sg.static_schedule();
        let simulated = sg.run().makespan;
        max_err = max_err.max((simulated - analytic).abs() / analytic);
        let lb = sg.analytic_lower_bound();
        ratio_static.add(simulated / lb);
        let dynamic = SimGrid::new(speeds, works, SchedulingMode::Runtime)
            .run()
            .makespan;
        ratio_dynamic.add(dynamic / lb);
    }
    let mut table = TextTable::with_columns(&["quantity", "value"]);
    table.row(vec!["random instances".into(), format!("{instances}")]);
    table.row(vec![
        "max |sim − analytic| / analytic (static)".into(),
        format!("{max_err:.3e}"),
    ]);
    table.row(vec![
        "mean makespan / lower-bound (compile-time)".into(),
        format!("{:.4}", ratio_static.mean()),
    ]);
    table.row(vec![
        "mean makespan / lower-bound (runtime)".into(),
        format!("{:.4}", ratio_dynamic.mean()),
    ]);
    table.row(vec![
        "worst makespan / lower-bound (runtime)".into(),
        format!("{:.4}", ratio_dynamic.max()),
    ]);
    print!("{}", table.render());
    assert!(
        max_err < 1e-9,
        "simulation must reproduce the analytic schedule"
    );
    println!(
        "\nReading: the simulator reproduces the tractable case exactly\n\
         (mathematical validation). On uniform-speed machines greedy list\n\
         scheduling can trail the bound by more than the identical-machine\n\
         factor of 2 — visible in the runtime scheduler's worst case."
    );
}
