//! `bench_check` — performance-regression checker for committed
//! `BENCH_*.json` baselines.
//!
//! Compares a freshly generated experiment document against the
//! committed baseline produced by the same `exp_*` binary:
//!
//! * **fingerprints are exact** — a changed fingerprint means the
//!   simulation trajectory itself changed, which no scheduling or
//!   observability change may do;
//! * **event counts are exact** — same workload, same horizon, same
//!   population;
//! * **wall times get a tolerance band** — CI machines and laptops
//!   differ wildly, so a fresh row only fails when it exceeds
//!   `baseline * tolerance` (default 3.0, `--tolerance X` to adjust).
//!   Rows whose baseline wall time sits under `--min-wall` seconds
//!   (default 0.05) are reported but never fail on time: below that,
//!   scheduler jitter dwarfs the measurement and a ratio is noise.
//!
//! Rows are matched by the join of their string-valued fields
//! (`scenario`, `engine`, `costs`, …), which works across every
//! experiment schema without a per-experiment parser. A baseline row
//! missing from the fresh run fails the check; extra fresh rows are
//! reported but allowed (new configurations are additive).
//!
//! Usage: `bench_check <baseline.json> <fresh.json> [--tolerance X]
//! [--report FILE]`. Exits 1 on any mismatch; the trajectory table goes
//! to stdout (and to `--report FILE` for CI artifacts).

use lsds_trace::{Json, TextTable};
use std::process::ExitCode;

/// Stable identity of one result row: every string field except the
/// fingerprint, joined in document order.
fn row_key(row: &Json) -> String {
    let Json::Obj(fields) = row else {
        return String::new();
    };
    let mut parts = Vec::new();
    for (k, v) in fields {
        if k == "fingerprint" {
            continue;
        }
        if let Json::Str(s) = v {
            parts.push(format!("{k}={s}"));
        }
    }
    parts.join(" ")
}

fn results(doc: &Json) -> &[Json] {
    match doc.get("results") {
        Some(Json::Arr(rows)) => rows,
        _ => &[],
    }
}

struct Check {
    failures: Vec<String>,
    notes: Vec<String>,
    table: TextTable,
}

impl Check {
    fn fail(&mut self, msg: String) {
        self.failures.push(msg);
    }
}

fn compare(baseline: &Json, fresh: &Json, tolerance: f64, min_wall: f64, check: &mut Check) {
    for key in ["experiment", "smoke"] {
        let (b, f) = (baseline.get(key), fresh.get(key));
        if b.map(Json::render) != f.map(Json::render) {
            check.fail(format!(
                "{key} mismatch: baseline {:?} vs fresh {:?} — not the same run shape",
                b.map(Json::render),
                f.map(Json::render)
            ));
        }
    }
    let fresh_rows: Vec<(String, &Json)> = results(fresh).iter().map(|r| (row_key(r), r)).collect();
    let mut matched = vec![false; fresh_rows.len()];
    for row in results(baseline) {
        let key = row_key(row);
        let Some(pos) = fresh_rows.iter().position(|(k, _)| *k == key) else {
            check.fail(format!("baseline row missing from fresh run: {key}"));
            continue;
        };
        matched[pos] = true;
        let fresh_row = fresh_rows[pos].1;
        let mut verdict = "ok";
        // Trajectory identity: exact or nothing.
        for field in ["fingerprint", "events", "entities", "lps"] {
            let (b, f) = (row.get(field), fresh_row.get(field));
            if b.is_some() && b.map(Json::render) != f.map(Json::render) {
                check.fail(format!(
                    "{key}: {field} changed from {} to {}",
                    b.map(Json::render).unwrap_or_default(),
                    f.map(Json::render).unwrap_or_default()
                ));
                verdict = "FP-DIVERGED";
            }
        }
        // Wall time: banded.
        let (bw, fw) = (
            row.get("wall_s").and_then(Json::as_f64),
            fresh_row.get("wall_s").and_then(Json::as_f64),
        );
        let (bw_ms, fw_ms, ratio) = match (bw, fw) {
            (Some(b), Some(f)) => {
                let ratio = if b > 0.0 { f / b } else { 1.0 };
                if ratio > tolerance && b >= min_wall {
                    check.fail(format!(
                        "{key}: wall time {:.1} ms exceeds baseline {:.1} ms × {tolerance:.1}",
                        f * 1e3,
                        b * 1e3
                    ));
                    verdict = "SLOW";
                } else if ratio > tolerance {
                    // Sub-floor rows: jitter dominates, report but allow.
                    verdict = "noise";
                }
                (
                    format!("{:.1}", b * 1e3),
                    format!("{:.1}", f * 1e3),
                    format!("{ratio:.2}x"),
                )
            }
            _ => ("-".into(), "-".into(), "-".into()),
        };
        check
            .table
            .row(vec![key, bw_ms, fw_ms, ratio, verdict.into()]);
    }
    for (pos, (key, _)) in fresh_rows.iter().enumerate() {
        if !matched[pos] {
            check.notes.push(format!("fresh-only row (allowed): {key}"));
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut paths = Vec::new();
    let mut tolerance = 3.0;
    let mut min_wall = 0.05;
    let mut report: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--tolerance takes a number");
            }
            "--min-wall" => {
                i += 1;
                min_wall = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--min-wall takes seconds");
            }
            "--report" => {
                i += 1;
                report = Some(args.get(i).expect("--report takes a path").clone());
            }
            p => paths.push(p.to_string()),
        }
        i += 1;
    }
    if paths.len() != 2 {
        eprintln!(
            "usage: bench_check <baseline.json> <fresh.json> [--tolerance X] [--min-wall S] [--report FILE]"
        );
        return ExitCode::FAILURE;
    }
    let load = |path: &str| -> Json {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        Json::parse(&text).unwrap_or_else(|e| panic!("{path} is not valid JSON: {e:?}"))
    };
    let baseline = load(&paths[0]);
    let fresh = load(&paths[1]);

    let mut check = Check {
        failures: Vec::new(),
        notes: Vec::new(),
        table: TextTable::with_columns(&["row", "base (ms)", "fresh (ms)", "ratio", "verdict"]),
    };
    compare(&baseline, &fresh, tolerance, min_wall, &mut check);

    let mut out = String::new();
    out.push_str(&format!(
        "bench_check: {} vs {} (wall tolerance {tolerance:.1}x, floor {:.0} ms)\n\n",
        paths[0],
        paths[1],
        min_wall * 1e3
    ));
    out.push_str(&check.table.render());
    for note in &check.notes {
        out.push_str(&format!("note: {note}\n"));
    }
    if check.failures.is_empty() {
        out.push_str("\nPASS: fingerprints exact, wall times within band\n");
    } else {
        out.push_str(&format!("\nFAIL ({} problem(s)):\n", check.failures.len()));
        for f in &check.failures {
            out.push_str(&format!("  - {f}\n"));
        }
    }
    print!("{out}");
    if let Some(path) = report {
        std::fs::write(&path, &out).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    }
    if check.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(wall: f64, fp: &str) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::Str("x".into())),
            ("smoke".into(), Json::Bool(true)),
            (
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("scenario".into(), Json::Str("s".into())),
                    ("engine".into(), Json::Str("e".into())),
                    ("events".into(), Json::Num(10.0)),
                    ("wall_s".into(), Json::Num(wall)),
                    ("fingerprint".into(), Json::Str(fp.into())),
                ])]),
            ),
        ])
    }

    fn run(baseline: &Json, fresh: &Json, tol: f64) -> Vec<String> {
        let mut check = Check {
            failures: Vec::new(),
            notes: Vec::new(),
            table: TextTable::with_columns(&["row", "b", "f", "r", "v"]),
        };
        compare(baseline, fresh, tol, 0.05, &mut check);
        check.failures
    }

    #[test]
    fn identical_docs_pass() {
        assert!(run(&doc(0.1, "abc"), &doc(0.1, "abc"), 3.0).is_empty());
    }

    #[test]
    fn fingerprint_change_fails() {
        let fails = run(&doc(0.1, "abc"), &doc(0.1, "def"), 3.0);
        assert!(fails.iter().any(|f| f.contains("fingerprint")), "{fails:?}");
    }

    #[test]
    fn slow_run_fails_only_past_band() {
        assert!(run(&doc(0.1, "abc"), &doc(0.25, "abc"), 3.0).is_empty());
        let fails = run(&doc(0.1, "abc"), &doc(0.5, "abc"), 3.0);
        assert!(fails.iter().any(|f| f.contains("wall time")), "{fails:?}");
    }

    #[test]
    fn sub_floor_rows_never_fail_on_time() {
        // 2 ms baseline ballooning 10x is scheduler jitter, not a
        // regression — under the 50 ms floor it must stay green.
        assert!(run(&doc(0.002, "abc"), &doc(0.02, "abc"), 3.0).is_empty());
    }

    #[test]
    fn missing_row_fails() {
        let empty = Json::Obj(vec![
            ("experiment".into(), Json::Str("x".into())),
            ("smoke".into(), Json::Bool(true)),
            ("results".into(), Json::Arr(vec![])),
        ]);
        let fails = run(&doc(0.1, "abc"), &empty, 3.0);
        assert!(fails.iter().any(|f| f.contains("missing")), "{fails:?}");
    }
}
