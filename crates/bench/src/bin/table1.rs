//! E1 — regenerates the paper's Table 1 (design comparison of the six
//! surveyed simulators). `--csv` for machine-readable output.

use lsds_simulators::table1;

fn main() {
    let t = table1();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", t.to_csv());
    } else {
        println!("E1 / Table 1 — Design comparison of surveyed Grid simulation projects\n");
        print!("{}", t.render());
    }
}
