//! `exp_worksteal` — LP scheduling when LPs outnumber cores.
//!
//! The thread-per-LP engines hand scheduling to the OS: every LP is an
//! OS thread, so a 32-LP model on a small host pays a context switch per
//! blocking null-message round, and a skewed model leaves most threads
//! parked while the hot one runs. The work-stealing engine
//! ([`lsds_parallel::worksteal`]) decouples the two — N workers pull
//! runnable LPs from deques — so the comparison this experiment measures
//! is *scheduler against scheduler on identical simulation work*:
//!
//! * `hotspot` — one LP owns nearly all events and per-event compute,
//!   the rest idle (the adversarial case for static thread-per-LP);
//! * `zipf` — per-LP compute follows a harmonic (Zipf-like) decay, the
//!   realistic many-small-few-large mix of partitioned models;
//! * `partition` — no simulation at all: the deterministic imbalance
//!   (max LP load / mean LP load) of count-based partitionings vs
//!   [`lsds_parallel::profiled`] on the same cost vectors, the metric a
//!   profile-guided repartition removes.
//!
//! Every engine run must produce the same fingerprint as the sequential
//! oracle — worker count, batch size, and mid-run migration are
//! scheduling noise by construction, and the binary asserts it.
//!
//! Migration runs go through [`lsds_parallel::run_worksteal_telemetry`]:
//! the per-worker scheduler telemetry (steals, parks, migrations, deque
//! depths) is exported as Perfetto counter tracks to
//! `TRACE_worksteal.json`, and the **online** placement the epoch
//! rebalancer learned from observed per-LP cost is checked against a
//! [`lsds_parallel::profiled`] assignment built from the *same* observed
//! costs — live telemetry must match profile-guided partitioning without
//! a prior profiling run (ROADMAP item 2).
//!
//! Writes `BENCH_worksteal.json`. Flags: `--smoke` (tiny sizes for CI),
//! `--workers N` (run only that worker count instead of the sweep),
//! `--progress` (live stderr progress line on the largest migration run).

use lsds_core::SimTime;
use lsds_obs::{ProgressReporter, SpanTrace, TelemetryConfig, TelemetryReport};
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{
    block_partition, profiled, round_robin_partition, run_cmb, run_sequential, run_worksteal_cfg,
    run_worksteal_telemetry, LogicalProcess, LpCtx, WsConfig,
};
use lsds_trace::{validate_chrome_trace_full, write_chrome_trace_with_counters, Json, TextTable};
use std::sync::Arc;
use std::time::Instant;

/// Marks a cross-LP message as a pure sink (mutates state, schedules
/// nothing) so the event population stays linear in the horizon.
const REMOTE: u64 = 1 << 63;

/// Every `CROSS_EVERY`-th local event also pokes the next LP, keeping
/// the ring synchronized for real (bounds alone would be free).
const CROSS_EVERY: u64 = 8;

/// Ring node with per-LP event rate (`local_dt`) and per-event compute
/// (`work` state-mixing iterations) — the two skew knobs. Cross sends go
/// at exactly the declared lookahead: conservative channel clocks
/// require per-edge sends in nondecreasing timestamp order.
#[derive(Clone)]
struct SkewLp {
    n: usize,
    la: f64,
    until: f64,
    local_dt: f64,
    work: u32,
    acc: u64,
    events: u64,
}

impl LogicalProcess for SkewLp {
    type Msg = u64;
    fn handle(&mut self, now: SimTime, v: u64, ctx: &mut LpCtx<'_, u64>) {
        self.events += 1;
        let mut h = self.acc ^ (v & !REMOTE) ^ now.seconds().to_bits();
        for i in 0..self.work {
            h = h.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        self.acc = h;
        if v & REMOTE != 0 {
            return;
        }
        if now.seconds() + self.local_dt <= self.until {
            ctx.schedule_in(self.local_dt, h >> 32);
        }
        if self.events.is_multiple_of(CROSS_EVERY)
            && self.n > 1
            && now.seconds() + self.la <= self.until
        {
            ctx.send((ctx.me() + 1) % self.n, self.la, REMOTE | (h & 0xffff_ffff));
        }
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for SkewLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        ctx.schedule_in(0.0, ctx.me() as u64 + 1);
    }
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// LP 0 fires ~100× more often with ~200× the per-event compute.
fn hotspot(n: usize, until: f64) -> Vec<SkewLp> {
    (0..n)
        .map(|i| SkewLp {
            n,
            la: 0.25,
            until,
            local_dt: if i == 0 { 0.005 } else { 0.5 },
            work: if i == 0 { 2_000 } else { 10 },
            acc: 0x9e37 + i as u64,
            events: 0,
        })
        .collect()
}

/// Harmonic decay: LP `i` does `~1/(i+1)` of LP 0's per-event compute at
/// a uniform event rate — many light LPs, a few heavy ones.
fn zipf(n: usize, until: f64) -> Vec<SkewLp> {
    (0..n)
        .map(|i| SkewLp {
            n,
            la: 0.25,
            until,
            local_dt: 0.05,
            work: (2_000 / (i as u32 + 1)).max(1),
            acc: 0x51F0 + i as u64,
            events: 0,
        })
        .collect()
}

/// FNV-1a fold of per-LP final state; any divergence anywhere flips it.
fn fingerprint<'a>(lps: impl Iterator<Item = &'a SkewLp>) -> String {
    let mut h = 0xcbf29ce484222325u64;
    for lp in lps {
        for part in [lp.acc, lp.events] {
            h = (h ^ part).wrapping_mul(0x100000001b3);
        }
    }
    format!("{h:016x}")
}

struct Row {
    engine: String,
    events: u64,
    wall_s: f64,
    fingerprint: String,
    sync_label: String,
    sync: Json,
}

fn run_scenario(
    name: &str,
    proto: Vec<SkewLp>,
    until: f64,
    worker_counts: &[usize],
    migration_epoch: u64,
    progress: bool,
) -> (Vec<Row>, Option<TelemetryReport>) {
    let n = proto.len();
    let edges = ring_edges(n);
    let t_end = SimTime::new(until);
    let mut rows = Vec::new();
    let mut tel_out = None;

    let start = Instant::now();
    let seq = run_sequential(proto.clone(), &edges, t_end);
    rows.push(Row {
        engine: "sequential".into(),
        events: seq.total_events(),
        wall_s: start.elapsed().as_secs_f64(),
        fingerprint: fingerprint(seq.lps.iter()),
        sync_label: "-".into(),
        sync: Json::Obj(vec![]),
    });

    let start = Instant::now();
    let cmb = run_cmb(proto.clone(), &edges, t_end);
    let nulls = cmb.total_nulls();
    rows.push(Row {
        engine: format!("cmb ({n} threads)"),
        events: cmb.total_events(),
        wall_s: start.elapsed().as_secs_f64(),
        fingerprint: fingerprint(cmb.lps.iter()),
        sync_label: format!("{nulls} nulls"),
        sync: Json::Obj(vec![("nulls".into(), Json::Num(nulls as f64))]),
    });

    for &workers in worker_counts {
        for migration in [None, Some(migration_epoch)] {
            let cfg = WsConfig {
                workers,
                batch: 64,
                migration_epoch: migration,
            };
            let start = Instant::now();
            let (ws, tel) = if migration.is_some() {
                // Migration runs carry the telemetry sinks: scheduler
                // counters feed the Perfetto counter tracks, and the
                // learned placement is checked below.
                let mut tcfg = TelemetryConfig::new().every_events(2048);
                let reporter = (progress && Some(&workers) == worker_counts.last())
                    .then(|| Arc::new(ProgressReporter::new(until)));
                if let Some(rep) = &reporter {
                    tcfg = tcfg.with_progress(Arc::clone(rep));
                }
                let (ws, tel) = run_worksteal_telemetry(proto.clone(), &edges, t_end, cfg, tcfg);
                // Always close with the summary line: short runs finish
                // inside the reporter's wall interval and would otherwise
                // print nothing at all.
                if let Some(rep) = &reporter {
                    rep.finish();
                }
                (ws, Some(tel))
            } else {
                (run_worksteal_cfg(proto.clone(), &edges, t_end, cfg), None)
            };
            let wall = start.elapsed().as_secs_f64();
            let migr_tag = if migration.is_some() { "+migr" } else { "" };
            let mut sync = vec![
                ("workers".into(), Json::Num(ws.sched.workers as f64)),
                (
                    "migration_epoch".into(),
                    migration.map_or(Json::Null, |e| Json::Num(e as f64)),
                ),
                (
                    "bound_updates".into(),
                    Json::Num(ws.sched.bound_updates as f64),
                ),
                ("steals".into(), Json::Num(ws.sched.steals as f64)),
                ("parks".into(), Json::Num(ws.sched.parks as f64)),
                ("epochs".into(), Json::Num(ws.sched.epochs as f64)),
                ("migrations".into(), Json::Num(ws.sched.migrations as f64)),
            ];
            // ROADMAP item 2: the placement the rebalancer learned online
            // from its own cost telemetry must match what profile-guided
            // partitioning would build from the same observed costs — no
            // prior `lsds-prof` run needed. (Weighted imbalance over
            // workers; costs are wall-measured, hence the slack factor.)
            if migration.is_some() && ws.sched.workers > 1 && ws.sched.epochs > 0 {
                let costs: Vec<f64> = ws.cost_ns.iter().map(|&c| c as f64).collect();
                let prof = imbalance(
                    &profiled(&costs, ws.sched.workers),
                    &costs,
                    ws.sched.workers,
                );
                let online = ws.observed_imbalance();
                assert!(
                    online <= prof * 1.15 + 1e-6,
                    "{name} w={}: online-learned placement imbalance {online:.3} \
                     lost to profiled {prof:.3}",
                    ws.sched.workers
                );
                sync.push(("imbalance_online".into(), Json::Num(online)));
                sync.push(("imbalance_profiled".into(), Json::Num(prof)));
            }
            if let Some(tel) = tel {
                tel_out = Some(tel);
            }
            rows.push(Row {
                engine: format!("worksteal w={}{migr_tag}", ws.sched.workers),
                events: ws.total_events(),
                wall_s: wall,
                fingerprint: fingerprint(ws.lps.iter()),
                sync_label: format!(
                    "{} bounds, {} steals, {} migr",
                    ws.sched.bound_updates, ws.sched.steals, ws.sched.migrations
                ),
                sync: Json::Obj(sync),
            });
        }
    }

    let fp = rows[0].fingerprint.clone();
    for row in &rows {
        assert_eq!(
            row.fingerprint, fp,
            "{name}: {} diverged from sequential",
            row.engine
        );
        assert_eq!(
            row.events, rows[0].events,
            "{name}: {} event count",
            row.engine
        );
    }
    (rows, tel_out)
}

/// Max LP load over mean LP load under an assignment — 1.0 is perfect.
fn imbalance(assignment: &[usize], costs: &[f64], n_lps: usize) -> f64 {
    let mut load = vec![0.0f64; n_lps];
    for (e, &lp) in assignment.iter().enumerate() {
        load[lp] += costs[e];
    }
    let total: f64 = load.iter().sum();
    let max = load.iter().fold(0.0f64, |a, &b| a.max(b));
    max / (total / n_lps as f64)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let progress = args.iter().any(|a| a == "--progress");
    let workers_flag: Option<usize> = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--workers takes a number"));

    let n = if smoke { 8 } else { 32 };
    let until = if smoke { 8.0 } else { 40.0 };
    // Keep several epochs inside even the smoke run so the online
    // repartitioning check exercises real migrations in CI.
    let migration_epoch = if smoke { 500 } else { 5_000 };
    let worker_counts: Vec<usize> = match workers_flag {
        Some(w) => vec![w],
        None => vec![1, 2, 4],
    };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());

    println!(
        "work-stealing scheduler vs thread-per-LP ({n} LPs, {cores} core(s), horizon {until} s)\n"
    );
    let mut table =
        TextTable::with_columns(&["scenario", "engine", "events", "wall (ms)", "sync cost"]);
    let mut results: Vec<Json> = Vec::new();
    let mut headline: Option<f64> = None; // cmb wall / best ws wall on hotspot

    let mut last_tel: Option<TelemetryReport> = None;
    for (name, proto) in [("hotspot", hotspot(n, until)), ("zipf", zipf(n, until))] {
        let (rows, tel) = run_scenario(
            name,
            proto,
            until,
            &worker_counts,
            migration_epoch,
            progress,
        );
        if let Some(tel) = tel {
            last_tel = Some(tel);
        }
        let cmb_wall = rows
            .iter()
            .find(|r| r.engine.starts_with("cmb"))
            .map_or(0.0, |r| r.wall_s);
        let best_ws = rows
            .iter()
            .filter(|r| r.engine.starts_with("worksteal"))
            .map(|r| r.wall_s)
            .fold(f64::INFINITY, f64::min);
        if name == "hotspot" {
            headline = Some(cmb_wall / best_ws);
        }
        for row in rows {
            table.row(vec![
                name.into(),
                row.engine.clone(),
                format!("{}", row.events),
                format!("{:.1}", row.wall_s * 1e3),
                row.sync_label.clone(),
            ]);
            results.push(Json::Obj(vec![
                ("scenario".into(), Json::Str(name.into())),
                ("engine".into(), Json::Str(row.engine)),
                ("events".into(), Json::Num(row.events as f64)),
                ("wall_s".into(), Json::Num(row.wall_s)),
                ("fingerprint".into(), Json::Str(row.fingerprint)),
                ("sync".into(), row.sync),
            ]));
        }
    }

    // ---- partition: deterministic imbalance of the assignment itself ----
    let n_entities = if smoke { 32 } else { 128 };
    let n_lps = 8;
    let mut hot_costs = vec![1.0f64; n_entities];
    // one entity's fair share of the total: profiled can balance exactly
    hot_costs[0] = (n_entities as f64 - 1.0) / (n_lps as f64 - 1.0);
    let zipf_costs: Vec<f64> = (0..n_entities).map(|i| 1.0 / (i as f64 + 1.0)).collect();
    for (name, costs) in [("hot entity", &hot_costs), ("zipf costs", &zipf_costs)] {
        let block = imbalance(&block_partition(n_entities, n_lps), costs, n_lps);
        let rr = imbalance(&round_robin_partition(n_entities, n_lps), costs, n_lps);
        let prof = imbalance(&profiled(costs, n_lps), costs, n_lps);
        assert!(
            prof <= block + 1e-9 && prof <= rr + 1e-9,
            "profiled partition must not lose to count-based ones"
        );
        table.row(vec![
            "partition".into(),
            format!("imbalance: {name}"),
            format!("{n_entities} entities"),
            "-".into(),
            format!("block {block:.2} / rr {rr:.2} / profiled {prof:.2}"),
        ]);
        results.push(Json::Obj(vec![
            ("scenario".into(), Json::Str("partition".into())),
            ("costs".into(), Json::Str(name.into())),
            ("entities".into(), Json::Num(n_entities as f64)),
            ("lps".into(), Json::Num(n_lps as f64)),
            ("imbalance_block".into(), Json::Num(block)),
            ("imbalance_round_robin".into(), Json::Num(rr)),
            ("imbalance_profiled".into(), Json::Num(prof)),
        ]));
    }
    print!("{}", table.render());

    let speedup = headline.unwrap_or(1.0);
    println!(
        "\nhotspot: best work-stealing config {speedup:.2}x vs thread-per-LP CMB —\n\
         with {n} LPs on {cores} core(s) the OS scheduler pays a context switch\n\
         per blocking round while the worker pool just runs the next runnable\n\
         LP; identical fingerprints across every engine, worker count, and\n\
         migration setting."
    );

    // Export the last migration run's scheduler telemetry as Perfetto
    // counter tracks (per-worker steals/parks/activations, deque depths,
    // event rate) and validate the document round-trips.
    if let Some(tel) = &last_tel {
        let tracks = tel.counter_tracks();
        let out = std::fs::File::create("TRACE_worksteal.json").expect("create trace file");
        write_chrome_trace_with_counters(&SpanTrace::new(), &tracks, out)
            .expect("write TRACE_worksteal.json");
        let text = std::fs::read_to_string("TRACE_worksteal.json").expect("reread trace");
        let (slices, samples) = validate_chrome_trace_full(&text).expect("trace must validate");
        assert!(samples > 0, "counter tracks must carry samples");
        println!(
            "\nwrote TRACE_worksteal.json ({} counter tracks, {samples} samples, {slices} slices)",
            tracks.len()
        );
    }

    let mut doc = vec![
        ("experiment".into(), Json::Str("worksteal".into())),
        ("smoke".into(), Json::Bool(smoke)),
        ("lps".into(), Json::Num(n as f64)),
        ("host_cores".into(), Json::Num(cores as f64)),
        ("ws_speedup_vs_cmb_hotspot".into(), Json::Num(speedup)),
    ];
    if let Some(tel) = &last_tel {
        doc.push((
            "telemetry".into(),
            Json::Obj(vec![
                ("events".into(), Json::Num(tel.events() as f64)),
                ("steals".into(), Json::Num(tel.counter("ws.steals") as f64)),
                ("parks".into(), Json::Num(tel.counter("ws.parks") as f64)),
                (
                    "migrations".into(),
                    Json::Num(tel.counter("ws.migrations") as f64),
                ),
                (
                    "activations".into(),
                    Json::Num(tel.counter("ws.activations") as f64),
                ),
            ]),
        ));
    }
    doc.push(("results".into(), Json::Arr(results)));
    let doc = Json::Obj(doc);
    std::fs::write("BENCH_worksteal.json", doc.render_pretty() + "\n")
        .expect("write BENCH_worksteal.json");
    println!("\nwrote BENCH_worksteal.json");
}
