//! E6 — the MONARC LHC T0/T1 replication study (Legrand et al. 2005).
//!
//! "The experiment tested the behavior of the Tier architecture envisioned
//! by the two largest LHC experiments, CMS and ATLAS. The obtained results
//! indicated the role of using a data replication agent for the
//! intelligent transferring of the produced data. The obtained results
//! also showed that the existing capacity of 2.5 Gbps was not sufficient
//! and, in fact, not far afterwards the link was upgraded to a current
//! 30 Gbps." (§5)
//!
//! Part A sweeps the shared T0 uplink and reports the sustainability
//! verdict; part B contrasts agent-prestaged analysis with on-demand
//! pulls. `--csv` emits the sweep as a plottable series.

use lsds_simulators::monarc::Monarc;
use lsds_trace::{ScatterPlot, Series, TextTable};

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let sweep = [0.6, 1.25, 2.5, 5.0, 10.0, 12.5, 15.0, 20.0, 30.0];

    let mut table = TextTable::with_columns(&[
        "uplink (Gbps)",
        "offered (Gbps)",
        "produced",
        "shipped",
        "mean lag (s)",
        "max lag (s)",
        "verdict",
    ]);
    let mut mean_series = Series::new("mean_availability_lag_s");
    let mut max_series = Series::new("max_availability_lag_s");
    for &uplink in &sweep {
        let rep = Monarc {
            uplink_gbps: uplink,
            datasets: 40,
            ..Monarc::default()
        }
        .run(2.0e6);
        table.row(vec![
            format!("{uplink:.2}"),
            format!("{:.1}", rep.offered_gbps),
            format!("{}", rep.produced),
            format!("{}", rep.shipped),
            format!("{:.0}", rep.mean_availability_lag),
            format!("{:.0}", rep.max_availability_lag),
            if rep.sustainable {
                "sufficient".into()
            } else {
                "NOT sufficient".into()
            },
        ]);
        mean_series.push(uplink, rep.mean_availability_lag);
        max_series.push(uplink, rep.max_availability_lag);
    }

    if csv {
        print!("{}", Series::merged_csv(&[mean_series, max_series]));
        return;
    }

    println!("E6 — MONARC LHC T0→T1 study");
    println!("5 tier-1 centers; 100 GB datasets every 320 s (≈2.5 Gbps raw,");
    println!("≈12.5 Gbps of T0 egress demand once replicated to all T1s)\n");
    print!("{}", table.render());

    println!("\ndataset availability lag vs uplink (log y):\n");
    let plot = ScatterPlot {
        log_y: true,
        ..ScatterPlot::default()
    };
    print!(
        "{}",
        plot.render(&[mean_series.clone(), max_series.clone()])
    );

    println!("\nPart B — the replication agent's role (10 Gbps uplink):");
    let mut t2 = TextTable::with_columns(&["agent", "mean stage (s)", "mean makespan (s)", "jobs"]);
    for agent in [false, true] {
        let rep = Monarc {
            agent,
            analysis_jobs: 25,
            datasets: 10,
            uplink_gbps: 10.0,
            seed: 3,
            ..Monarc::default()
        }
        .run(2.0e6);
        t2.row(vec![
            if agent { "on" } else { "off" }.into(),
            format!("{:.1}", rep.grid.mean_stage_time),
            format!("{:.1}", rep.grid.mean_makespan),
            format!("{}", rep.grid.records.len()),
        ]);
    }
    print!("{}", t2.render());
    println!(
        "\nReading: the 2.5 Gbps row cannot sustain the replicated production\n\
         stream (lag grows with every dataset); capacity at or above the\n\
         offered 12.5 Gbps drains it — and the 30 Gbps upgrade is comfortably\n\
         sufficient. The agent removes staging from the analysis path."
    );
}
