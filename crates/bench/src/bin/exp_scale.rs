//! Scalability — the third pillar of §5's future trends.
//!
//! "Another trend relates to the need to model very large distributed
//! systems, consisting of a great number of resources. Many of today's
//! simulators lack the capability to simulate large distributed systems
//! because their simulation engines are limited … The simulation engine
//! can be optimized … by using advanced priority queuing structures for
//! the simulation events, by optimizing the way in which simulated
//! entities are being scheduled" (§5).
//!
//! The experiment grows a flat grid from 10 to 1 000 sites under a
//! proportional workload and reports wall time and event throughput —
//! once with the default binary heap and once with the amortized-O(1)
//! ladder queue, connecting the §5 prescription to measured capacity.

use lsds_core::{EventDriven, QueueKind, SimTime};
use lsds_grid::model::{GridConfig, GridEvent, GridModel};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::RoundRobin;
use lsds_grid::{Activity, ReplicationPolicy};
use lsds_stats::{Dist, SimRng};
use lsds_trace::TextTable;
use std::time::Instant;

fn scenario(n_sites: usize, seed: u64) -> GridConfig {
    let grid = flat_grid(
        vec![
            SiteSpec {
                cores: 4,
                ..SiteSpec::default()
            };
            n_sites
        ],
        lsds_net::mbps(1000.0),
        0.005,
    );
    let master = SimRng::new(seed);
    // one activity per 10 sites, each submitting 200 jobs
    let activities = (0..n_sites.div_ceil(10))
        .map(|i| {
            Activity::compute(
                i as u32,
                5.0,
                Dist::exp_mean(30.0),
                master.fork(i as u64 + 1),
            )
            .with_limit(200)
        })
        .collect();
    GridConfig {
        grid,
        policy: Box::new(RoundRobin::default()),
        replication: ReplicationPolicy::None,
        activities,
        production: None,
        agent: None,
        eligible: None,
        initial_files: vec![],
        seed,
    }
}

fn run(n_sites: usize, kind: QueueKind) -> (usize, u64, f64) {
    let model = GridModel::new(scenario(n_sites, 77));
    let mut sim = EventDriven::with_queue(model, kind.build::<GridEvent>());
    sim.schedule(SimTime::ZERO, GridEvent::Init);
    let start = Instant::now();
    sim.run_until(SimTime::new(1.0e7));
    let wall = start.elapsed().as_secs_f64();
    let jobs = sim.model().report().records.len();
    (jobs, sim.processed(), wall)
}

fn main() {
    println!("scalability — grid size sweep (4-core sites, 200 jobs per 10 sites)\n");
    let mut table = TextTable::with_columns(&[
        "sites",
        "jobs",
        "events",
        "heap wall (ms)",
        "ladder wall (ms)",
        "events/s (ladder)",
    ]);
    for &n in &[10usize, 50, 100, 500, 1000] {
        let (jobs_h, ev_h, wall_h) = run(n, QueueKind::BinaryHeap);
        let (jobs_l, ev_l, wall_l) = run(n, QueueKind::Ladder);
        assert_eq!(jobs_h, jobs_l);
        assert_eq!(ev_h, ev_l, "queue swap must not change the simulation");
        table.row(vec![
            format!("{n}"),
            format!("{jobs_l}"),
            format!("{ev_l}"),
            format!("{:.1}", wall_h * 1e3),
            format!("{:.1}", wall_l * 1e3),
            format!("{:.0}", ev_l as f64 / wall_l),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: a 100× larger modeled system costs ~16× in per-event\n\
         throughput: the engine itself is O(1)-ish per event (see E2), but\n\
         each broker placement scans every site's state — O(sites) per job —\n\
         which is exactly the \"optimizing the way in which simulated\n\
         entities are being scheduled\" lever §5 identifies. The queue\n\
         structures tie here because the grid's pending set stays small\n\
         relative to E2's stress sizes."
    );
}
