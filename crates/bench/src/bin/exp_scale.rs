//! `exp_scale` — the million-entity capacity experiment (§5's scale pillar).
//!
//! "Another trend relates to the need to model very large distributed
//! systems, consisting of a great number of resources. Many of today's
//! simulators lack the capability to simulate large distributed systems
//! because their simulation engines are limited … The simulation engine
//! can be optimized … by using advanced priority queuing structures for
//! the simulation events, by optimizing the way in which simulated
//! entities are being scheduled" (§5).
//!
//! Runs the sliding-window transfer scenario (`lsds_bench::run_net_scale`)
//! at two scales — 1M jobs over 4k entities, and 1M jobs over 120k
//! entities — across engine × event-list variants, reporting events/sec
//! and peak RSS per variant. Each variant executes in its own child
//! process so `VmHWM` (a per-process high-water mark) is meaningful.
//!
//! Writes `BENCH_scale.json`. If `BENCH_scale_baseline.json` is present
//! it is embedded verbatim under `"baseline"`, with per-variant
//! `"speedup"` ratios, so the committed file documents the before/after.
//! The honest way to produce the baseline is to build the *pre-refactor*
//! tree (a worktree at the commit before the engine-core changes) with a
//! port of this scenario and run both binaries back-to-back on the same
//! machine — the container's throughput drifts ±30% between phases, so a
//! baseline from another day is not comparable. `--baseline-capture`
//! exists to regenerate the same file shape from this tree. A traced run
//! per scale contributes the top-3 handler-kind wall-time profile from
//! `lsds-prof`.
//!
//! Flags: `--smoke` (tiny sizes for CI), `--baseline-capture` (small
//! scale only, writes the baseline snapshot), `--one CONFIG:VARIANT`
//! (internal: run one variant and print a JSON line).

use lsds_bench::{run_net_scale, run_net_scale_time_driven, run_net_scale_traced, ScaleResult};
use lsds_core::{BinaryHeapQueue, CalendarQueue, LadderQueue, PooledQueue, SortedListQueue};
use lsds_obs::TraceConfig;
use lsds_trace::{Json, TextTable};
use std::process::Command;

const SEED: u64 = 0x5CA1E;

/// `(pairs, per_pair, window)` per named scenario size.
fn shape(config: &str) -> (usize, u32, usize) {
    match config {
        // CI smoke: seconds, still covers every variant end to end
        "smoke" => (64, 8, 16),
        // 1M jobs, 4k entities: small enough for the pre-refactor dense
        // all-pairs routing table, the before/after comparison point
        "net_1m" => (1000, 1000, 256),
        // 1M jobs, 120k entities (60k hosts + 60k links): the headline
        // scale target; needs lazy routing to be feasible at all
        "net_1m_100k" => (30_000, 34, 256),
        other => panic!("unknown config {other}"),
    }
}

/// Runs an `ed-*` variant with its event list as a concrete type, so the
/// engine's queue calls monomorphize and inline instead of dispatching
/// through `Box<dyn EventQueue>`; `ed-pooled-*` wraps the same structure
/// in the slab-backed payload pool.
fn run_ed(variant: &str, pairs: usize, per_pair: u32, window: usize) -> Option<ScaleResult> {
    let r = match variant {
        "ed-binary-heap" => run_net_scale(pairs, per_pair, window, BinaryHeapQueue::new(), SEED),
        "ed-sorted-list" => run_net_scale(pairs, per_pair, window, SortedListQueue::new(), SEED),
        "ed-calendar" => run_net_scale(pairs, per_pair, window, CalendarQueue::new(), SEED),
        "ed-ladder" => run_net_scale(pairs, per_pair, window, LadderQueue::new(), SEED),
        "ed-pooled-binary-heap" => run_net_scale(
            pairs,
            per_pair,
            window,
            PooledQueue::new(BinaryHeapQueue::new()),
            SEED,
        ),
        "ed-pooled-sorted-list" => run_net_scale(
            pairs,
            per_pair,
            window,
            PooledQueue::new(SortedListQueue::new()),
            SEED,
        ),
        "ed-pooled-calendar" => run_net_scale(
            pairs,
            per_pair,
            window,
            PooledQueue::new(CalendarQueue::new()),
            SEED,
        ),
        "ed-pooled-ladder" => run_net_scale(
            pairs,
            per_pair,
            window,
            PooledQueue::new(LadderQueue::new()),
            SEED,
        ),
        _ => return None,
    };
    Some(r)
}

/// Peak resident-set size of this process, in bytes (`VmHWM`).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// Child-process entry: run one `config:variant`, print one JSON object.
fn run_one(spec: &str) -> Json {
    let (config, variant) = spec.split_once(':').expect("--one CONFIG:VARIANT");
    let (pairs, per_pair, window) = shape(config);
    let r = if let Some(r) = run_ed(variant, pairs, per_pair, window) {
        r
    } else if variant == "td" {
        run_net_scale_time_driven(pairs, per_pair, window, 0.25, SEED)
    } else {
        panic!("unknown variant {variant}");
    };
    assert_eq!(r.completions, pairs as u64 * per_pair as u64);
    Json::Obj(vec![
        ("config".into(), Json::Str(config.into())),
        ("variant".into(), Json::Str(variant.into())),
        ("jobs".into(), Json::Num(r.completions as f64)),
        ("entities".into(), Json::Num(r.entities as f64)),
        ("events".into(), Json::Num(r.events as f64)),
        ("wall_s".into(), Json::Num(r.wall)),
        (
            "events_per_sec".into(),
            Json::Num(r.events as f64 / r.wall.max(1e-9)),
        ),
        (
            "fingerprint".into(),
            Json::Str(format!("{:016x}", r.fingerprint)),
        ),
        ("peak_rss_bytes".into(), Json::Num(peak_rss_bytes() as f64)),
    ])
}

/// Traced run (event-driven, calendar queue): top-3 handler kinds by
/// total wall time, from the lsds-prof span profile.
fn run_profile(config: &str) -> Json {
    let (pairs, per_pair, window) = shape(config);
    // sample 1-in-4 beyond smoke scale to bound trace memory
    let cfg = if config == "smoke" {
        TraceConfig::default()
    } else {
        TraceConfig::with_capacity(1 << 22).sampled(4)
    };
    let (_, trace) = run_net_scale_traced(pairs, per_pair, window, CalendarQueue::new(), SEED, cfg);
    let profile = trace.profile();
    let mut kinds: Vec<_> = profile
        .kinds
        .iter()
        .map(|k| {
            let count = k.wall_ns.count();
            let total = k.wall_ns.mean() * count as f64;
            (k.name, count, k.wall_ns.mean(), total)
        })
        .collect();
    kinds.sort_by(|a, b| b.3.total_cmp(&a.3));
    kinds.truncate(3);
    Json::Arr(
        kinds
            .into_iter()
            .map(|(name, count, mean_ns, total_ns)| {
                Json::Obj(vec![
                    ("kind".into(), Json::Str(name.into())),
                    ("spans".into(), Json::Num(count as f64)),
                    ("mean_ns".into(), Json::Num(mean_ns)),
                    ("total_ns".into(), Json::Num(total_ns)),
                ])
            })
            .collect(),
    )
}

fn spawn_one(spec: &str, trials: u32) -> Json {
    let exe = std::env::current_exe().expect("current_exe");
    // Throughput is reported as the best of `trials` identical child runs:
    // the trajectory is deterministic (fingerprints are asserted equal), so
    // trials differ only by scheduler/frequency noise, and the fastest run
    // is the closest observation of the code's actual cost.
    let mut best: Option<Json> = None;
    for _ in 0..trials {
        let out = Command::new(&exe)
            .args(["--one", spec])
            .output()
            .expect("spawn exp_scale child");
        assert!(
            out.status.success(),
            "variant {spec} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        let r = Json::parse(text.trim())
            .unwrap_or_else(|e| panic!("variant {spec}: bad JSON ({e:?}): {text}"));
        match &best {
            Some(b) => {
                assert_eq!(
                    get_str(b, "fingerprint"),
                    get_str(&r, "fingerprint"),
                    "{spec}: trials diverged"
                );
                if get_num(&r, "events_per_sec") > get_num(b, "events_per_sec") {
                    best = Some(r);
                }
            }
            None => best = Some(r),
        }
    }
    let mut best = best.expect("at least one trial");
    if let Json::Obj(fields) = &mut best {
        fields.push(("trials".into(), Json::Num(trials as f64)));
    }
    best
}

fn get_num(obj: &Json, key: &str) -> f64 {
    let Json::Obj(fields) = obj else { return 0.0 };
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Json::Num(n) => Some(*n),
            _ => None,
        })
        .unwrap_or(0.0)
}

fn get_str<'a>(obj: &'a Json, key: &str) -> &'a str {
    let Json::Obj(fields) = obj else { return "" };
    fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        })
        .unwrap_or("")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--one") {
        let spec = args.get(i + 1).expect("--one CONFIG:VARIANT");
        println!("{}", run_one(spec).render_pretty());
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let baseline_capture = args.iter().any(|a| a == "--baseline-capture");

    let variants = [
        "ed-binary-heap",
        "ed-sorted-list",
        "ed-calendar",
        "ed-ladder",
        "ed-pooled-binary-heap",
        "ed-pooled-sorted-list",
        "ed-pooled-calendar",
        "ed-pooled-ladder",
        "td",
    ];
    let configs: &[&str] = if smoke {
        &["smoke"]
    } else if baseline_capture {
        &["net_1m"]
    } else {
        &["net_1m", "net_1m_100k"]
    };

    let mut table = TextTable::with_columns(&[
        "config",
        "variant",
        "jobs",
        "entities",
        "events",
        "wall (s)",
        "events/s",
        "peak RSS (MB)",
    ]);
    let mut results = Vec::new();
    for &config in configs {
        let mut fp: Option<String> = None;
        for &variant in &variants {
            let spec = format!("{config}:{variant}");
            eprintln!("running {spec} ...");
            let r = spawn_one(&spec, if smoke { 1 } else { 3 });
            // every event-driven queue variant must produce the identical
            // trajectory; time-driven legitimately quantizes
            if variant.starts_with("ed-") {
                let this = get_str(&r, "fingerprint").to_string();
                match &fp {
                    None => fp = Some(this),
                    Some(f) => assert_eq!(f, &this, "{spec}: trajectory diverged"),
                }
            }
            table.row(vec![
                config.into(),
                variant.into(),
                format!("{}", get_num(&r, "jobs") as u64),
                format!("{}", get_num(&r, "entities") as u64),
                format!("{}", get_num(&r, "events") as u64),
                format!("{:.3}", get_num(&r, "wall_s")),
                format!("{:.0}", get_num(&r, "events_per_sec")),
                format!("{:.1}", get_num(&r, "peak_rss_bytes") / 1.0e6),
            ]);
            results.push(r);
        }
    }

    let profile_config = if smoke { "smoke" } else { "net_1m" };
    eprintln!("profiling {profile_config} ...");
    let profile = run_profile(profile_config);

    let baseline: Option<Json> = if baseline_capture {
        None
    } else {
        std::fs::read_to_string("BENCH_scale_baseline.json")
            .ok()
            .and_then(|s| Json::parse(&s).ok())
    };
    // before/after events/sec ratio for every (config, variant) cell the
    // baseline also measured
    let mut speedups = Vec::new();
    if let Some(Json::Obj(fields)) = &baseline {
        let brs = fields.iter().find_map(|(k, v)| match v {
            Json::Arr(rs) if k == "results" => Some(rs),
            _ => None,
        });
        for r in &results {
            let (c, v) = (get_str(r, "config"), get_str(r, "variant"));
            let old = brs
                .into_iter()
                .flatten()
                .find(|b| get_str(b, "config") == c && get_str(b, "variant") == v)
                .map(|b| get_num(b, "events_per_sec"))
                .unwrap_or(0.0);
            if old > 0.0 {
                speedups.push(Json::Obj(vec![
                    ("config".into(), Json::Str(c.into())),
                    ("variant".into(), Json::Str(v.into())),
                    (
                        "events_per_sec_ratio".into(),
                        Json::Num(get_num(r, "events_per_sec") / old),
                    ),
                ]));
            }
        }
    }

    println!("E-scale — million-entity engine core");
    println!("{}", table.render());

    let mut doc = vec![
        ("experiment".into(), Json::Str("engine_scale".into())),
        ("seed".into(), Json::Num(SEED as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("results".into(), Json::Arr(results)),
        (
            "profile_top3".into(),
            Json::Obj(vec![
                ("config".into(), Json::Str(profile_config.into())),
                ("kinds".into(), profile),
            ]),
        ),
    ];
    let path = if baseline_capture {
        "BENCH_scale_baseline.json"
    } else {
        if !speedups.is_empty() {
            doc.push(("speedup".into(), Json::Arr(speedups)));
        }
        if let Some(base) = baseline {
            doc.push(("baseline".into(), base));
        }
        "BENCH_scale.json"
    };
    let doc = Json::Obj(doc);
    std::fs::write(path, doc.render_pretty() + "\n").expect("write bench json");
    println!("wrote {path}");
}
