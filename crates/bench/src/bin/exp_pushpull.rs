//! E8 — push (ChicagoSim) vs pull (OptorSim) replication on one
//! workload, across popularity skews.
//!
//! "It also allows for data replication but with a 'push' model in which,
//! when a site contains a popular data file, it will replicate it to
//! remote sites, rather than the 'pull' model used in OptorSim." (§4)

use lsds_core::SimTime;
use lsds_grid::model::{GridConfig, GridModel, GridReport};
use lsds_grid::organization::{flat_grid, SiteSpec};
use lsds_grid::scheduler::RoundRobin;
use lsds_grid::{Activity, ReplicationPolicy, SiteId};
use lsds_stats::{Dist, SimRng};
use lsds_trace::TextTable;

/// One shared workload: 6 sites, 30 files spread around, 180 Zipf jobs.
fn run(policy: ReplicationPolicy, zipf_s: f64, seed: u64) -> GridReport {
    let grid = flat_grid(
        vec![
            SiteSpec {
                cores: 8,
                disk: 15.0e9,
                ..SiteSpec::default()
            };
            6
        ],
        lsds_net::mbps(622.0),
        0.01,
    );
    let initial_files = (0..30).map(|i| (1.0e9, SiteId(i % 6))).collect();
    let master = SimRng::new(seed);
    let cfg = GridConfig {
        grid,
        policy: Box::new(RoundRobin::default()),
        replication: policy,
        activities: vec![Activity::analysis(
            0,
            40.0,
            Dist::exp_mean(100.0),
            2,
            30,
            zipf_s,
            master.fork(1),
        )
        .with_limit(180)],
        production: None,
        agent: None,
        eligible: None,
        initial_files,
        seed,
    };
    let mut sim = GridModel::build(cfg);
    sim.run_until(SimTime::new(1.0e7));
    sim.model().report()
}

fn main() {
    println!("E8 — push vs pull replication (180 jobs, 6 sites, 30 files)\n");
    let mut table = TextTable::with_columns(&[
        "zipf s",
        "policy",
        "mean job (s)",
        "mean staging (s)",
        "WAN (GB)",
        "pushes",
    ]);
    for &zipf_s in &[0.0, 0.6, 1.0, 1.4] {
        for (policy, label) in [
            (ReplicationPolicy::PullLru, "pull (OptorSim)"),
            (
                ReplicationPolicy::Push { threshold: 4 },
                "push (ChicagoSim)",
            ),
            (ReplicationPolicy::None, "none"),
        ] {
            let rep = run(policy, zipf_s, 21);
            assert_eq!(rep.records.len(), 180);
            table.row(vec![
                format!("{zipf_s:.1}"),
                label.into(),
                format!("{:.1}", rep.mean_makespan),
                format!("{:.1}", rep.mean_stage_time),
                format!("{:.1}", rep.wan_bytes / 1e9),
                format!("{}", rep.pushes),
            ]);
        }
    }
    print!("{}", table.render());
    println!(
        "\nReading: pull reacts to every consumer and wins across the board\n\
         here. Push fires on *any* file crossing the threshold: at s = 0 the\n\
         pushes are numerous but useless (uniform accesses — WAN even exceeds\n\
         no-replication, since proactive copies are pure overhead); as skew\n\
         grows the pushed hot files absorb later accesses and push pulls\n\
         ahead of no-replication — the regime ChicagoSim was built for."
    );
}
