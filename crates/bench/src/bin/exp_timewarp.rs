//! `exp_timewarp` — conservative vs optimistic synchronization (E4's
//! second leg).
//!
//! E4 (`exp_parallel`) showed conservative CMB paying for short lookahead
//! in null messages: the blocking bound advances by `lookahead` per null,
//! so halving lookahead doubles the sync traffic while the event count
//! stays fixed. Time Warp (Jefferson 1985) removes the dependence on
//! lookahead entirely — LPs speculate ahead and repair mis-speculation
//! with rollback + anti-messages — trading null messages for wasted work.
//! This experiment runs the same workloads under all four engines
//! (CMB, timestep, Time Warp, and the work-stealing scheduler):
//!
//! * `e4` — the E4 ring with dense internal compute and cross-LP traffic
//!   at `delay == lookahead`, swept from comfortable (1.0) down to short
//!   (0.02), the regime where the paper's "considerable efforts and
//!   expertise" quote bites;
//! * `scale` — the PR 6 throughput scenario re-partitioned over LPs:
//!   each LP burns through a fixed budget of jitter-spaced job
//!   completions (the sliding-window transfer shape without the network
//!   model), with a cross notification every 32 completions.
//!
//! All engines must deliver the identical event set and final state
//! fingerprint; the point of the table is the synchronization cost
//! column: nulls/event for CMB, windows for timestep, rolled-back work +
//! anti-messages + GVT rounds for Time Warp.
//!
//! Writes `BENCH_timewarp.json`. Flags: `--smoke` (tiny sizes for CI),
//! `--workers N` (worker threads for the work-stealing rows; default
//! host parallelism).

use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{
    run_cmb, run_timestep, run_timewarp_cfg, run_worksteal_cfg, LogicalProcess, LpCtx, SaveState,
    TwConfig, TwReport, WsConfig,
};
use lsds_trace::{Json, TextTable};
use std::time::Instant;

/// Per-event model computation, identical under every engine.
fn busy_work(seed: u64, iters: u32) -> u64 {
    let mut x = seed | 1;
    for _ in 0..iters {
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) ^ 0xD1B5;
    }
    x
}

#[derive(Clone, Copy)]
enum Ev {
    /// Locally scheduled work (self-clocking chain).
    Internal,
    /// Cross-LP notification: folds into state, schedules nothing.
    Cross(u64),
}

// ---- e4: dense internal compute, cross traffic at delay == lookahead ----

const E4_PERIOD: f64 = 0.1;
const E4_CROSS_EVERY: u64 = 5;
const E4_WORK_ITERS: u32 = 2_000;

#[derive(Clone)]
struct E4Lp {
    n: usize,
    la: f64,
    horizon: f64,
    counter: u64,
    sink: u64,
}

impl LogicalProcess for E4Lp {
    type Msg = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, ctx: &mut LpCtx<'_, Ev>) {
        self.counter += 1;
        let v = match ev {
            Ev::Internal => self.counter,
            Ev::Cross(x) => x,
        };
        self.sink ^= busy_work(v ^ now.seconds().to_bits(), E4_WORK_ITERS);
        if let Ev::Internal = ev {
            if now.seconds() + E4_PERIOD <= self.horizon {
                ctx.schedule_in(E4_PERIOD, Ev::Internal);
            }
            if self.counter.is_multiple_of(E4_CROSS_EVERY)
                && now.seconds() + self.la <= self.horizon
            {
                ctx.send((ctx.me() + 1) % self.n, self.la, Ev::Cross(self.sink));
            }
        }
    }
    fn lookahead(&self) -> f64 {
        self.la
    }
}

impl InitialEvents for E4Lp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, Ev>) {
        ctx.schedule_in(0.0, Ev::Internal);
    }
}

impl SaveState for E4Lp {
    type Saved = (u64, u64);
    fn save(&self) -> (u64, u64) {
        (self.counter, self.sink)
    }
    fn restore(&mut self, saved: (u64, u64)) {
        self.counter = saved.0;
        self.sink = saved.1;
    }
}

fn e4_lps(n: usize, la: f64, horizon: f64) -> Vec<E4Lp> {
    (0..n)
        .map(|_| E4Lp {
            n,
            la,
            horizon,
            counter: 0,
            sink: 0,
        })
        .collect()
}

// ---- scale: PR 6 job-budget throughput shape, partitioned over LPs ----

const SCALE_CROSS_EVERY: u64 = 32;
const SCALE_LA: f64 = 1.0;

/// Deterministic per-LP jitter stream; completions are spaced
/// `0.5 + u` apart with `u ∈ [0, 1)`, so every delay is ≥ lookahead/2
/// and cross sends at exactly `SCALE_LA` satisfy CMB's contract.
#[inline]
fn lcg(x: &mut u64) -> f64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*x >> 11) as f64 / (1u64 << 53) as f64
}

#[derive(Clone)]
struct ScaleLp {
    n: usize,
    jobs_left: u64,
    rng: u64,
    done: u64,
    acc: u64,
}

impl LogicalProcess for ScaleLp {
    type Msg = Ev;
    fn handle(&mut self, now: SimTime, ev: Ev, ctx: &mut LpCtx<'_, Ev>) {
        self.done += 1;
        let v = match ev {
            Ev::Internal => self.done,
            Ev::Cross(x) => x,
        };
        self.acc = self
            .acc
            .wrapping_mul(6364136223846793005)
            .wrapping_add(v ^ now.seconds().to_bits());
        if let Ev::Internal = ev {
            if self.jobs_left > 0 {
                self.jobs_left -= 1;
                let dt = 0.5 + lcg(&mut self.rng);
                ctx.schedule_in(dt, Ev::Internal);
            }
            if self.done.is_multiple_of(SCALE_CROSS_EVERY) && self.n > 1 {
                ctx.send((ctx.me() + 1) % self.n, SCALE_LA, Ev::Cross(self.acc));
            }
        }
    }
    fn lookahead(&self) -> f64 {
        SCALE_LA
    }
}

impl InitialEvents for ScaleLp {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, Ev>) {
        ctx.schedule_in(0.0, Ev::Internal);
    }
}

impl SaveState for ScaleLp {
    type Saved = (u64, u64, u64, u64);
    fn save(&self) -> (u64, u64, u64, u64) {
        (self.jobs_left, self.rng, self.done, self.acc)
    }
    fn restore(&mut self, saved: (u64, u64, u64, u64)) {
        self.jobs_left = saved.0;
        self.rng = saved.1;
        self.done = saved.2;
        self.acc = saved.3;
    }
}

fn scale_lps(n: usize, jobs_per_lp: u64) -> Vec<ScaleLp> {
    (0..n)
        .map(|i| ScaleLp {
            n,
            jobs_left: jobs_per_lp,
            rng: 0x5CA1E ^ (i as u64).wrapping_mul(0x9E37_79B9),
            done: 0,
            acc: 0,
        })
        .collect()
}

/// Exact end of the jitter chains: replay each LP's delay stream. Keeps
/// `t_end` tight so CMB's termination tail costs only a handful of nulls.
fn scale_t_end(n: usize, jobs_per_lp: u64) -> f64 {
    let mut max_end = 0.0f64;
    for lp in scale_lps(n, jobs_per_lp) {
        let mut rng = lp.rng;
        let mut t = 0.0;
        for _ in 0..jobs_per_lp {
            t += 0.5 + lcg(&mut rng);
        }
        max_end = max_end.max(t);
    }
    // cross sends go at +SCALE_LA from a completion, never later than
    // the last completion + SCALE_LA
    max_end + SCALE_LA
}

fn ring_edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

/// XOR-fold of per-LP state: any divergence between engines flips bits.
fn fingerprint(parts: impl Iterator<Item = u64>) -> String {
    let mut h = 0xcbf29ce484222325u64;
    for p in parts {
        h = (h ^ p).wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

struct EngineRow {
    engine: &'static str,
    events: u64,
    wall_s: f64,
    fingerprint: String,
    sync: Json,
    sync_label: String,
}

fn tw_sync(report: &TwReport<impl Sized>, window: f64) -> (Json, String) {
    let gvt_rounds: u64 = report.stats.iter().map(|s| s.gvt_rounds).sum();
    let annihilated: u64 = report.stats.iter().map(|s| s.annihilated).sum();
    let json = Json::Obj(vec![
        ("window".into(), Json::Num(window)),
        (
            "processed".into(),
            Json::Num(report.total_processed() as f64),
        ),
        (
            "rolled_back".into(),
            Json::Num(report.total_rolled_back() as f64),
        ),
        (
            "rollbacks".into(),
            Json::Num(report.total_rollbacks() as f64),
        ),
        ("antis_sent".into(), Json::Num(report.total_antis() as f64)),
        ("annihilated".into(), Json::Num(annihilated as f64)),
        ("gvt_rounds".into(), Json::Num(gvt_rounds as f64)),
        ("efficiency".into(), Json::Num(report.efficiency())),
    ]);
    let label = format!(
        "{} rolled back, {} antis, eff {:.2}",
        report.total_rolled_back(),
        report.total_antis(),
        report.efficiency()
    );
    (json, label)
}

fn ws_sync(sched: &lsds_parallel::WsSchedStats) -> (Json, String) {
    let json = Json::Obj(vec![
        ("workers".into(), Json::Num(sched.workers as f64)),
        (
            "bound_updates".into(),
            Json::Num(sched.bound_updates as f64),
        ),
        ("steals".into(), Json::Num(sched.steals as f64)),
        ("parks".into(), Json::Num(sched.parks as f64)),
    ]);
    let label = format!(
        "{} bounds, {} steals ({}w)",
        sched.bound_updates, sched.steals, sched.workers
    );
    (json, label)
}

fn run_e4(n: usize, la: f64, horizon: f64, ws_workers: usize) -> Vec<EngineRow> {
    let t_end = SimTime::new(horizon);
    let mut rows = Vec::new();

    let start = Instant::now();
    let cmb = run_cmb(e4_lps(n, la, horizon), &ring_edges(n), t_end);
    let wall = start.elapsed().as_secs_f64();
    let nulls = cmb.total_nulls();
    let ev = cmb.total_events();
    rows.push(EngineRow {
        engine: "cmb",
        events: ev,
        wall_s: wall,
        fingerprint: fingerprint(cmb.lps.iter().map(|l| l.sink ^ l.counter)),
        sync: Json::Obj(vec![
            ("nulls".into(), Json::Num(nulls as f64)),
            (
                "nulls_per_event".into(),
                Json::Num(nulls as f64 / ev as f64),
            ),
        ]),
        sync_label: format!("{nulls} nulls ({:.2}/ev)", nulls as f64 / ev as f64),
    });

    let start = Instant::now();
    let ts = run_timestep(e4_lps(n, la, horizon), la, t_end);
    let wall = start.elapsed().as_secs_f64();
    rows.push(EngineRow {
        engine: "timestep",
        events: ts.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(ts.lps.iter().map(|l| l.sink ^ l.counter)),
        sync: Json::Obj(vec![("windows".into(), Json::Num(ts.windows as f64))]),
        sync_label: format!("{} windows", ts.windows),
    });

    let start = Instant::now();
    // bounded optimism: on an oversubscribed host, unbounded speculation
    // lets one LP run to the horizon before its peers are scheduled at
    // all; a few periods of headroom keeps rollbacks shallow
    let cfg = TwConfig {
        window: 4.0 * E4_PERIOD,
        ..TwConfig::default()
    };
    let tw = run_timewarp_cfg(e4_lps(n, la, horizon), &ring_edges(n), t_end, cfg);
    let wall = start.elapsed().as_secs_f64();
    let (sync, sync_label) = tw_sync(&tw, cfg.window);
    rows.push(EngineRow {
        engine: "timewarp",
        events: tw.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(tw.lps.iter().map(|l| l.sink ^ l.counter)),
        sync,
        sync_label,
    });

    let start = Instant::now();
    let ws = run_worksteal_cfg(
        e4_lps(n, la, horizon),
        &ring_edges(n),
        t_end,
        WsConfig {
            workers: ws_workers,
            ..WsConfig::default()
        },
    );
    let wall = start.elapsed().as_secs_f64();
    let (sync, sync_label) = ws_sync(&ws.sched);
    rows.push(EngineRow {
        engine: "worksteal",
        events: ws.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(ws.lps.iter().map(|l| l.sink ^ l.counter)),
        sync,
        sync_label,
    });
    rows
}

fn run_scale(n: usize, jobs_per_lp: u64, ws_workers: usize) -> Vec<EngineRow> {
    let t_end = SimTime::new(scale_t_end(n, jobs_per_lp));
    let mut rows = Vec::new();

    let start = Instant::now();
    let cmb = run_cmb(scale_lps(n, jobs_per_lp), &ring_edges(n), t_end);
    let wall = start.elapsed().as_secs_f64();
    let nulls = cmb.total_nulls();
    let ev = cmb.total_events();
    rows.push(EngineRow {
        engine: "cmb",
        events: ev,
        wall_s: wall,
        fingerprint: fingerprint(cmb.lps.iter().map(|l| l.acc)),
        sync: Json::Obj(vec![
            ("nulls".into(), Json::Num(nulls as f64)),
            (
                "nulls_per_event".into(),
                Json::Num(nulls as f64 / ev as f64),
            ),
        ]),
        sync_label: format!("{nulls} nulls ({:.2}/ev)", nulls as f64 / ev as f64),
    });

    let start = Instant::now();
    let ts = run_timestep(scale_lps(n, jobs_per_lp), SCALE_LA, t_end);
    let wall = start.elapsed().as_secs_f64();
    rows.push(EngineRow {
        engine: "timestep",
        events: ts.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(ts.lps.iter().map(|l| l.acc)),
        sync: Json::Obj(vec![("windows".into(), Json::Num(ts.windows as f64))]),
        sync_label: format!("{} windows", ts.windows),
    });

    let start = Instant::now();
    let cfg = TwConfig {
        window: 2.0 * SCALE_LA,
        ..TwConfig::default()
    };
    let tw = run_timewarp_cfg(scale_lps(n, jobs_per_lp), &ring_edges(n), t_end, cfg);
    let wall = start.elapsed().as_secs_f64();
    let (sync, sync_label) = tw_sync(&tw, cfg.window);
    rows.push(EngineRow {
        engine: "timewarp",
        events: tw.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(tw.lps.iter().map(|l| l.acc)),
        sync,
        sync_label,
    });

    let start = Instant::now();
    let ws = run_worksteal_cfg(
        scale_lps(n, jobs_per_lp),
        &ring_edges(n),
        t_end,
        WsConfig {
            workers: ws_workers,
            ..WsConfig::default()
        },
    );
    let wall = start.elapsed().as_secs_f64();
    let (sync, sync_label) = ws_sync(&ws.sched);
    rows.push(EngineRow {
        engine: "worksteal",
        events: ws.total_events(),
        wall_s: wall,
        fingerprint: fingerprint(ws.lps.iter().map(|l| l.acc)),
        sync,
        sync_label,
    });
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // 0 = let the scheduler use the host's available parallelism
    let ws_workers: usize = args
        .iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .map_or(0, |v| v.parse().expect("--workers takes a number"));
    let n = 4;
    let e4_horizon = if smoke { 20.0 } else { 400.0 };
    let jobs_per_lp: u64 = if smoke { 500 } else { 100_000 };
    let lookaheads: &[f64] = if smoke {
        &[0.5, 0.05]
    } else {
        &[1.0, 0.1, 0.02, 0.005]
    };
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);

    println!("conservative vs optimistic synchronization ({n} LPs, {cores} cores)\n");
    let mut table = TextTable::with_columns(&[
        "scenario",
        "engine",
        "events",
        "wall (ms)",
        "events/s",
        "sync cost",
    ]);
    let mut results: Vec<Json> = Vec::new();
    let mut short_la: Option<(f64, f64)> = None; // (cmb wall, tw wall) at min la

    for &la in lookaheads {
        let rows = run_e4(n, la, e4_horizon, ws_workers);
        let fp = rows[0].fingerprint.clone();
        let mut cmb_wall = 0.0;
        for row in rows {
            assert_eq!(row.fingerprint, fp, "e4 la={la}: {} diverged", row.engine);
            if row.engine == "cmb" {
                cmb_wall = row.wall_s;
            }
            if row.engine == "timewarp" {
                short_la = Some((cmb_wall, row.wall_s));
            }
            table.row(vec![
                format!("e4 la={la}"),
                row.engine.into(),
                format!("{}", row.events),
                format!("{:.0}", row.wall_s * 1e3),
                format!("{:.0}", row.events as f64 / row.wall_s),
                row.sync_label.clone(),
            ]);
            results.push(Json::Obj(vec![
                ("scenario".into(), Json::Str("e4".into())),
                ("lookahead".into(), Json::Num(la)),
                ("engine".into(), Json::Str(row.engine.into())),
                ("events".into(), Json::Num(row.events as f64)),
                ("wall_s".into(), Json::Num(row.wall_s)),
                (
                    "events_per_sec".into(),
                    Json::Num(row.events as f64 / row.wall_s),
                ),
                ("fingerprint".into(), Json::Str(row.fingerprint)),
                ("sync".into(), row.sync),
            ]));
        }
    }

    let rows = run_scale(n, jobs_per_lp, ws_workers);
    let fp = rows[0].fingerprint.clone();
    for row in rows {
        assert_eq!(row.fingerprint, fp, "scale: {} diverged", row.engine);
        table.row(vec![
            format!("scale {}k jobs", n as u64 * jobs_per_lp / 1000),
            row.engine.into(),
            format!("{}", row.events),
            format!("{:.0}", row.wall_s * 1e3),
            format!("{:.0}", row.events as f64 / row.wall_s),
            row.sync_label.clone(),
        ]);
        results.push(Json::Obj(vec![
            ("scenario".into(), Json::Str("scale".into())),
            ("jobs".into(), Json::Num((n as u64 * jobs_per_lp) as f64)),
            ("engine".into(), Json::Str(row.engine.into())),
            ("events".into(), Json::Num(row.events as f64)),
            ("wall_s".into(), Json::Num(row.wall_s)),
            (
                "events_per_sec".into(),
                Json::Num(row.events as f64 / row.wall_s),
            ),
            ("fingerprint".into(), Json::Str(row.fingerprint)),
            ("sync".into(), row.sync),
        ]));
    }
    print!("{}", table.render());

    let (cmb_wall, tw_wall) = short_la.unwrap_or((0.0, 1.0));
    let speedup = cmb_wall / tw_wall;
    println!(
        "\nshortest lookahead ({}): Time Warp {:.2}x vs CMB — optimism pays\n\
         exactly where conservative blocking is most expensive; at long\n\
         lookahead the engines tie and CMB's simplicity wins.",
        lookaheads.last().map_or(0.0, |l| *l),
        speedup
    );

    let doc = Json::Obj(vec![
        ("experiment".into(), Json::Str("timewarp".into())),
        ("smoke".into(), Json::Bool(smoke)),
        ("lps".into(), Json::Num(n as f64)),
        ("host_cores".into(), Json::Num(cores as f64)),
        (
            "tw_speedup_vs_cmb_short_lookahead".into(),
            Json::Num(speedup),
        ),
        ("results".into(), Json::Arr(results)),
    ]);
    std::fs::write("BENCH_timewarp.json", doc.render_pretty() + "\n")
        .expect("write BENCH_timewarp.json");
    println!("\nwrote BENCH_timewarp.json");
}
