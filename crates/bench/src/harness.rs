//! Criterion-compatible micro-benchmark harness.
//!
//! The workspace builds fully offline, so the Criterion crate is replaced
//! by this drop-in subset: the six bench binaries keep their structure
//! (`criterion_group!`/`criterion_main!`, benchmark groups, per-input
//! benches, throughput annotation) and only their `use` lines change.
//!
//! Methodology: each benchmark is warmed up, the iteration batch size is
//! calibrated so one sample takes a measurable slice of wall-clock time,
//! and `sample_size` samples are collected; the median per-iteration time
//! is reported (median resists scheduler noise better than the mean on
//! shared machines).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id like `"calendar/1000"`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Median seconds per iteration, filled in by [`Bencher::iter`].
    per_iter: f64,
}

const WARMUP: Duration = Duration::from_millis(100);
const TARGET_SAMPLE: Duration = Duration::from_millis(10);

impl Bencher {
    /// Times `f`: warm-up, batch-size calibration, then `sample_size`
    /// timed batches; the median batch defines the reported time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // warm-up (also seeds the calibration estimate)
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < WARMUP {
            std_black_box(f());
            warm_iters += 1;
        }
        let est = start.elapsed().as_secs_f64() / warm_iters as f64;
        let batch = ((TARGET_SAMPLE.as_secs_f64() / est.max(1e-12)) as u64).clamp(1, 1_000_000);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.per_iter = samples[samples.len() / 2];
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            per_iter: f64::NAN,
        };
        f(&mut b);
        self.report(&id.to_string(), b.per_iter);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (prints a trailing blank line, Criterion-style).
    pub fn finish(&mut self) {
        println!();
    }

    fn report(&self, id: &str, per_iter: f64) {
        let mut line = format!("{}/{}: {} /iter", self.name, id, format_time(per_iter));
        if let Some(tp) = self.throughput {
            let (n, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = n as f64 / per_iter;
            line.push_str(&format!("  ({rate:.3e} {unit}/s)"));
        }
        println!("{line}");
    }
}

fn format_time(secs: f64) -> String {
    if !secs.is_finite() {
        "NaN".to_string()
    } else if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The top-level harness object passed to every bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Declares a bench group function, Criterion-style:
/// `criterion_group!(benches, bench_a, bench_b);` defines `fn benches()`
/// that runs each listed function against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            sample_size: 3,
            per_iter: f64::NAN,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            x
        });
        assert!(b.per_iter.is_finite() && b.per_iter > 0.0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(
            BenchmarkId::new("calendar", 1000).to_string(),
            "calendar/1000"
        );
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.5e-9), "2.5 ns");
        assert_eq!(format_time(2.5e-6), "2.50 µs");
        assert_eq!(format_time(2.5e-3), "2.50 ms");
        assert_eq!(format_time(2.5), "2.500 s");
    }
}
