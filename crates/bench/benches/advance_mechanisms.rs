//! E3 (Criterion) — event-driven vs time-driven advance at two event
//! densities ("an event-driven DES is more efficient than a time-driven
//! DES since it does not step through regular time intervals when no
//! event occurs").

use lsds_bench::{criterion_group, criterion_main, Criterion};
use lsds_bench::{run_event_driven, run_time_driven};

fn bench_advance(c: &mut Criterion) {
    let mut group = c.benchmark_group("advance");
    group.sample_size(20);

    // sparse: 4 sources every 10 s over 1000 s (ticks dominate)
    group.bench_function("event_driven/sparse", |b| {
        b.iter(|| run_event_driven(4, 10.0, 1000.0))
    });
    group.bench_function("time_driven/sparse", |b| {
        b.iter(|| run_time_driven(4, 10.0, 1000.0, 0.01))
    });

    // dense: 64 sources every 0.1 s (events amortize the ticks)
    group.bench_function("event_driven/dense", |b| {
        b.iter(|| run_event_driven(64, 0.1, 1000.0))
    });
    group.bench_function("time_driven/dense", |b| {
        b.iter(|| run_time_driven(64, 0.1, 1000.0, 0.01))
    });

    group.finish();
}

criterion_group!(benches, bench_advance);
criterion_main!(benches);
