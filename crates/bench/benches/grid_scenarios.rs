//! Macro benchmarks: end-to-end wall time of the six simulator facades'
//! reference scenarios — the "performance runtime and the capability to
//! model systems consisting of many resources" the paper says engine
//! design decisions govern (§3).

use lsds_bench::{criterion_group, criterion_main, Criterion};
use lsds_grid::ReplicationPolicy;
use lsds_simulators::bricks::Bricks;
use lsds_simulators::chicagosim::ChicagoSim;
use lsds_simulators::gridsim::GridSim;
use lsds_simulators::monarc::Monarc;
use lsds_simulators::optorsim::OptorSim;
use lsds_simulators::simgrid::{SchedulingMode, SimGrid};

fn bench_facades(c: &mut Criterion) {
    let mut group = c.benchmark_group("facades");
    group.sample_size(10);

    group.bench_function("bricks_200_jobs", |b| {
        b.iter(|| {
            Bricks {
                jobs_per_client: 25,
                ..Bricks::default()
            }
            .run(1.0e6)
        })
    });

    group.bench_function("optorsim_100_jobs_lru", |b| {
        b.iter(|| {
            OptorSim {
                jobs: 100,
                strategy: ReplicationPolicy::PullLru,
                ..OptorSim::default()
            }
            .run(1.0e7)
        })
    });

    group.bench_function("simgrid_200_tasks", |b| {
        let hosts = vec![1.0, 2.0, 4.0, 1.5];
        let tasks: Vec<f64> = (0..200).map(|i| 1.0 + (i % 37) as f64).collect();
        b.iter(|| SimGrid::new(hosts.clone(), tasks.clone(), SchedulingMode::Runtime).run())
    });

    group.bench_function("gridsim_100_tasks", |b| {
        b.iter(|| {
            GridSim {
                tasks: 100,
                ..GridSim::default()
            }
            .run(1.0e7)
        })
    });

    group.bench_function("chicagosim_90_jobs", |b| {
        b.iter(|| {
            ChicagoSim {
                jobs_per_user: 30,
                ..ChicagoSim::default()
            }
            .run(1.0e7)
        })
    });

    group.bench_function("monarc_20_datasets", |b| {
        b.iter(|| {
            Monarc {
                datasets: 20,
                uplink_gbps: 15.0,
                ..Monarc::default()
            }
            .run(1.0e6)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_facades);
criterion_main!(benches);
