//! Cost of causal event tracing on the 1000-flow sharing workload:
//! untraced (`NoopTracer`, must compile away), fully traced, and 1-in-16
//! sampled. `exp_trace` regenerates the same comparison into
//! `BENCH_trace.json` with the bit-identity check.

use lsds_bench::{black_box, criterion_group, criterion_main, Criterion};
use lsds_bench::{run_flow_sharing, run_flow_sharing_traced};
use lsds_net::ShareMode;
use lsds_obs::TraceConfig;

const SEED: u64 = 0x7ACE;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_overhead");
    group.sample_size(10);
    let n = 1000;
    let pairs = (n / 16).clamp(1, 64);
    group.bench_function("untraced/1000", |b| {
        b.iter(|| {
            black_box(
                run_flow_sharing(pairs, n, ShareMode::Incremental, false, SEED)
                    .completions
                    .len(),
            )
        })
    });
    group.bench_function("traced_full/1000", |b| {
        b.iter(|| {
            let (r, trace) = run_flow_sharing_traced(
                pairs,
                n,
                ShareMode::Incremental,
                false,
                SEED,
                TraceConfig::default(),
            );
            black_box((r.completions.len(), trace.len()))
        })
    });
    group.bench_function("traced_sampled_16/1000", |b| {
        b.iter(|| {
            let (r, trace) = run_flow_sharing_traced(
                pairs,
                n,
                ShareMode::Incremental,
                false,
                SEED,
                TraceConfig::default().sampled(16),
            );
            black_box((r.completions.len(), trace.len()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
