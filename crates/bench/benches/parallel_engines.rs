//! E4 (Criterion) — synchronization overhead of the distributed engines
//! on a token-ring workload (results are identical across engines by the
//! determinism guarantee; the benches measure only cost).

use lsds_bench::{criterion_group, criterion_main, Criterion};
use lsds_core::SimTime;
use lsds_parallel::cmb::InitialEvents;
use lsds_parallel::{run_cmb, run_timestep, LogicalProcess, LpCtx};

struct Ring {
    n: usize,
    delay: f64,
    seen: u64,
}

impl LogicalProcess for Ring {
    type Msg = u64;
    fn handle(&mut self, _now: SimTime, hop: u64, ctx: &mut LpCtx<'_, u64>) {
        self.seen += 1;
        ctx.send((ctx.me() + 1) % self.n, self.delay, hop + 1);
    }
    fn lookahead(&self) -> f64 {
        self.delay
    }
}

impl InitialEvents for Ring {
    fn initial_events(&mut self, ctx: &mut LpCtx<'_, u64>) {
        if ctx.me() == 0 {
            ctx.schedule_in(0.0, 0);
        }
    }
}

fn ring(n: usize) -> Vec<Ring> {
    (0..n)
        .map(|_| Ring {
            n,
            delay: 1.0,
            seen: 0,
        })
        .collect()
}

fn edges(n: usize) -> Vec<(usize, usize)> {
    (0..n).map(|i| (i, (i + 1) % n)).collect()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_ring_1000_hops");
    group.sample_size(20);
    let t_end = SimTime::new(1000.0);
    for &n in &[2usize, 4] {
        group.bench_function(format!("cmb/{n}lp"), |b| {
            b.iter(|| run_cmb(ring(n), &edges(n), t_end))
        });
        group.bench_function(format!("timestep/{n}lp"), |b| {
            b.iter(|| run_timestep(ring(n), 1.0, t_end))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
