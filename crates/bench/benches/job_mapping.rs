//! E12 (Criterion) — job→context mapping schemes ("reusing threads …
//! can yield higher simulation performances").

use lsds_bench::mapping_workload;
use lsds_bench::{criterion_group, criterion_main, Criterion};
use lsds_core::process::MappingScheme;

fn bench_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapping_10k_jobs");
    group.sample_size(20);
    for scheme in [
        MappingScheme::PerJob,
        MappingScheme::Pooled,
        MappingScheme::Batched {
            jobs_per_context: 8,
        },
    ] {
        group.bench_function(scheme.name(), |b| {
            b.iter(|| mapping_workload(scheme, 10_000, 4, 1_000.0, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mapping);
criterion_main!(benches);
