//! Full vs incremental max-min fair-share recomputation in `FlowNet`,
//! at 10 / 100 / 1000 concurrent flows, with and without link faults.
//!
//! The workload (see `lsds_bench::run_flow_sharing`) spreads flows over
//! disjoint duplex pairs — the favourable many-small-components case the
//! incremental engine is built for. `exp_flownet` regenerates the same
//! numbers into `BENCH_flownet.json`, together with the adversarial
//! single-component dumbbell case.

use lsds_bench::{black_box, criterion_group, criterion_main, Criterion};
use lsds_bench::{run_flow_sharing, FlowSharingResult};
use lsds_net::ShareMode;

fn completions(r: FlowSharingResult) -> usize {
    black_box(r.completions.len())
}

fn bench_flow_sharing(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_sharing");
    group.sample_size(10);
    for &n in &[10usize, 100, 1000] {
        // ~16 concurrent flows per pair at every scale
        let pairs = (n / 16).clamp(1, 64);
        for (label, mode) in [
            ("full", ShareMode::Full),
            ("incremental", ShareMode::Incremental),
        ] {
            group.bench_function(format!("{label}/{n}"), |b| {
                b.iter(|| completions(run_flow_sharing(pairs, n, mode, false, 0xBE)))
            });
            group.bench_function(format!("{label}_faults/{n}"), |b| {
                b.iter(|| completions(run_flow_sharing(pairs, n, mode, true, 0xBE)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flow_sharing);
criterion_main!(benches);
