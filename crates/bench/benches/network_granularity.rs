//! E13 (Criterion) — the wall-clock cost of packet-level vs flow-level
//! network simulation for identical transfers.

use lsds_bench::{criterion_group, criterion_main, Criterion};
use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_net::{FlowEvent, FlowNet, NodeId, NodeKind, PacketEvent, PacketNet, Topology};

const BW: f64 = 1.0e6;
const LAT: f64 = 0.005;
const MTU: f64 = 1500.0;

fn two_hop() -> Topology {
    let mut t = Topology::new();
    let a = t.add_node(NodeKind::Host, "a");
    let r = t.add_node(NodeKind::Router, "r");
    let b = t.add_node(NodeKind::Host, "b");
    t.add_duplex(a, r, BW, LAT);
    t.add_duplex(r, b, BW, LAT);
    t
}

struct FlowH {
    net: FlowNet,
}
enum FEv {
    Kick(f64),
    Net(FlowEvent),
}
impl Model for FlowH {
    type Event = FEv;
    fn handle(&mut self, ev: FEv, ctx: &mut Ctx<'_, FEv>) {
        match ev {
            FEv::Kick(bytes) => {
                self.net
                    .start(NodeId(0), NodeId(2), bytes, 0, &mut ctx.map(FEv::Net));
            }
            FEv::Net(fe) => {
                self.net.handle(fe, &mut ctx.map(FEv::Net));
            }
        }
    }
}

struct PacketH {
    net: PacketNet,
}
enum PEv {
    Kick(u32),
    Net(PacketEvent),
}
impl Model for PacketH {
    type Event = PEv;
    fn handle(&mut self, ev: PEv, ctx: &mut Ctx<'_, PEv>) {
        match ev {
            PEv::Kick(packets) => {
                self.net.inject_transfer(
                    0,
                    NodeId(0),
                    NodeId(2),
                    packets,
                    MTU,
                    &mut ctx.map(PEv::Net),
                );
            }
            PEv::Net(pe) => {
                self.net.handle(pe, &mut ctx.map(PEv::Net));
            }
        }
    }
}

fn bench_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("transfer_4x1MB");
    group.sample_size(20);
    group.bench_function("flow", |b| {
        b.iter(|| {
            let mut sim = EventDriven::new(FlowH {
                net: FlowNet::new(two_hop()),
            });
            for i in 0..4 {
                sim.schedule(SimTime::new(i as f64 * 0.001), FEv::Kick(1.0e6));
            }
            sim.run().events
        })
    });
    group.bench_function("packet", |b| {
        b.iter(|| {
            let mut sim = EventDriven::new(PacketH {
                net: PacketNet::new(two_hop(), 1_000_000),
            });
            let packets = (1.0e6 / MTU).ceil() as u32;
            for i in 0..4 {
                sim.schedule(SimTime::new(i as f64 * 0.001), PEv::Kick(packets));
            }
            sim.run().events
        })
    });
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
