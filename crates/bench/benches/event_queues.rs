//! E2 (Criterion) — event-list structures under the hold model.
//!
//! Complements `exp_queues` with statistically rigorous per-operation
//! timings across pending-set sizes and increment distributions.

use lsds_bench::churn_run;
use lsds_bench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsds_core::{EventQueue, QueueKind, ScheduledEvent, SimTime};
use lsds_stats::{Dist, SimRng};

/// One hold operation (pop + insert) on a pre-filled queue.
fn bench_hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("hold_model");
    for &size in &[100usize, 1_000, 10_000] {
        for kind in QueueKind::ALL {
            // the O(n) sorted list at 10k is already ~15 µs/op; skip the
            // larger sizes Criterion would spend minutes on
            if kind == QueueKind::SortedList && size > 1_000 {
                continue;
            }
            group.throughput(Throughput::Elements(1));
            group.bench_with_input(BenchmarkId::new(kind.name(), size), &size, |b, &size| {
                let inc = Dist::Exponential { rate: 1.0 };
                let mut rng = SimRng::new(7);
                let mut q = kind.build::<u64>();
                let mut seq = 0u64;
                for _ in 0..size {
                    q.insert(ScheduledEvent::new(
                        SimTime::new(inc.sample(&mut rng)),
                        seq,
                        seq,
                    ));
                    seq += 1;
                }
                b.iter(|| {
                    let ev = q.pop_min().expect("hold never drains");
                    let dt = inc.sample(&mut rng);
                    q.insert(ScheduledEvent::new(ev.time.after(dt), seq, seq));
                    seq += 1;
                    ev.event
                });
            });
        }
    }
    group.finish();
}

/// Full engine churn: the queue inside a running event-driven engine.
fn bench_engine_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_churn_20k_events");
    for kind in [
        QueueKind::BinaryHeap,
        QueueKind::Calendar,
        QueueKind::Ladder,
    ] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| churn_run(kind, 256, 20_000, 3));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_hold, bench_engine_churn);
criterion_main!(benches);
