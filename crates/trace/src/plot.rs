//! Terminal plot rendering — the "visual output analyzer" axis.
//!
//! "The visual output analyzer is probably the most important graphical
//! tool a simulator could have. Generally a simulation generates huge
//! amounts of data. The data is difficult to be analyzed using a pure
//! text format. … The plots are the usual instruments used to represent
//! the output data of the simulation in a graphical format that is more
//! accessible to the end-user." (§3)
//!
//! The experiment binaries render directly to the terminal: horizontal
//! bar charts for categorical comparisons and a scatter/line canvas for
//! series — the 2D-plot class of the taxonomy, with CSV export
//! ([`crate::series`]) covering external tools.

use crate::series::Series;
use std::fmt::Write as _;

/// A horizontal bar chart for labeled values.
#[derive(Debug, Clone, Default)]
pub struct BarChart {
    rows: Vec<(String, f64)>,
    /// Bar body width in characters.
    pub width: usize,
}

impl BarChart {
    /// An empty chart with the default width.
    pub fn new() -> Self {
        BarChart {
            rows: Vec::new(),
            width: 48,
        }
    }

    /// Adds a labeled value (must be non-negative).
    pub fn bar(&mut self, label: impl Into<String>, value: f64) {
        assert!(value >= 0.0 && value.is_finite(), "bad bar value");
        self.rows.push((label.into(), value));
    }

    /// Number of bars.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the chart has no bars.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the chart; bars scale to the maximum value.
    pub fn render(&self) -> String {
        if self.rows.is_empty() {
            return String::new();
        }
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        let max = self
            .rows
            .iter()
            .map(|&(_, v)| v)
            .fold(0.0f64, f64::max)
            .max(1e-300);
        let mut out = String::new();
        for (label, value) in &self.rows {
            let frac = value / max;
            let cells = (frac * self.width as f64).round() as usize;
            let pad = label_w - label.chars().count();
            let _ = writeln!(
                out,
                "{label}{}  {}{} {value:.6}",
                " ".repeat(pad),
                "█".repeat(cells),
                if cells == 0 && *value > 0.0 {
                    "▏"
                } else {
                    ""
                },
            );
        }
        out
    }
}

/// A character-cell scatter/line plot for one or more series.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    /// Canvas width in character cells.
    pub width: usize,
    /// Canvas height in character cells.
    pub height: usize,
    /// Log-scale the y axis (for spans like E6's availability lags).
    pub log_y: bool,
}

impl Default for ScatterPlot {
    fn default() -> Self {
        ScatterPlot {
            width: 64,
            height: 16,
            log_y: false,
        }
    }
}

const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

impl ScatterPlot {
    /// Renders the series onto the canvas with per-series marks and a
    /// legend. Returns an empty string when no points exist.
    pub fn render(&self, series: &[Series]) -> String {
        let pts: Vec<(usize, f64, f64)> = series
            .iter()
            .enumerate()
            .flat_map(|(si, s)| s.points.iter().map(move |&(x, y)| (si, x, y)))
            .collect();
        if pts.is_empty() {
            return String::new();
        }
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
        let ty = |y: f64| if self.log_y { y.max(1e-300).log10() } else { y };
        for &(_, x, y) in &pts {
            xmin = xmin.min(x);
            xmax = xmax.max(x);
            ymin = ymin.min(ty(y));
            ymax = ymax.max(ty(y));
        }
        if (xmax - xmin).abs() < 1e-300 {
            xmax = xmin + 1.0;
        }
        if (ymax - ymin).abs() < 1e-300 {
            ymax = ymin + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for &(si, x, y) in &pts {
            let cx = ((x - xmin) / (xmax - xmin) * (self.width - 1) as f64).round() as usize;
            let cy = ((ty(y) - ymin) / (ymax - ymin) * (self.height - 1) as f64).round() as usize;
            let row = self.height - 1 - cy;
            grid[row][cx] = MARKS[si % MARKS.len()];
        }
        let y_label = |v: f64| {
            if self.log_y {
                format!("{:.3e}", 10f64.powf(v))
            } else {
                format!("{v:.3}")
            }
        };
        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let margin = if i == 0 {
                format!("{:>10} ┤", y_label(ymax))
            } else if i == self.height - 1 {
                format!("{:>10} ┤", y_label(ymin))
            } else {
                format!("{:>10} │", "")
            };
            let _ = writeln!(out, "{margin}{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:>11}└{}", "", "─".repeat(self.width));
        let _ = writeln!(
            out,
            "{:>12}{:<.4}{}{:.4}",
            "",
            xmin,
            " ".repeat(self.width.saturating_sub(16)),
            xmax
        );
        for (si, s) in series.iter().enumerate() {
            let _ = writeln!(out, "{:>12}{} {}", "", MARKS[si % MARKS.len()], s.name);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let mut c = BarChart::new();
        c.width = 10;
        c.bar("a", 10.0);
        c.bar("bb", 5.0);
        let r = c.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].matches('█').count(), 10);
        assert_eq!(lines[1].matches('█').count(), 5);
        // labels aligned
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn zero_value_gets_tick() {
        let mut c = BarChart::new();
        c.bar("zero", 0.0);
        c.bar("big", 100.0);
        let r = c.render();
        assert!(r.lines().next().unwrap().contains('0'));
    }

    #[test]
    fn empty_chart_renders_empty() {
        assert!(BarChart::new().render().is_empty());
        assert!(BarChart::new().is_empty());
    }

    #[test]
    fn scatter_places_extremes() {
        let mut s = Series::new("lag");
        s.push(0.0, 0.0);
        s.push(10.0, 100.0);
        let p = ScatterPlot {
            width: 20,
            height: 5,
            log_y: false,
        };
        let r = p.render(&[s]);
        let lines: Vec<&str> = r.lines().collect();
        // max y on the top row, min y on the bottom data row
        assert!(lines[0].contains('*'));
        assert!(lines[4].contains('*'));
        assert!(r.contains("lag"));
    }

    #[test]
    fn log_scale_compresses_span() {
        let mut s = Series::new("x");
        s.push(1.0, 1.0);
        s.push(2.0, 1.0e6);
        let lin = ScatterPlot {
            log_y: false,
            ..ScatterPlot::default()
        }
        .render(std::slice::from_ref(&s));
        let log = ScatterPlot {
            log_y: true,
            ..ScatterPlot::default()
        }
        .render(&[s]);
        assert!(lin.contains("1000000"));
        assert!(log.contains("e6") || log.contains("e+6") || log.contains("1.000e6"));
    }

    #[test]
    fn multiple_series_distinct_marks() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        a.push(0.0, 1.0);
        b.push(1.0, 2.0);
        let r = ScatterPlot::default().render(&[a, b]);
        assert!(r.contains('*') && r.contains('o'));
    }
}
