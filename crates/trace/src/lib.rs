//! `lsds-trace` — input modalities and output data series.
//!
//! The taxonomy classifies simulators by *input data* — "including input
//! data generators or … accepting data sets collected by monitoring. For
//! example, MONARC 2 accepts both types of input (the monitoring data
//! format is the one produced by MonALISA), while ChicagoSim accepts only
//! input data generators" (§3) — and by *output/UI* (textual output, plot
//! series, output analyzers).
//!
//! * [`record`] — a MonALISA-style monitoring record and trace container;
//! * [`generator`] — synthetic workload generators that *emit* traces, so
//!   a generated workload can be saved and replayed as monitored data;
//! * [`json`] — a minimal in-tree JSON reader/writer (offline build);
//! * [`io`] — JSON-lines persistence (read/write);
//! * [`export`] — JSON export of [`lsds_obs`] metrics snapshots;
//! * [`series`] — plot series, CSV emission, and aligned text tables for
//!   the experiment binaries (the "textual output" end of the UI axis);
//! * [`plot`] — terminal bar charts and scatter canvases (the "visual
//!   output analyzer" end).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod generator;
pub mod io;
pub mod json;
pub mod plot;
pub mod record;
pub mod series;

pub use export::{
    chrome_trace_json, chrome_trace_json_with_counters, chrome_trace_to_string,
    chrome_trace_to_string_with_counters, snapshot_to_json, snapshot_to_json_string,
    validate_chrome_trace, validate_chrome_trace_full, write_chrome_trace,
    write_chrome_trace_with_counters, write_snapshot,
};
pub use generator::WorkloadGenerator;
pub use io::{read_trace, write_trace};
pub use json::Json;
pub use plot::{BarChart, ScatterPlot};
pub use record::{MonitorRecord, Trace};
pub use series::{Series, TextTable};
