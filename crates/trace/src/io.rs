//! JSON-lines persistence for traces.
//!
//! One record per line keeps files streamable and appendable, matching
//! how monitoring systems actually emit data. Serialization goes through
//! the in-tree [`crate::json`] module so the workspace builds offline.

use crate::json::Json;
use crate::record::{MonitorRecord, Trace};
use std::io::{self, BufRead, Write};

fn record_to_json(rec: &MonitorRecord) -> Json {
    Json::Obj(vec![
        ("time".to_string(), Json::Num(rec.time)),
        ("node".to_string(), Json::Str(rec.node.clone())),
        ("metric".to_string(), Json::Str(rec.metric.clone())),
        ("value".to_string(), Json::Num(rec.value)),
    ])
}

fn record_from_json(v: &Json) -> Result<MonitorRecord, String> {
    let num = |key: &str| {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing or non-numeric field '{key}'"))
    };
    let text = |key: &str| {
        v.get(key)
            .and_then(Json::as_str)
            .ok_or_else(|| format!("missing or non-string field '{key}'"))
    };
    Ok(MonitorRecord::new(
        num("time")?,
        text("node")?,
        text("metric")?,
        num("value")?,
    ))
}

/// Writes a trace as JSON lines.
pub fn write_trace(trace: &Trace, mut w: impl Write) -> io::Result<()> {
    for rec in trace.records() {
        writeln!(w, "{}", record_to_json(rec).render())?;
    }
    Ok(())
}

/// Reads a JSON-lines trace; records are re-sorted by time so partially
/// merged monitoring feeds load correctly.
pub fn read_trace(r: impl BufRead) -> io::Result<Trace> {
    let mut records = Vec::new();
    for line in r.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = Json::parse(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let rec =
            record_from_json(&parsed).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        records.push(rec);
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_records(vec![
            MonitorRecord::new(1.0, "T0", "production_gb", 2.5),
            MonitorRecord::new(2.0, "T1-0", "cpu_load", 0.7),
            MonitorRecord::new(3.5, "T1-1", "transfer_mb", 120.0),
        ])
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn blank_lines_skipped() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn disordered_file_is_sorted_on_read() {
        let lines = concat!(
            r#"{"time":5.0,"node":"a","metric":"m","value":1.0}"#,
            "\n",
            r#"{"time":1.0,"node":"b","metric":"m","value":2.0}"#,
            "\n"
        );
        let t = read_trace(lines.as_bytes()).unwrap();
        assert_eq!(t.records()[0].time, 1.0);
    }

    #[test]
    fn corrupt_line_is_an_error() {
        let lines = "not json\n";
        assert!(read_trace(lines.as_bytes()).is_err());
    }

    #[test]
    fn wrong_field_type_is_an_error() {
        let lines = r#"{"time":"late","node":"a","metric":"m","value":1.0}"#;
        assert!(read_trace(lines.as_bytes()).is_err());
    }
}
