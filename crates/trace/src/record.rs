//! MonALISA-style monitoring records.

use lsds_core::{SimTime, TraceSource};

/// One monitored observation: at `time`, `node` reported `metric = value`.
///
/// This mirrors the flat (timestamp, farm/node, parameter, value) tuples
/// the MonALISA monitoring system produces — the format the paper names as
/// MONARC 2's monitored-data input (§3).
#[derive(Debug, Clone, PartialEq)]
pub struct MonitorRecord {
    /// Observation timestamp (simulated seconds).
    pub time: f64,
    /// Reporting node/site name.
    pub node: String,
    /// Metric name (e.g. `"job_arrival"`, `"cpu_load"`, `"transfer_mb"`).
    pub metric: String,
    /// Observed value.
    pub value: f64,
}

impl MonitorRecord {
    /// Creates a record.
    pub fn new(time: f64, node: impl Into<String>, metric: impl Into<String>, value: f64) -> Self {
        assert!(time.is_finite() && time >= 0.0, "bad timestamp");
        MonitorRecord {
            time,
            node: node.into(),
            metric: metric.into(),
            value,
        }
    }
}

/// An in-memory trace: a time-ordered sequence of records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<MonitorRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds from records, sorting them by time (stable, so equal-time
    /// records keep their original order).
    pub fn from_records(mut records: Vec<MonitorRecord>) -> Self {
        records.sort_by(|a, b| a.time.total_cmp(&b.time));
        Trace { records }
    }

    /// Appends a record; must not go back in time.
    pub fn push(&mut self, rec: MonitorRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                rec.time >= last.time,
                "trace must be appended in time order"
            );
        }
        self.records.push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in time order.
    pub fn records(&self) -> &[MonitorRecord] {
        &self.records
    }

    /// Records for one metric only.
    pub fn metric<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a MonitorRecord> + 'a {
        self.records.iter().filter(move |r| r.metric == name)
    }

    /// Converts into a [`TraceSource`] for the trace-driven engine.
    pub fn into_source(self) -> impl TraceSource<Record = MonitorRecord> {
        self.records.into_iter().map(|r| (SimTime::new(r.time), r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_records_sorts() {
        let t = Trace::from_records(vec![
            MonitorRecord::new(2.0, "a", "m", 1.0),
            MonitorRecord::new(1.0, "b", "m", 2.0),
        ]);
        assert_eq!(t.records()[0].time, 1.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn push_enforces_order() {
        let mut t = Trace::new();
        t.push(MonitorRecord::new(1.0, "a", "m", 0.0));
        t.push(MonitorRecord::new(1.0, "a", "m", 0.5));
        t.push(MonitorRecord::new(3.0, "a", "m", 1.0));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic]
    fn out_of_order_push_panics() {
        let mut t = Trace::new();
        t.push(MonitorRecord::new(2.0, "a", "m", 0.0));
        t.push(MonitorRecord::new(1.0, "a", "m", 0.0));
    }

    #[test]
    fn metric_filter() {
        let t = Trace::from_records(vec![
            MonitorRecord::new(1.0, "a", "x", 0.0),
            MonitorRecord::new(2.0, "a", "y", 0.0),
            MonitorRecord::new(3.0, "a", "x", 0.0),
        ]);
        assert_eq!(t.metric("x").count(), 2);
        assert_eq!(t.metric("z").count(), 0);
    }

    #[test]
    fn source_yields_in_order() {
        let t = Trace::from_records(vec![
            MonitorRecord::new(5.0, "a", "m", 0.0),
            MonitorRecord::new(1.0, "b", "m", 0.0),
        ]);
        let mut src = t.into_source();
        use lsds_core::engine::TraceSource as _;
        let (t1, r1) = src.next_record().unwrap();
        assert_eq!(t1, SimTime::new(1.0));
        assert_eq!(r1.node, "b");
    }
}
