//! Synthetic workload generators that emit traces.
//!
//! The bridge between the taxonomy's two input modalities: a generator
//! *produces* a trace which can be saved, inspected, and later *replayed*
//! as monitored data through the trace-driven engine — so the same
//! workload can exercise both input paths.

use crate::record::{MonitorRecord, Trace};
use lsds_stats::{Dist, SimRng};

/// A Poisson-process generator of per-node metric events.
pub struct WorkloadGenerator {
    /// Reporting node names; events round-robin over them by sampling.
    pub nodes: Vec<String>,
    /// Metric name to emit.
    pub metric: String,
    /// Mean inter-event time.
    pub mean_interarrival: f64,
    /// Value distribution.
    pub value: Dist,
    rng: SimRng,
}

impl WorkloadGenerator {
    /// Creates a generator.
    pub fn new(
        nodes: Vec<String>,
        metric: impl Into<String>,
        mean_interarrival: f64,
        value: Dist,
        rng: SimRng,
    ) -> Self {
        assert!(!nodes.is_empty(), "need at least one node");
        assert!(mean_interarrival > 0.0, "bad inter-arrival");
        WorkloadGenerator {
            nodes,
            metric: metric.into(),
            mean_interarrival,
            value,
            rng,
        }
    }

    /// Generates a trace covering `[0, horizon)`.
    pub fn generate(&mut self, horizon: f64) -> Trace {
        let mut t = 0.0;
        let mut out = Trace::new();
        let ia = Dist::exp_mean(self.mean_interarrival);
        loop {
            t += ia.sample(&mut self.rng);
            if t >= horizon {
                break;
            }
            let node = self.nodes[self.rng.index(self.nodes.len())].clone();
            let value = self.value.sample(&mut self.rng);
            out.push(MonitorRecord::new(t, node, self.metric.clone(), value));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(
            vec!["n0".into(), "n1".into(), "n2".into()],
            "job_arrival",
            0.5,
            Dist::exp_mean(100.0),
            SimRng::new(seed),
        )
    }

    #[test]
    fn generates_expected_count() {
        let trace = gen(1).generate(1000.0);
        // rate 2/s over 1000s → ~2000 events
        assert!((1800..2200).contains(&trace.len()), "{}", trace.len());
    }

    #[test]
    fn all_records_in_horizon_and_ordered() {
        let trace = gen(2).generate(500.0);
        let recs = trace.records();
        assert!(recs.iter().all(|r| r.time < 500.0));
        assert!(recs.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(recs.iter().all(|r| r.metric == "job_arrival"));
    }

    #[test]
    fn covers_all_nodes() {
        let trace = gen(3).generate(200.0);
        for n in ["n0", "n1", "n2"] {
            assert!(trace.records().iter().any(|r| r.node == n));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(gen(4).generate(100.0), gen(4).generate(100.0));
        assert_ne!(gen(4).generate(100.0), gen(5).generate(100.0));
    }
}
