//! Output series and text tables — the "textual output" end of the UI
//! axis, shaped for direct consumption by plotting tools.

use std::fmt::Write as _;

/// A named data series of `(x, y)` points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (plot legend entry / CSV header).
    pub name: String,
    /// Data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Emits `x,y` CSV with a header line.
    pub fn to_csv(&self) -> String {
        let mut out = format!("x,{}\n", self.name);
        for (x, y) in &self.points {
            let _ = writeln!(out, "{x},{y}");
        }
        out
    }

    /// Merges several series sharing x-values into one CSV block
    /// (`x,name1,name2,…`). Panics if the x-grids differ.
    pub fn merged_csv(series: &[Series]) -> String {
        assert!(!series.is_empty(), "no series");
        let n = series[0].points.len();
        for s in series {
            assert_eq!(s.points.len(), n, "series lengths differ");
        }
        let mut out = String::from("x");
        for s in series {
            let _ = write!(out, ",{}", s.name);
        }
        out.push('\n');
        for i in 0..n {
            let x = series[0].points[i].0;
            for s in series {
                assert!(
                    (s.points[i].0 - x).abs() < 1e-9,
                    "x grids differ at row {i}"
                );
            }
            let _ = write!(out, "{x}");
            for s in series {
                let _ = write!(out, ",{}", s.points[i].1);
            }
            out.push('\n');
        }
        out
    }
}

/// An aligned text table for experiment output (the paper's Table 1 is
/// rendered through this).
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Self::new(cols.iter().map(|s| s.to_string()).collect())
    }

    /// Appends a row; must match the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                let pad = widths[i] - cells[i].chars().count();
                line.push_str(&cells[i]);
                line.push_str(&" ".repeat(pad));
                if i + 1 < ncols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .header
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_csv() {
        let mut s = Series::new("makespan");
        s.push(1.0, 10.0);
        s.push(2.0, 20.0);
        assert_eq!(s.to_csv(), "x,makespan\n1,10\n2,20\n");
    }

    #[test]
    fn merged_series_csv() {
        let mut a = Series::new("lru");
        let mut b = Series::new("lfu");
        a.push(1.0, 10.0);
        a.push(2.0, 12.0);
        b.push(1.0, 11.0);
        b.push(2.0, 9.0);
        let csv = Series::merged_csv(&[a, b]);
        assert_eq!(csv, "x,lru,lfu\n1,10,11\n2,12,9\n");
    }

    #[test]
    #[should_panic]
    fn merged_grid_mismatch_panics() {
        let mut a = Series::new("a");
        let mut b = Series::new("b");
        a.push(1.0, 0.0);
        b.push(2.0, 0.0);
        let _ = Series::merged_csv(&[a, b]);
    }

    #[test]
    fn table_render_aligns() {
        let mut t = TextTable::with_columns(&["sim", "scope"]);
        t.row_strs(&["Bricks", "central scheduling"]);
        t.row_strs(&["MONARC 2", "tiered LHC"]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert!(lines[0].starts_with("sim"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("Bricks"));
        // columns aligned: "scope" column starts at same offset
        let off = lines[0].find("scope").unwrap();
        assert_eq!(lines[2].find("central").unwrap(), off);
        assert_eq!(lines[3].find("tiered").unwrap(), off);
    }

    #[test]
    fn table_csv_escapes() {
        let mut t = TextTable::with_columns(&["name", "notes"]);
        t.row_strs(&["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::with_columns(&["a", "b"]);
        t.row_strs(&["only one"]);
    }
}
