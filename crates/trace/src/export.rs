//! JSON export of observability snapshots.
//!
//! Renders an [`lsds_obs::Snapshot`] as a single JSON document — the
//! MonALISA-style "repository" view of a run: every counter, gauge,
//! time-weighted series (with its retained step points), and value
//! summary, keyed by metric name.

use crate::json::Json;
use lsds_obs::Snapshot;
use std::io::{self, Write};

/// Converts a metrics snapshot into a JSON value.
///
/// Layout:
///
/// ```json
/// {
///   "at": 3600.0,
///   "counters": {"engine.events": 120},
///   "gauges": {"engine.clock": 3600.0},
///   "series": {
///     "net.link.T0-T1.utilization": {
///       "value": 0.4, "max": 1.0, "average": 0.62,
///       "points": [[0.0, 0.0], [12.5, 1.0]]
///     }
///   },
///   "summaries": {
///     "net.transfer_latency": {"count": 40, "mean": 2.1, "min": 0.4, "max": 9.0}
///   }
/// }
/// ```
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v)))
        .collect();
    let series = snap
        .series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|(t, v)| Json::Arr(vec![Json::Num(*t), Json::Num(*v)]))
                .collect();
            (
                s.name.clone(),
                Json::Obj(vec![
                    ("value".to_string(), Json::Num(s.value)),
                    ("max".to_string(), Json::Num(s.max)),
                    ("average".to_string(), Json::Num(s.average)),
                    ("points".to_string(), Json::Arr(points)),
                ]),
            )
        })
        .collect();
    let summaries = snap
        .summaries
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                Json::Obj(vec![
                    ("count".to_string(), Json::Num(s.count as f64)),
                    ("mean".to_string(), Json::Num(s.mean)),
                    ("min".to_string(), Json::Num(s.min)),
                    ("max".to_string(), Json::Num(s.max)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("at".to_string(), Json::Num(snap.at)),
        ("counters".to_string(), Json::Obj(counters)),
        ("gauges".to_string(), Json::Obj(gauges)),
        ("series".to_string(), Json::Obj(series)),
        ("summaries".to_string(), Json::Obj(summaries)),
    ])
}

/// Pretty-printed snapshot JSON (ends with a newline).
pub fn snapshot_to_json_string(snap: &Snapshot) -> String {
    snapshot_to_json(snap).render_pretty()
}

/// Writes the pretty-printed snapshot JSON to `w`.
pub fn write_snapshot(snap: &Snapshot, mut w: impl Write) -> io::Result<()> {
    w.write_all(snapshot_to_json_string(snap).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_obs::Registry;

    fn sample() -> Snapshot {
        let mut reg = Registry::new();
        reg.inc("engine.events", 12);
        reg.set_gauge("engine.clock", 5.0);
        reg.series_update("site.cpu", 0.0, 0.0);
        reg.series_update("site.cpu", 2.0, 4.0);
        reg.observe("latency", 1.0);
        reg.observe("latency", 3.0);
        reg.snapshot(10.0)
    }

    #[test]
    fn export_covers_all_families() {
        let json = snapshot_to_json(&sample());
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("engine.events"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("engine.clock"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        let series = json.get("series").and_then(|s| s.get("site.cpu")).unwrap();
        assert_eq!(series.get("value").and_then(Json::as_f64), Some(4.0));
        assert_eq!(series.get("max").and_then(Json::as_f64), Some(4.0));
        let sum = json
            .get("summaries")
            .and_then(|s| s.get("latency"))
            .unwrap();
        assert_eq!(sum.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(sum.get("mean").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn export_parses_back() {
        let text = snapshot_to_json_string(&sample());
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("at").and_then(Json::as_f64), Some(10.0));
    }
}
