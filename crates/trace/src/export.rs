//! JSON export of observability snapshots.
//!
//! Renders an [`lsds_obs::Snapshot`] as a single JSON document — the
//! MonALISA-style "repository" view of a run: every counter, gauge,
//! time-weighted series (with its retained step points), and value
//! summary, keyed by metric name.

use crate::json::Json;
use lsds_obs::{CounterTrack, Snapshot, SpanTrace, NO_PARENT, NO_TAG};
use std::io::{self, Write};

/// Converts a metrics snapshot into a JSON value.
///
/// Layout:
///
/// ```json
/// {
///   "at": 3600.0,
///   "counters": {"engine.events": 120},
///   "gauges": {"engine.clock": 3600.0},
///   "series": {
///     "net.link.T0-T1.utilization": {
///       "value": 0.4, "max": 1.0, "average": 0.62,
///       "points": [[0.0, 0.0], [12.5, 1.0]]
///     }
///   },
///   "summaries": {
///     "net.transfer_latency": {"count": 40, "mean": 2.1, "min": 0.4, "max": 9.0,
///                              "p50": 1.8, "p95": 7.2, "p99": 8.8}
///   }
/// }
/// ```
pub fn snapshot_to_json(snap: &Snapshot) -> Json {
    let counters = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), Json::Num(*v)))
        .collect();
    let series = snap
        .series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|(t, v)| Json::Arr(vec![Json::Num(*t), Json::Num(*v)]))
                .collect();
            (
                s.name.clone(),
                Json::Obj(vec![
                    ("value".to_string(), Json::Num(s.value)),
                    ("max".to_string(), Json::Num(s.max)),
                    ("average".to_string(), Json::Num(s.average)),
                    ("points".to_string(), Json::Arr(points)),
                ]),
            )
        })
        .collect();
    let summaries = snap
        .summaries
        .iter()
        .map(|s| {
            (
                s.name.clone(),
                Json::Obj(vec![
                    ("count".to_string(), Json::Num(s.count as f64)),
                    ("mean".to_string(), Json::Num(s.mean)),
                    ("min".to_string(), Json::Num(s.min)),
                    ("max".to_string(), Json::Num(s.max)),
                    ("p50".to_string(), Json::Num(s.p50)),
                    ("p95".to_string(), Json::Num(s.p95)),
                    ("p99".to_string(), Json::Num(s.p99)),
                ]),
            )
        })
        .collect();
    Json::Obj(vec![
        ("at".to_string(), Json::Num(snap.at)),
        ("counters".to_string(), Json::Obj(counters)),
        ("gauges".to_string(), Json::Obj(gauges)),
        ("series".to_string(), Json::Obj(series)),
        ("summaries".to_string(), Json::Obj(summaries)),
    ])
}

/// Pretty-printed snapshot JSON (ends with a newline).
pub fn snapshot_to_json_string(snap: &Snapshot) -> String {
    snapshot_to_json(snap).render_pretty()
}

/// Writes the pretty-printed snapshot JSON to `w`.
pub fn write_snapshot(snap: &Snapshot, mut w: impl Write) -> io::Result<()> {
    w.write_all(snapshot_to_json_string(snap).as_bytes())
}

/// Converts a causal span trace into Chrome trace-event JSON.
///
/// The document loads directly in `chrome://tracing` and Perfetto: one
/// complete event (`"ph": "X"`) per span, with virtual time mapped to the
/// microsecond timeline (`ts = vt · 1e6`), host handler cost as the slice
/// duration (`dur`, µs), and one named thread per track (entity, site, or
/// LP). Event ids and parents ride in `args` as decimal strings — they are
/// `u64` tie keys that would lose precision as JSON numbers.
pub fn chrome_trace_json(trace: &SpanTrace) -> Json {
    chrome_trace_json_with_counters(trace, &[])
}

/// Chrome trace-event JSON with telemetry counter tracks alongside the
/// span tracks.
///
/// Each [`CounterTrack`] becomes a run of counter events (`"ph": "C"`) on
/// the same microsecond timeline as the spans (`ts = vt · 1e6`), with the
/// sampled value in `args.value`. Counter events on lane 0 keep the bare
/// counter name; other lanes get a `name[track]` suffix so per-LP or
/// per-worker lanes render as separate counter tracks in Perfetto (which
/// keys counters by `(pid, name)`).
pub fn chrome_trace_json_with_counters(trace: &SpanTrace, counters: &[CounterTrack]) -> Json {
    let mut tracks: Vec<u32> = trace.spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();
    let mut events = Vec::with_capacity(trace.spans.len() + tracks.len());
    for track in tracks {
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str("thread_name".to_string())),
            ("ph".to_string(), Json::Str("M".to_string())),
            ("pid".to_string(), Json::Num(0.0)),
            ("tid".to_string(), Json::Num(track as f64)),
            (
                "args".to_string(),
                Json::Obj(vec![(
                    "name".to_string(),
                    Json::Str(format!("track-{track}")),
                )]),
            ),
        ]));
    }
    for s in &trace.spans {
        let mut args = vec![
            ("event_id".to_string(), Json::Str(s.id.to_string())),
            ("wall_ns".to_string(), Json::Num(s.wall_ns as f64)),
        ];
        if s.parent != NO_PARENT {
            args.push(("parent".to_string(), Json::Str(s.parent.to_string())));
        }
        if s.kind.tag != NO_TAG {
            args.push(("tag".to_string(), Json::Str(s.kind.tag.to_string())));
        }
        events.push(Json::Obj(vec![
            ("name".to_string(), Json::Str(s.kind.name.to_string())),
            ("ph".to_string(), Json::Str("X".to_string())),
            ("ts".to_string(), Json::Num(s.vt * 1e6)),
            ("dur".to_string(), Json::Num(s.wall_ns as f64 / 1000.0)),
            ("pid".to_string(), Json::Num(0.0)),
            ("tid".to_string(), Json::Num(s.track as f64)),
            ("args".to_string(), Json::Obj(args)),
        ]));
    }
    for c in counters {
        let name = if c.track == 0 {
            c.name.clone()
        } else {
            format!("{}[{}]", c.name, c.track)
        };
        for &(vt, v) in &c.points {
            events.push(Json::Obj(vec![
                ("name".to_string(), Json::Str(name.clone())),
                ("ph".to_string(), Json::Str("C".to_string())),
                ("ts".to_string(), Json::Num(vt * 1e6)),
                ("pid".to_string(), Json::Num(0.0)),
                ("tid".to_string(), Json::Num(c.track as f64)),
                (
                    "args".to_string(),
                    Json::Obj(vec![("value".to_string(), Json::Num(v))]),
                ),
            ]));
        }
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        ("dropped_spans".to_string(), Json::Num(trace.dropped as f64)),
    ])
}

/// Compact Chrome trace-event JSON (ends with a newline).
pub fn chrome_trace_to_string(trace: &SpanTrace) -> String {
    let mut s = chrome_trace_json(trace).render();
    s.push('\n');
    s
}

/// Writes the Chrome trace-event JSON to `w`.
pub fn write_chrome_trace(trace: &SpanTrace, mut w: impl Write) -> io::Result<()> {
    w.write_all(chrome_trace_to_string(trace).as_bytes())
}

/// Compact Chrome trace-event JSON with counter tracks (ends with a
/// newline).
pub fn chrome_trace_to_string_with_counters(
    trace: &SpanTrace,
    counters: &[CounterTrack],
) -> String {
    let mut s = chrome_trace_json_with_counters(trace, counters).render();
    s.push('\n');
    s
}

/// Writes the Chrome trace-event JSON with counter tracks to `w`.
pub fn write_chrome_trace_with_counters(
    trace: &SpanTrace,
    counters: &[CounterTrack],
    mut w: impl Write,
) -> io::Result<()> {
    w.write_all(chrome_trace_to_string_with_counters(trace, counters).as_bytes())
}

/// Parses a Chrome trace-event document and counts its span slices,
/// checking each carries the fields the viewers require (`ph`, `ts`,
/// `dur`, `pid`, `tid`, `name`). Returns the number of `"X"` events, or a
/// description of the first malformed one. CI runs this over the exported
/// artifact as the trace smoke check.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    validate_chrome_trace_full(text).map(|(slices, _)| slices)
}

/// Like [`validate_chrome_trace`], but also validates counter events
/// (`"ph": "C"`: numeric `ts`/`pid`/`tid`, a `name`, and a numeric
/// `args.value`) and returns `(span slices, counter samples)`. CI runs
/// this over the telemetry smoke artifact to check counter tracks made it
/// into the export.
pub fn validate_chrome_trace_full(text: &str) -> Result<(usize, usize), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut slices = 0;
    let mut samples = 0;
    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        let fields: &[&str] = match ph {
            "X" => &["ts", "dur", "pid", "tid"],
            "C" => &["ts", "pid", "tid"],
            _ => continue,
        };
        for field in fields {
            if ev.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("event {i}: missing numeric {field}"));
            }
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: missing name"));
        }
        if ph == "C" {
            if ev
                .get("args")
                .and_then(|a| a.get("value"))
                .and_then(Json::as_f64)
                .is_none()
            {
                return Err(format!("event {i}: counter missing numeric args.value"));
            }
            samples += 1;
        } else {
            slices += 1;
        }
    }
    Ok((slices, samples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsds_obs::Registry;

    fn sample() -> Snapshot {
        let mut reg = Registry::new();
        reg.inc("engine.events", 12);
        reg.set_gauge("engine.clock", 5.0);
        reg.series_update("site.cpu", 0.0, 0.0);
        reg.series_update("site.cpu", 2.0, 4.0);
        reg.observe("latency", 1.0);
        reg.observe("latency", 3.0);
        reg.snapshot(10.0)
    }

    #[test]
    fn export_covers_all_families() {
        let json = snapshot_to_json(&sample());
        assert_eq!(
            json.get("counters")
                .and_then(|c| c.get("engine.events"))
                .and_then(Json::as_f64),
            Some(12.0)
        );
        assert_eq!(
            json.get("gauges")
                .and_then(|g| g.get("engine.clock"))
                .and_then(Json::as_f64),
            Some(5.0)
        );
        let series = json.get("series").and_then(|s| s.get("site.cpu")).unwrap();
        assert_eq!(series.get("value").and_then(Json::as_f64), Some(4.0));
        assert_eq!(series.get("max").and_then(Json::as_f64), Some(4.0));
        let sum = json
            .get("summaries")
            .and_then(|s| s.get("latency"))
            .unwrap();
        assert_eq!(sum.get("count").and_then(Json::as_f64), Some(2.0));
        assert_eq!(sum.get("mean").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn export_parses_back() {
        let text = snapshot_to_json_string(&sample());
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("at").and_then(Json::as_f64), Some(10.0));
    }

    #[test]
    fn summaries_carry_percentiles() {
        let json = snapshot_to_json(&sample());
        let sum = json
            .get("summaries")
            .and_then(|s| s.get("latency"))
            .unwrap();
        for field in ["p50", "p95", "p99"] {
            assert!(
                sum.get(field).and_then(Json::as_f64).is_some(),
                "missing {field}"
            );
        }
    }

    fn span(id: u64, parent: u64, track: u32, vt: f64, kind: lsds_obs::SpanKind) -> lsds_obs::Span {
        lsds_obs::Span {
            id,
            parent,
            track,
            vt,
            wall_ns: 1500,
            kind,
        }
    }

    fn sample_trace() -> SpanTrace {
        let mut t = SpanTrace::new();
        t.spans
            .push(span(0, NO_PARENT, 0, 0.0, lsds_obs::SpanKind::new("boot")));
        t.spans
            .push(span(1, 0, 1, 2.5, lsds_obs::SpanKind::tagged("work", 7)));
        t
    }

    #[test]
    fn chrome_trace_round_trips_with_required_fields() {
        let text = chrome_trace_to_string(&sample_trace());
        assert_eq!(validate_chrome_trace(&text), Ok(2));
        let doc = Json::parse(&text).unwrap();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        // one thread_name metadata record per distinct track, then slices
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 2);
        let slice = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("work"))
            .unwrap();
        assert_eq!(slice.get("ts").and_then(Json::as_f64), Some(2.5e6));
        assert_eq!(slice.get("dur").and_then(Json::as_f64), Some(1.5));
        assert_eq!(slice.get("tid").and_then(Json::as_f64), Some(1.0));
        let args = slice.get("args").unwrap();
        assert_eq!(args.get("event_id").and_then(Json::as_str), Some("1"));
        assert_eq!(args.get("parent").and_then(Json::as_str), Some("0"));
        assert_eq!(args.get("tag").and_then(Json::as_str), Some("7"));
    }

    #[test]
    fn counter_tracks_export_as_c_events() {
        let counters = vec![
            CounterTrack {
                name: "tw.gvt_lag".to_string(),
                track: 0,
                points: vec![(0.5, 0.1), (1.0, 0.3)],
            },
            CounterTrack {
                name: "ws.deque_len".to_string(),
                track: 3,
                points: vec![(2.0, 7.0)],
            },
        ];
        let text = chrome_trace_to_string_with_counters(&sample_trace(), &counters);
        assert_eq!(validate_chrome_trace_full(&text), Ok((2, 3)));
        // The plain validator still counts only span slices.
        assert_eq!(validate_chrome_trace(&text), Ok(2));
        let doc = Json::parse(&text).unwrap();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let c0 = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("tw.gvt_lag"))
            .unwrap();
        assert_eq!(c0.get("ph").and_then(Json::as_str), Some("C"));
        assert_eq!(c0.get("ts").and_then(Json::as_f64), Some(0.5e6));
        let args = c0.get("args").unwrap();
        assert_eq!(args.get("value").and_then(Json::as_f64), Some(0.1));
        // Non-zero lanes carry the lane suffix so Perfetto separates them.
        assert!(events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("ws.deque_len[3]")));
    }

    #[test]
    fn validate_full_rejects_counter_without_value() {
        let bad = "{\"traceEvents\": [{\"ph\": \"C\", \"name\": \"c\", \"ts\": 1, \
                    \"pid\": 0, \"tid\": 0, \"args\": {}}]}";
        assert!(validate_chrome_trace_full(bad)
            .unwrap_err()
            .contains("args.value"));
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"a\": 1}").is_err());
        let no_ts = "{\"traceEvents\": [{\"ph\": \"X\", \"name\": \"x\"}]}";
        assert!(validate_chrome_trace(no_ts).unwrap_err().contains("ts"));
    }
}
