//! Minimal JSON reader/writer.
//!
//! The workspace builds fully offline, so instead of an external JSON
//! dependency this module implements the small subset the trace formats
//! need: a complete value model, a strict recursive-descent parser, and a
//! writer whose `f64` formatting (Rust's shortest-roundtrip `Display`)
//! survives a write→read cycle bit-for-bit for finite values.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array of values.
    Arr(Vec<Json>),
    /// An object; keys keep their textual order.
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input text.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Compact (single-line) rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Indented rendering for human consumption.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(xs) if !xs.is_empty() => {
                // arrays of scalars stay on one line; nested structures wrap
                let scalar = xs
                    .iter()
                    .all(|x| !matches!(x, Json::Obj(f) if !f.is_empty()));
                if scalar {
                    self.write_compact(out);
                    return;
                }
                out.push_str("[\n");
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    x.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// JSON has no Infinity/NaN literals; non-finite values become `null`.
fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match e {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(c) => s.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                _ => {
                    // collect the full UTF-8 sequence starting at pos-1
                    let start = self.pos - 1;
                    let width = utf8_width(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    self.pos = start + width;
                    if self.pos > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 sequence"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_width(b: u8) -> Option<usize> {
    match b {
        0x00..=0x7F => Some(1),
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse(r#""hi\nthere""#).unwrap(),
            Json::Str("hi\nthere".into())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let src = r#"{"a":[1,2,3],"b":{"c":"d","e":null},"f":true}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            12345.678901234567,
        ] {
            let rendered = Json::Num(x).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {rendered}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
        let v = Json::Str("naïve — ünïcode".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("not json").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn field_access() {
        let v = Json::parse(r#"{"time":5.0,"node":"a"}"#).unwrap();
        assert_eq!(v.get("time").and_then(Json::as_f64), Some(5.0));
        assert_eq!(v.get("node").and_then(Json::as_str), Some("a"));
        assert_eq!(v.get("missing"), None);
    }
}
