//! FTP-like bulk transfer service — a "higher-level application protocol".
//!
//! The taxonomy also lists "higher-level application protocols such as
//! FTP, NFS" (§3). This service sits on the fluid [`FlowNet`] and adds the
//! application-level behavior grid middleware actually sees: per-server
//! session limits and a FIFO request queue, so a site with `max_sessions`
//! concurrent outbound transfers queues the rest — the mechanism behind
//! replica-transfer contention in the replication experiments (E6–E8).
//!
//! On a faulty network (see [`crate::fault`]) the service also owns the
//! client-side recovery loop: transfers torn down by a link failure, or
//! unroutable when requested, are retried with exponential backoff under a
//! [`RetryPolicy`]; an optional per-transfer timeout tears down and
//! retries stalled transfers.

use crate::fault::{LinkFault, RetryPolicy};
use crate::flow::{FlowDone, FlowEvent, FlowNet};
use crate::topology::NodeId;
use lsds_core::{Schedule, SimTime};
use std::collections::{HashMap, VecDeque};

/// A queued file-transfer request.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRequest {
    /// Serving (source) node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// File size in bytes.
    pub bytes: f64,
    /// Owner tag, passed through to the completion record.
    pub tag: u64,
    /// When the request entered the service queue.
    pub requested: SimTime,
}

/// Completed transfer, including time spent waiting for a session.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferDone {
    /// The original request.
    pub request: TransferRequest,
    /// When the transfer finished.
    pub finished: SimTime,
    /// Seconds spent queued before a session opened.
    pub queue_wait: f64,
    /// Attempts the transfer needed (1 = succeeded first try).
    pub attempts: u32,
}

/// A transfer given up on after exhausting its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferFailed {
    /// The original request.
    pub request: TransferRequest,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// When the final attempt failed.
    pub at: SimTime,
}

/// Events the transfer service schedules for itself. Embed these in the
/// owning model's event type and route them back to [`FtpService::handle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferEvent {
    /// An event of the underlying flow network.
    Net(FlowEvent),
    /// Backoff expired: re-attempt the identified failed transfer.
    Retry(u64),
    /// Per-transfer timeout check for the identified flow.
    Timeout {
        /// Raw id of the flow being checked.
        flow: u64,
    },
}

impl TransferEvent {
    /// Classifies this event for the tracing layer; network events keep
    /// their flow-level kind, retry/timeout spans are tagged with the
    /// transfer's flow id.
    pub fn span_kind(&self) -> lsds_obs::SpanKind {
        match self {
            TransferEvent::Net(ev) => ev.span_kind(),
            TransferEvent::Retry(id) => lsds_obs::SpanKind::tagged("net.retry", *id),
            TransferEvent::Timeout { flow } => lsds_obs::SpanKind::tagged("net.timeout", *flow),
        }
    }
}

/// Adapts the owner's scheduler so the inner [`FlowNet`] can schedule its
/// own events wrapped in [`TransferEvent::Net`].
struct NetSched<'a, S>(&'a mut S);

impl<S: Schedule<TransferEvent>> Schedule<FlowEvent> for NetSched<'_, S> {
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn schedule_at(&mut self, t: SimTime, event: FlowEvent) {
        self.0.schedule_at(t, TransferEvent::Net(event));
    }
}

struct Server {
    active: usize,
    waiting: VecDeque<TransferRequest>,
}

/// An attempt in flight on the network.
struct Inflight {
    req: TransferRequest,
    attempt: u32,
}

/// FTP-like transfer service over a [`FlowNet`].
pub struct FtpService {
    net: FlowNet,
    servers: Vec<Server>,
    max_sessions: usize,
    retry: RetryPolicy,
    /// in-flight attempt per flow id
    started: HashMap<u64, Inflight>,
    /// failed attempts waiting out their backoff, by retry token
    backing_off: HashMap<u64, Inflight>,
    next_token: u64,
    retries: u64,
    completed: Vec<TransferDone>,
    failed: Vec<TransferFailed>,
}

impl FtpService {
    /// Wraps a flow network; each node serves at most `max_sessions`
    /// concurrent outbound transfers. Failure recovery uses the default
    /// [`RetryPolicy`]; see [`FtpService::with_retry`].
    pub fn new(net: FlowNet, max_sessions: usize) -> Self {
        assert!(max_sessions > 0, "need at least one session");
        let n = net.topology().node_count();
        FtpService {
            net,
            servers: (0..n)
                .map(|_| Server {
                    active: 0,
                    waiting: VecDeque::new(),
                })
                .collect(),
            max_sessions,
            retry: RetryPolicy::default(),
            started: HashMap::new(),
            backing_off: HashMap::new(),
            next_token: 0,
            retries: 0,
            completed: Vec::new(),
            failed: Vec::new(),
        }
    }

    /// Replaces the retry/timeout policy (builder style).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The underlying flow network.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Transfers completed so far.
    pub fn completed(&self) -> &[TransferDone] {
        &self.completed
    }

    /// Transfers abandoned after exhausting their retry budget.
    pub fn failed(&self) -> &[TransferFailed] {
        &self.failed
    }

    /// Retry attempts issued so far (across all transfers).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Requests queued at `node` (excluding active sessions).
    pub fn queue_len(&self, node: NodeId) -> usize {
        self.servers[node.0].waiting.len()
    }

    /// Active sessions at `node`.
    pub fn active_sessions(&self, node: NodeId) -> usize {
        self.servers[node.0].active
    }

    /// Submits a transfer request; it starts immediately if the source has
    /// a free session, otherwise it queues FIFO. An unroutable request
    /// (possible once links fail) enters the retry loop instead of
    /// panicking.
    pub fn request(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<TransferEvent>,
    ) {
        let req = TransferRequest {
            src,
            dst,
            bytes,
            tag,
            requested: sched.now(),
        };
        self.admit(Inflight { req, attempt: 0 }, sched);
    }

    /// Starts the attempt if a session is free, else queues it. Queued
    /// requests restart at attempt 0 when their session opens: waiting for
    /// a session is contention, not failure, so it spends no retry budget.
    fn admit(&mut self, fl: Inflight, sched: &mut impl Schedule<TransferEvent>) {
        if self.servers[fl.req.src.0].active < self.max_sessions {
            self.begin(fl, sched);
        } else {
            self.servers[fl.req.src.0].waiting.push_back(fl.req);
        }
    }

    fn begin(&mut self, fl: Inflight, sched: &mut impl Schedule<TransferEvent>) {
        let attempt = fl.attempt + 1;
        match self.net.try_start(
            fl.req.src,
            fl.req.dst,
            fl.req.bytes,
            fl.req.tag,
            &mut NetSched(sched),
        ) {
            Ok(id) => {
                self.servers[fl.req.src.0].active += 1;
                if let Some(t) = self.retry.timeout {
                    sched.schedule_in(t, TransferEvent::Timeout { flow: id.0 });
                }
                self.started.insert(
                    id.0,
                    Inflight {
                        req: fl.req,
                        attempt,
                    },
                );
            }
            Err(_no_route) => {
                // no session was consumed; back off and re-attempt
                self.retry_or_fail(
                    Inflight {
                        req: fl.req,
                        attempt,
                    },
                    sched,
                );
            }
        }
    }

    /// Schedules the next attempt after exponential backoff, or records a
    /// permanent failure once the budget is spent. `fl.attempt` counts the
    /// attempts already made.
    fn retry_or_fail(&mut self, fl: Inflight, sched: &mut impl Schedule<TransferEvent>) {
        if fl.attempt > self.retry.max_retries {
            self.failed.push(TransferFailed {
                request: fl.req,
                attempts: fl.attempt,
                at: sched.now(),
            });
            return;
        }
        self.retries += 1;
        let delay = self.retry.backoff(fl.attempt - 1);
        let token = self.next_token;
        self.next_token += 1;
        self.backing_off.insert(token, fl);
        sched.schedule_in(delay, TransferEvent::Retry(token));
    }

    /// Closes the session an attempt held and hands it to the next queued
    /// request.
    fn release_session(&mut self, src: NodeId, sched: &mut impl Schedule<TransferEvent>) {
        self.servers[src.0].active -= 1;
        if let Some(next) = self.servers[src.0].waiting.pop_front() {
            self.begin(
                Inflight {
                    req: next,
                    attempt: 0,
                },
                sched,
            );
        }
    }

    /// Injects a link fault into the underlying network. Transfers torn
    /// down by it release their session and enter the retry loop.
    pub fn apply_fault(&mut self, fault: LinkFault, sched: &mut impl Schedule<TransferEvent>) {
        let outcome = self.net.apply_fault(fault, &mut NetSched(sched));
        for ab in outcome.aborted {
            let fl = self
                .started
                .remove(&ab.id.0)
                .expect("aborted flow not tracked");
            self.release_session(fl.req.src, sched);
            self.retry_or_fail(fl, sched);
        }
    }

    /// Routes a transfer event through the service, closing sessions and
    /// starting queued transfers as flows complete, re-attempting failed
    /// transfers after backoff, and enforcing timeouts. Returns the
    /// transfers that finished on this event.
    pub fn handle(
        &mut self,
        ev: TransferEvent,
        sched: &mut impl Schedule<TransferEvent>,
    ) -> Vec<TransferDone> {
        match ev {
            TransferEvent::Net(fe) => {
                let done: Vec<FlowDone> = self.net.handle(fe, &mut NetSched(sched));
                let mut finished = Vec::new();
                for d in done {
                    let fl = self
                        .started
                        .remove(&d.id.0)
                        .expect("completion for unknown transfer");
                    self.release_session(fl.req.src, sched);
                    let rec = TransferDone {
                        queue_wait: d.requested - fl.req.requested,
                        request: fl.req,
                        finished: d.finished,
                        attempts: fl.attempt,
                    };
                    self.completed.push(rec.clone());
                    finished.push(rec);
                }
                finished
            }
            TransferEvent::Retry(token) => {
                if let Some(fl) = self.backing_off.remove(&token) {
                    self.admit(fl, sched);
                }
                Vec::new()
            }
            TransferEvent::Timeout { flow } => {
                // stale timeouts (flow already completed or aborted) miss
                // the `started` map and are no-ops
                if let Some(fl) = self.started.remove(&flow) {
                    self.net
                        .cancel(crate::flow::FlowId(flow), &mut NetSched(sched))
                        .expect("started flow missing from net");
                    self.release_session(fl.req.src, sched);
                    self.retry_or_fail(fl, sched);
                }
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, LinkId, NodeKind, Topology};
    use lsds_core::{Ctx, EventDriven, Model};

    struct Harness {
        ftp: FtpService,
    }

    enum Ev {
        Req(NodeId, NodeId, f64, u64),
        Fault(LinkFault),
        Svc(TransferEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Req(s, d, b, tag) => {
                    self.ftp.request(s, d, b, tag, &mut ctx.map(Ev::Svc));
                }
                Ev::Fault(f) => {
                    self.ftp.apply_fault(f, &mut ctx.map(Ev::Svc));
                }
                Ev::Svc(te) => {
                    self.ftp.handle(te, &mut ctx.map(Ev::Svc));
                }
            }
        }
    }

    fn setup(max_sessions: usize) -> (EventDriven<Harness>, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, b, mbps(80.0), 0.0); // 10 MB/s
        let sim = EventDriven::new(Harness {
            ftp: FtpService::new(FlowNet::new(t), max_sessions),
        });
        (sim, a, b)
    }

    #[test]
    fn sessions_limit_concurrency() {
        let (mut sim, a, b) = setup(1);
        // three 10 MB files: serialized at 1 session → 1s each
        for tag in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 10.0e6, tag));
        }
        sim.run();
        let completed = sim.model().ftp.completed();
        assert_eq!(completed.len(), 3);
        let mut ends: Vec<f64> = completed.iter().map(|c| c.finished.seconds()).collect();
        ends.sort_by(f64::total_cmp);
        assert!((ends[0] - 1.0).abs() < 1e-9);
        assert!((ends[1] - 2.0).abs() < 1e-9);
        assert!((ends[2] - 3.0).abs() < 1e-9);
        // the third request waited two service times
        let waits: Vec<f64> = completed.iter().map(|c| c.queue_wait).collect();
        assert!(waits.iter().cloned().fold(0.0, f64::max) >= 2.0 - 1e-9);
        assert!(completed.iter().all(|c| c.attempts == 1));
    }

    #[test]
    fn parallel_sessions_share_bandwidth() {
        let (mut sim, a, b) = setup(3);
        for tag in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 10.0e6, tag));
        }
        sim.run();
        let completed = sim.model().ftp.completed();
        // all three share 10 MB/s → all finish at 3s, no queue wait
        for c in completed {
            assert!((c.finished.seconds() - 3.0).abs() < 1e-9, "{c:?}");
            assert_eq!(c.queue_wait, 0.0);
        }
    }

    #[test]
    fn queue_state_accessors() {
        let (mut sim, a, b) = setup(1);
        for tag in 0..4 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 100.0e6, tag));
        }
        sim.run_until(SimTime::new(0.5));
        let ftp = &sim.model().ftp;
        assert_eq!(ftp.active_sessions(a), 1);
        assert_eq!(ftp.queue_len(a), 3);
        assert_eq!(ftp.active_sessions(b), 0);
    }

    #[test]
    fn outage_triggers_retry_and_recovery() {
        let (mut sim, a, b) = setup(2);
        // 100 MB at 10 MB/s would finish at t=10 unfaulted
        sim.schedule(SimTime::ZERO, Ev::Req(a, b, 100.0e6, 1));
        // only path fails at t=2, recovers at t=4
        sim.schedule(SimTime::new(2.0), Ev::Fault(LinkFault::Down(LinkId(0))));
        sim.schedule(SimTime::new(4.0), Ev::Fault(LinkFault::Up(LinkId(0))));
        sim.run();
        let ftp = &sim.model().ftp;
        assert_eq!(ftp.completed().len(), 1);
        let c = &ftp.completed()[0];
        assert!(c.attempts >= 2, "transfer was retried: {c:?}");
        // restarted from zero after recovery: strictly later than 10s
        assert!(c.finished.seconds() > 10.0, "{c:?}");
        assert!(ftp.failed().is_empty());
        assert!(ftp.retries() >= 1);
        assert_eq!(ftp.active_sessions(a), 0, "session released on abort");
        assert!(ftp.net().aborted() >= 1);
    }

    #[test]
    fn retry_budget_exhaustion_records_failure() {
        let (mut sim, a, b) = setup(1);
        sim.model_mut().ftp.retry = RetryPolicy {
            max_retries: 2,
            base_backoff: 0.5,
            backoff_factor: 2.0,
            max_backoff: 10.0,
            timeout: None,
        };
        sim.schedule(SimTime::ZERO, Ev::Req(a, b, 10.0e6, 9));
        // link goes down immediately and never recovers
        sim.schedule(SimTime::new(0.1), Ev::Fault(LinkFault::Down(LinkId(0))));
        sim.run();
        let ftp = &sim.model().ftp;
        assert!(ftp.completed().is_empty());
        assert_eq!(ftp.failed().len(), 1);
        let f = &ftp.failed()[0];
        assert_eq!(f.attempts, 3, "initial + 2 retries");
        assert_eq!(f.request.tag, 9);
        assert_eq!(ftp.active_sessions(a), 0);
    }

    #[test]
    fn timeout_cancels_and_retries_stalled_transfer() {
        let (mut sim, a, b) = setup(1);
        sim.model_mut().ftp.retry = RetryPolicy {
            max_retries: 4,
            base_backoff: 0.25,
            backoff_factor: 1.0,
            max_backoff: 0.25,
            timeout: Some(3.0),
        };
        // 100 MB at 10 MB/s needs 10 s — always hits the 3 s timeout, but
        // degraded capacity is restored before the second attempt
        sim.schedule(SimTime::ZERO, Ev::Req(a, b, 20.0e6, 5));
        sim.schedule(
            SimTime::new(0.1),
            Ev::Fault(LinkFault::Degrade {
                link: LinkId(0),
                factor: 0.01, // 0.1 MB/s: attempt 1 cannot finish in 3 s
            }),
        );
        sim.schedule(
            SimTime::new(3.5),
            Ev::Fault(LinkFault::Degrade {
                link: LinkId(0),
                factor: 1.0,
            }),
        );
        sim.run();
        let ftp = &sim.model().ftp;
        assert_eq!(ftp.completed().len(), 1, "failed: {:?}", ftp.failed());
        let c = &ftp.completed()[0];
        assert!(c.attempts >= 2, "{c:?}");
        assert!(ftp.net().in_flight() == 0);
    }

    #[test]
    fn unroutable_request_is_retried_not_panicking() {
        let (mut sim, a, b) = setup(1);
        sim.model_mut().ftp.retry = RetryPolicy {
            max_retries: 3,
            base_backoff: 1.0,
            backoff_factor: 2.0,
            max_backoff: 10.0,
            timeout: None,
        };
        sim.schedule(SimTime::ZERO, Ev::Fault(LinkFault::Down(LinkId(0))));
        sim.schedule(SimTime::new(0.5), Ev::Req(a, b, 10.0e6, 3));
        sim.schedule(SimTime::new(1.0), Ev::Fault(LinkFault::Up(LinkId(0))));
        sim.run();
        let ftp = &sim.model().ftp;
        assert_eq!(ftp.completed().len(), 1);
        assert!(ftp.completed()[0].attempts >= 2);
    }
}
