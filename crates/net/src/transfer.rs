//! FTP-like bulk transfer service — a "higher-level application protocol".
//!
//! The taxonomy also lists "higher-level application protocols such as
//! FTP, NFS" (§3). This service sits on the fluid [`FlowNet`] and adds the
//! application-level behavior grid middleware actually sees: per-server
//! session limits and a FIFO request queue, so a site with `max_sessions`
//! concurrent outbound transfers queues the rest — the mechanism behind
//! replica-transfer contention in the replication experiments (E6–E8).

use crate::flow::{FlowDone, FlowEvent, FlowNet};
use crate::topology::NodeId;
use lsds_core::{Schedule, SimTime};
use std::collections::VecDeque;

/// A queued file-transfer request.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRequest {
    /// Serving (source) node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// File size in bytes.
    pub bytes: f64,
    /// Owner tag, passed through to the completion record.
    pub tag: u64,
    /// When the request entered the service queue.
    pub requested: SimTime,
}

/// Completed transfer, including time spent waiting for a session.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferDone {
    /// The original request.
    pub request: TransferRequest,
    /// When the transfer finished.
    pub finished: SimTime,
    /// Seconds spent queued before a session opened.
    pub queue_wait: f64,
}

struct Server {
    active: usize,
    waiting: VecDeque<TransferRequest>,
}

/// FTP-like transfer service over a [`FlowNet`].
pub struct FtpService {
    net: FlowNet,
    servers: Vec<Server>,
    max_sessions: usize,
    /// start time per in-flight flow tag (indexed by flow id)
    started: std::collections::HashMap<u64, TransferRequest>,
    completed: Vec<TransferDone>,
}

impl FtpService {
    /// Wraps a flow network; each node serves at most `max_sessions`
    /// concurrent outbound transfers.
    pub fn new(net: FlowNet, max_sessions: usize) -> Self {
        assert!(max_sessions > 0, "need at least one session");
        let n = net.topology().node_count();
        FtpService {
            net,
            servers: (0..n)
                .map(|_| Server {
                    active: 0,
                    waiting: VecDeque::new(),
                })
                .collect(),
            max_sessions,
            started: std::collections::HashMap::new(),
            completed: Vec::new(),
        }
    }

    /// The underlying flow network.
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Transfers completed so far.
    pub fn completed(&self) -> &[TransferDone] {
        &self.completed
    }

    /// Requests queued at `node` (excluding active sessions).
    pub fn queue_len(&self, node: NodeId) -> usize {
        self.servers[node.0].waiting.len()
    }

    /// Active sessions at `node`.
    pub fn active_sessions(&self, node: NodeId) -> usize {
        self.servers[node.0].active
    }

    /// Submits a transfer request; it starts immediately if the source has
    /// a free session, otherwise it queues FIFO.
    pub fn request(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) {
        let req = TransferRequest {
            src,
            dst,
            bytes,
            tag,
            requested: sched.now(),
        };
        if self.servers[src.0].active < self.max_sessions {
            self.begin(req, sched);
        } else {
            self.servers[src.0].waiting.push_back(req);
        }
    }

    fn begin(&mut self, req: TransferRequest, sched: &mut impl Schedule<FlowEvent>) {
        self.servers[req.src.0].active += 1;
        let id = self.net.start(req.src, req.dst, req.bytes, req.tag, sched);
        self.started.insert(id.0, req);
    }

    /// Routes a flow event through the network, closing sessions and
    /// starting queued transfers as flows complete. Returns the transfers
    /// that finished on this event.
    pub fn handle(
        &mut self,
        ev: FlowEvent,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> Vec<TransferDone> {
        let done: Vec<FlowDone> = self.net.handle(ev, sched);
        let mut finished = Vec::new();
        for d in done {
            let req = self
                .started
                .remove(&d.id.0)
                .expect("completion for unknown transfer");
            let server = &mut self.servers[req.src.0];
            server.active -= 1;
            // a queued request takes over the freed session
            if let Some(next) = server.waiting.pop_front() {
                self.begin(next, sched);
            }
            let rec = TransferDone {
                queue_wait: d.requested - req.requested,
                request: req,
                finished: d.finished,
            };
            self.completed.push(rec.clone());
            finished.push(rec);
        }
        finished
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind, Topology};
    use lsds_core::{Ctx, EventDriven, Model};

    struct Harness {
        ftp: FtpService,
    }

    enum Ev {
        Req(NodeId, NodeId, f64, u64),
        Net(FlowEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Req(s, d, b, tag) => {
                    self.ftp.request(s, d, b, tag, &mut ctx.map(Ev::Net));
                }
                Ev::Net(fe) => {
                    self.ftp.handle(fe, &mut ctx.map(Ev::Net));
                }
            }
        }
    }

    fn setup(max_sessions: usize) -> (EventDriven<Harness>, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, b, mbps(80.0), 0.0); // 10 MB/s
        let sim = EventDriven::new(Harness {
            ftp: FtpService::new(FlowNet::new(t), max_sessions),
        });
        (sim, a, b)
    }

    #[test]
    fn sessions_limit_concurrency() {
        let (mut sim, a, b) = setup(1);
        // three 10 MB files: serialized at 1 session → 1s each
        for tag in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 10.0e6, tag));
        }
        sim.run();
        let completed = sim.model().ftp.completed();
        assert_eq!(completed.len(), 3);
        let mut ends: Vec<f64> = completed.iter().map(|c| c.finished.seconds()).collect();
        ends.sort_by(f64::total_cmp);
        assert!((ends[0] - 1.0).abs() < 1e-9);
        assert!((ends[1] - 2.0).abs() < 1e-9);
        assert!((ends[2] - 3.0).abs() < 1e-9);
        // the third request waited two service times
        let waits: Vec<f64> = completed.iter().map(|c| c.queue_wait).collect();
        assert!(waits.iter().cloned().fold(0.0, f64::max) >= 2.0 - 1e-9);
    }

    #[test]
    fn parallel_sessions_share_bandwidth() {
        let (mut sim, a, b) = setup(3);
        for tag in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 10.0e6, tag));
        }
        sim.run();
        let completed = sim.model().ftp.completed();
        // all three share 10 MB/s → all finish at 3s, no queue wait
        for c in completed {
            assert!((c.finished.seconds() - 3.0).abs() < 1e-9, "{c:?}");
            assert_eq!(c.queue_wait, 0.0);
        }
    }

    #[test]
    fn queue_state_accessors() {
        let (mut sim, a, b) = setup(1);
        for tag in 0..4 {
            sim.schedule(SimTime::ZERO, Ev::Req(a, b, 100.0e6, tag));
        }
        sim.run_until(SimTime::new(0.5));
        let ftp = &sim.model().ftp;
        assert_eq!(ftp.active_sessions(a), 1);
        assert_eq!(ftp.queue_len(a), 3);
        assert_eq!(ftp.active_sessions(b), 0);
    }
}
