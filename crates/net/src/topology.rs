//! Network topologies: hosts, routers, switches, and the links between them.

/// Identifier of a node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a directed link in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// The kinds of network elements the taxonomy names (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (computing/storage site attachment point).
    Host,
    /// A routing element.
    Router,
    /// A switching element.
    Switch,
}

/// A network node.
#[derive(Debug, Clone)]
pub struct Node {
    /// What kind of element this is.
    pub kind: NodeKind,
    /// Human-readable name for traces and tables.
    pub name: String,
}

/// A directed link with a serialization bandwidth and propagation latency.
#[derive(Debug, Clone)]
pub struct Link {
    /// Source node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Propagation latency in seconds.
    pub latency: f64,
}

/// Converts megabits/second to bytes/second.
pub fn mbps(x: f64) -> f64 {
    x * 1.0e6 / 8.0
}

/// Converts gigabits/second to bytes/second.
pub fn gbps(x: f64) -> f64 {
    x * 1.0e9 / 8.0
}

/// A directed network graph.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Outgoing link ids per node.
    adj: Vec<Vec<LinkId>>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        self.nodes.push(Node {
            kind,
            name: name.into(),
        });
        self.adj.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a directed link, returning its id.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, bandwidth: f64, latency: f64) -> LinkId {
        assert!(
            from.0 < self.nodes.len() && to.0 < self.nodes.len(),
            "bad endpoint"
        );
        assert!(bandwidth > 0.0 && bandwidth.is_finite(), "bad bandwidth");
        assert!(latency >= 0.0 && latency.is_finite(), "bad latency");
        self.links.push(Link {
            from,
            to,
            bandwidth,
            latency,
        });
        let id = LinkId(self.links.len() - 1);
        self.adj[from.0].push(id);
        id
    }

    /// Adds a symmetric pair of links, returning `(forward, reverse)`.
    pub fn add_duplex(
        &mut self,
        a: NodeId,
        b: NodeId,
        bandwidth: f64,
        latency: f64,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, bandwidth, latency),
            self.add_link(b, a, bandwidth, latency),
        )
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Link accessor.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Outgoing links of a node.
    pub fn out_links(&self, id: NodeId) -> &[LinkId] {
        &self.adj[id.0]
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Builds a star: `n` hosts around one central switch, each spoke with
    /// the given bandwidth/latency. Returns `(topology, hosts)`.
    pub fn star(n: usize, bandwidth: f64, latency: f64) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let hub = t.add_node(NodeKind::Switch, "hub");
        let hosts: Vec<NodeId> = (0..n)
            .map(|i| {
                let h = t.add_node(NodeKind::Host, format!("host{i}"));
                t.add_duplex(h, hub, bandwidth, latency);
                h
            })
            .collect();
        (t, hosts)
    }

    /// Builds a dumbbell: `n` sources and `n` sinks joined by one shared
    /// bottleneck of bandwidth `bottleneck_bw`. Access links get
    /// `access_bw`. Returns `(topology, sources, sinks)`.
    pub fn dumbbell(
        n: usize,
        access_bw: f64,
        bottleneck_bw: f64,
        latency: f64,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        let mut t = Topology::new();
        let left = t.add_node(NodeKind::Router, "left");
        let right = t.add_node(NodeKind::Router, "right");
        t.add_duplex(left, right, bottleneck_bw, latency);
        let sources: Vec<NodeId> = (0..n)
            .map(|i| {
                let h = t.add_node(NodeKind::Host, format!("src{i}"));
                t.add_duplex(h, left, access_bw, latency);
                h
            })
            .collect();
        let sinks: Vec<NodeId> = (0..n)
            .map(|i| {
                let h = t.add_node(NodeKind::Host, format!("dst{i}"));
                t.add_duplex(right, h, access_bw, latency);
                h
            })
            .collect();
        (t, sources, sinks)
    }

    /// Builds a balanced tree (for MONARC-style tier models): `fanouts[d]`
    /// children per node at depth `d`, link parameters per depth. Returns
    /// `(topology, levels)` where `levels[d]` lists the node ids at depth
    /// `d` (the root is `levels[0][0]`).
    pub fn tiered_tree(
        fanouts: &[usize],
        bandwidths: &[f64],
        latencies: &[f64],
    ) -> (Topology, Vec<Vec<NodeId>>) {
        assert_eq!(fanouts.len(), bandwidths.len());
        assert_eq!(fanouts.len(), latencies.len());
        let mut t = Topology::new();
        let root = t.add_node(NodeKind::Host, "tier0");
        let mut levels = vec![vec![root]];
        for (d, &f) in fanouts.iter().enumerate() {
            let mut next = Vec::new();
            let parents = levels[d].clone();
            for (pi, p) in parents.iter().enumerate() {
                for c in 0..f {
                    let id = t.add_node(NodeKind::Host, format!("tier{}-{}", d + 1, pi * f + c));
                    t.add_duplex(*p, id, bandwidths[d], latencies[d]);
                    next.push(id);
                }
            }
            levels.push(next);
        }
        (t, levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let l = t.add_link(a, b, mbps(100.0), 0.01);
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.link(l).from, a);
        assert_eq!(t.out_links(a), &[l]);
        assert!(t.out_links(b).is_empty());
        assert_eq!(t.node(b).kind, NodeKind::Router);
    }

    #[test]
    fn duplex_adds_both_directions() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        let (f, r) = t.add_duplex(a, b, 1.0, 0.0);
        assert_eq!(t.link(f).from, a);
        assert_eq!(t.link(r).from, b);
    }

    #[test]
    fn unit_conversions() {
        assert_eq!(mbps(8.0), 1.0e6);
        assert_eq!(gbps(8.0), 1.0e9);
    }

    #[test]
    fn star_shape() {
        let (t, hosts) = Topology::star(5, mbps(100.0), 0.001);
        assert_eq!(hosts.len(), 5);
        assert_eq!(t.node_count(), 6);
        assert_eq!(t.link_count(), 10);
    }

    #[test]
    fn dumbbell_shape() {
        let (t, src, dst) = Topology::dumbbell(3, mbps(100.0), mbps(10.0), 0.01);
        assert_eq!(src.len(), 3);
        assert_eq!(dst.len(), 3);
        // 2 routers + 6 hosts
        assert_eq!(t.node_count(), 8);
        // bottleneck pair + 6 access pairs
        assert_eq!(t.link_count(), 14);
    }

    #[test]
    fn tiered_tree_shape() {
        // T0 -> 2x T1 -> 3x T2 each
        let (t, levels) = Topology::tiered_tree(&[2, 3], &[gbps(2.5), gbps(1.0)], &[0.05, 0.02]);
        assert_eq!(levels[0].len(), 1);
        assert_eq!(levels[1].len(), 2);
        assert_eq!(levels[2].len(), 6);
        assert_eq!(t.node_count(), 9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(a, b, 0.0, 0.0);
    }
}
