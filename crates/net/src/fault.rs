//! Link-level fault primitives: deterministic, schedule-driven outages.
//!
//! The surveyed simulators earn their keep on *realistic* scenarios — the
//! MONARC 2 LHC study only discriminated link capacities because real
//! links saturate and fail, and OptorSim-class replication studies only
//! separate strategies once transfers can be disrupted. This module
//! provides the vocabulary: [`LinkFault`] events applied to a
//! [`crate::FlowNet`] through the owning model's event loop, so a faulty
//! run is driven by the same engine as a healthy one and same-seed runs
//! stay bit-identical.

use crate::topology::LinkId;
use lsds_stats::SimRng;

/// A state change of one directed link.
///
/// Faults are *events*, not configuration: the owner schedules them
/// through its engine (see `lsds-grid`'s `FaultSchedule`) and applies them
/// with [`crate::FlowNet::apply_fault`] when they are delivered, which
/// keeps fault-injected runs deterministic and reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFault {
    /// The link fails: flows crossing it are re-routed around it when an
    /// alternative route exists, aborted otherwise.
    Down(LinkId),
    /// The link recovers at full (or its current degraded) capacity.
    Up(LinkId),
    /// The link's usable bandwidth becomes `factor ×` its nominal
    /// capacity (`factor` in `(0, ∞)`; `1.0` restores nominal service).
    Degrade {
        /// The affected link.
        link: LinkId,
        /// Multiplier on the nominal bandwidth.
        factor: f64,
    },
}

impl LinkFault {
    /// The link this fault affects.
    pub fn link(&self) -> LinkId {
        match *self {
            LinkFault::Down(l) | LinkFault::Up(l) => l,
            LinkFault::Degrade { link, .. } => link,
        }
    }
}

/// Retry-with-exponential-backoff and timeout knobs for transfer services
/// sitting on a faulty network (the [`crate::FtpService`] and the grid
/// staging layer both consume this).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Give up after this many retries of one transfer (the initial
    /// attempt is not counted).
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds.
    pub base_backoff: f64,
    /// Multiplier applied per further retry (exponential backoff).
    pub backoff_factor: f64,
    /// Ceiling on any single backoff interval, in seconds.
    pub max_backoff: f64,
    /// Abort a transfer still in flight after this many seconds and treat
    /// it like a failure (retried under the same budget). `None` disables
    /// timeouts.
    pub timeout: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 16,
            base_backoff: 5.0,
            backoff_factor: 2.0,
            max_backoff: 600.0,
            timeout: None,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (0-based): `base · factor^retry`,
    /// capped at [`RetryPolicy::max_backoff`].
    pub fn backoff(&self, retry: u32) -> f64 {
        let b = self.base_backoff * self.backoff_factor.powi(retry.min(64) as i32);
        b.min(self.max_backoff)
    }
}

/// Generates a seeded Poisson outage process per link: exponential
/// time-between-failures with mean `mtbf`, exponential repair times with
/// mean `mttr`, until `horizon`. Returns `(time, fault)` pairs ready to be
/// scheduled; down/up events per link strictly alternate.
pub fn poisson_link_outages(
    rng: &mut SimRng,
    links: &[LinkId],
    horizon: f64,
    mtbf: f64,
    mttr: f64,
) -> Vec<(f64, LinkFault)> {
    assert!(mtbf > 0.0 && mttr > 0.0, "bad outage process parameters");
    let mut out = Vec::new();
    for &l in links {
        let mut t = 0.0;
        loop {
            t += -mtbf * rng.next_open_f64().ln();
            if t >= horizon {
                break;
            }
            out.push((t, LinkFault::Down(l)));
            t += -mttr * rng.next_open_f64().ln();
            let up = t.min(horizon);
            out.push((up, LinkFault::Up(l)));
            if t >= horizon {
                break;
            }
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 8,
            base_backoff: 1.0,
            backoff_factor: 2.0,
            max_backoff: 10.0,
            timeout: None,
        };
        assert_eq!(p.backoff(0), 1.0);
        assert_eq!(p.backoff(1), 2.0);
        assert_eq!(p.backoff(3), 8.0);
        assert_eq!(p.backoff(4), 10.0, "capped");
        assert_eq!(p.backoff(60), 10.0, "still capped far out");
    }

    #[test]
    fn outage_process_alternates_and_is_deterministic() {
        let gen = |seed| {
            let mut rng = SimRng::new(seed);
            poisson_link_outages(&mut rng, &[LinkId(0), LinkId(1)], 1.0e4, 300.0, 60.0)
        };
        let a = gen(7);
        let b = gen(7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.0.to_bits(), y.0.to_bits(), "seeded outages reproduce");
            assert_eq!(x.1, y.1);
        }
        // per link: strict down/up alternation, non-decreasing times
        for link in [LinkId(0), LinkId(1)] {
            let evs: Vec<&LinkFault> = a
                .iter()
                .filter(|(_, f)| f.link() == link)
                .map(|(_, f)| f)
                .collect();
            for (i, f) in evs.iter().enumerate() {
                let down = matches!(f, LinkFault::Down(_));
                assert_eq!(down, i % 2 == 0, "alternation broken at {i}");
            }
        }
        let mut last = 0.0;
        for (t, _) in &a {
            assert!(*t >= last && *t < 1.0e4);
            last = *t;
        }
    }

    #[test]
    fn fault_link_accessor() {
        assert_eq!(LinkFault::Down(LinkId(3)).link(), LinkId(3));
        assert_eq!(
            LinkFault::Degrade {
                link: LinkId(1),
                factor: 0.5
            }
            .link(),
            LinkId(1)
        );
    }
}
