//! Flow-level (fluid) network model with max-min fair bandwidth sharing.
//!
//! Each transfer is a fluid flow along its routed path; concurrent flows
//! share link bandwidth max-min fairly, recomputed on every arrival and
//! departure. This is the granularity OptorSim- and SimGrid-class
//! simulators use: cheap ("it can model only the flows of packets going
//! from one end to another") at the price of ignoring per-packet effects —
//! the other side of the E13 trade-off.

use crate::routing::Routing;
use crate::topology::{LinkId, NodeId, Topology};
use lsds_core::{Schedule, SimTime};
use lsds_obs::Registry;
use std::collections::HashMap;

/// Identifier of a flow within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// Events the flow model schedules for itself. Embed these in the owning
/// model's event type and route them back to [`FlowNet::handle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// The flow's first byte reaches the path after propagation latency.
    Begin { flow: u64 },
    /// Predicted completion; stale generations are ignored.
    Complete { flow: u64, gen: u64 },
}

/// Completion record returned to the owner.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDone {
    /// The finished flow.
    pub id: FlowId,
    /// Owner-supplied tag (job id, file id …).
    pub tag: u64,
    /// Bytes transferred.
    pub bytes: f64,
    /// When the transfer was requested.
    pub requested: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
}

struct Flow {
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    last_update: SimTime,
    gen: u64,
    tag: u64,
    requested: SimTime,
    active: bool,
    bytes: f64,
}

/// Optional MonALISA-style monitoring attached to a [`FlowNet`]: per-link
/// time-weighted utilization series plus transfer latency/size summaries.
/// `None` by default, so an unmonitored network does zero extra work.
struct NetMonitor {
    reg: Registry,
    /// Precomputed series key per link (`net.link.<from>-><to>.utilization`).
    link_keys: Vec<String>,
}

/// The fluid network state. Owns no clock; it is driven by an engine
/// through [`lsds_core::Schedule`].
pub struct FlowNet {
    topo: Topology,
    routing: Routing,
    flows: HashMap<u64, Flow>,
    next_id: u64,
    /// Cumulative bytes carried per link (for utilization reports).
    link_bytes: Vec<f64>,
    completed: u64,
    monitor: Option<NetMonitor>,
}

impl FlowNet {
    /// Builds a flow network over a topology (routes are computed here).
    pub fn new(topo: Topology) -> Self {
        let routing = Routing::compute(&topo);
        let n_links = topo.link_count();
        FlowNet {
            topo,
            routing,
            flows: HashMap::new(),
            next_id: 0,
            link_bytes: vec![0.0; n_links],
            completed: 0,
            monitor: None,
        }
    }

    /// Turns on monitoring: per-link utilization series and transfer
    /// summaries accumulate in an internal [`Registry`] from this point on.
    /// Monitoring only ever *reads* simulation state, so a monitored run's
    /// event trajectory is identical to an unmonitored one.
    pub fn enable_monitor(&mut self) {
        let link_keys = (0..self.topo.link_count())
            .map(|i| {
                let l = self.topo.link(LinkId(i));
                format!(
                    "net.link.{}->{}.utilization",
                    self.topo.node(l.from).name,
                    self.topo.node(l.to).name
                )
            })
            .collect();
        self.monitor = Some(NetMonitor {
            reg: Registry::new(),
            link_keys,
        });
    }

    /// The monitoring registry, if monitoring is enabled.
    pub fn monitor(&self) -> Option<&Registry> {
        self.monitor.as_ref().map(|m| &m.reg)
    }

    /// Merges the accumulated network metrics into `reg` (cumulative
    /// per-link byte gauges are always available; utilization series and
    /// transfer summaries require [`FlowNet::enable_monitor`]).
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("net.transfers_completed", self.completed);
        reg.set_gauge("net.flows_in_flight", self.flows.len() as f64);
        for i in 0..self.topo.link_count() {
            let l = self.topo.link(LinkId(i));
            let key = format!(
                "net.link.{}->{}.bytes",
                self.topo.node(l.from).name,
                self.topo.node(l.to).name
            );
            reg.set_gauge(&key, self.link_bytes[i]);
        }
        if let Some(mon) = &self.monitor {
            reg.merge(mon.reg.clone());
        }
    }

    /// Records the instantaneous utilization of every link into the
    /// monitor's series. No-op when monitoring is off.
    fn record_utilization(&mut self, now: SimTime) {
        let Some(mon) = self.monitor.as_mut() else {
            return;
        };
        let mut used = vec![0.0f64; self.topo.link_count()];
        // flow-id order keeps float accumulation deterministic
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let f = &self.flows[&id];
            for &l in &f.path {
                used[l.0] += f.rate;
            }
        }
        for (li, u) in used.iter().enumerate() {
            let util = u / self.topo.link(LinkId(li)).bandwidth;
            mon.reg
                .series_update(&mon.link_keys[li], now.seconds(), util);
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Starts a transfer of `bytes` from `src` to `dst`. The flow begins
    /// consuming bandwidth after the path's propagation latency. `tag` is
    /// returned in the [`FlowDone`] record.
    ///
    /// Panics if `dst` is unreachable from `src`.
    pub fn start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> FlowId {
        assert!(bytes > 0.0 && bytes.is_finite(), "bad transfer size");
        let path = self
            .routing
            .path(&self.topo, src, dst)
            .unwrap_or_else(|| panic!("no route {src:?} -> {dst:?}"));
        assert!(!path.is_empty(), "src == dst transfer needs no network");
        let latency: f64 = path.iter().map(|&l| self.topo.link(l).latency).sum();
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                path,
                remaining: bytes,
                rate: 0.0,
                last_update: sched.now(),
                gen: 0,
                tag,
                requested: sched.now(),
                active: false,
                bytes,
            },
        );
        sched.schedule_in(latency, FlowEvent::Begin { flow: id });
        FlowId(id)
    }

    /// Number of flows currently in the system (including in latency phase).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Completed flow count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cumulative bytes carried by a link.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.link_bytes[link.0]
    }

    /// Instantaneous utilization of a link in `[0, 1]`.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        let used: f64 = self
            .flows
            .values()
            .filter(|f| f.active && f.path.contains(&link))
            .map(|f| f.rate)
            .sum();
        used / self.topo.link(link).bandwidth
    }

    /// Handles a flow event, returning any completions.
    pub fn handle(&mut self, ev: FlowEvent, sched: &mut impl Schedule<FlowEvent>) -> Vec<FlowDone> {
        match ev {
            FlowEvent::Begin { flow } => {
                let now = sched.now();
                self.advance_progress(now);
                if let Some(f) = self.flows.get_mut(&flow) {
                    f.active = true;
                    f.last_update = now;
                }
                self.reshare(now, sched);
                self.record_utilization(now);
                Vec::new()
            }
            FlowEvent::Complete { flow, gen } => {
                let now = sched.now();
                let valid = self
                    .flows
                    .get(&flow)
                    .is_some_and(|f| f.gen == gen && f.active);
                if !valid {
                    return Vec::new();
                }
                self.advance_progress(now);
                let f = self.flows.remove(&flow).expect("validated above");
                debug_assert!(
                    f.remaining <= 1e-6 * f.bytes.max(1.0),
                    "completion with {} bytes left",
                    f.remaining
                );
                self.completed += 1;
                if let Some(mon) = self.monitor.as_mut() {
                    mon.reg.observe("net.transfer_latency", now - f.requested);
                    mon.reg.observe("net.transfer_bytes", f.bytes);
                }
                let done = FlowDone {
                    id: FlowId(flow),
                    tag: f.tag,
                    bytes: f.bytes,
                    requested: f.requested,
                    finished: now,
                };
                self.reshare(now, sched);
                self.record_utilization(now);
                vec![done]
            }
        }
    }

    /// Moves every active flow's progress forward to `now` at its current
    /// rate, charging the carried bytes to its links.
    fn advance_progress(&mut self, now: SimTime) {
        // deterministic order: link_bytes accumulation must not depend on
        // HashMap iteration (float addition does not reassociate)
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let f = self.flows.get_mut(&id).expect("flow vanished");
            if !f.active {
                continue;
            }
            let dt = now - f.last_update;
            if dt > 0.0 {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.path {
                    self.link_bytes[l.0] += moved;
                }
                f.last_update = now;
            }
        }
    }

    /// Recomputes max-min fair rates and reschedules completions.
    fn reshare(&mut self, now: SimTime, sched: &mut impl Schedule<FlowEvent>) {
        // progressive filling
        let mut cap: Vec<f64> = (0..self.topo.link_count())
            .map(|i| self.topo.link(LinkId(i)).bandwidth)
            .collect();
        let mut unassigned: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        unassigned.sort_unstable(); // determinism
        let mut flows_on_link = vec![0usize; cap.len()];
        for &id in &unassigned {
            for &l in &self.flows[&id].path {
                flows_on_link[l.0] += 1;
            }
        }
        while !unassigned.is_empty() {
            // bottleneck link: minimal fair share among links with load
            let mut best: Option<(f64, usize)> = None;
            for (li, &n) in flows_on_link.iter().enumerate() {
                if n > 0 {
                    let share = cap[li] / n as f64;
                    if best.is_none_or(|(s, _)| share < s) {
                        best = Some((share, li));
                    }
                }
            }
            let (share, bottleneck) = best.expect("unassigned flows but no loaded link");
            // fix every unassigned flow crossing the bottleneck
            let fixed: Vec<u64> = unassigned
                .iter()
                .copied()
                .filter(|id| self.flows[id].path.contains(&LinkId(bottleneck)))
                .collect();
            debug_assert!(!fixed.is_empty());
            for id in &fixed {
                let f = self.flows.get_mut(id).expect("flow vanished");
                f.rate = share;
                let path = f.path.clone();
                for l in path {
                    cap[l.0] -= share;
                    if cap[l.0] < 0.0 {
                        cap[l.0] = 0.0; // guard accumulated rounding
                    }
                    flows_on_link[l.0] -= 1;
                }
            }
            unassigned.retain(|id| !fixed.contains(id));
        }
        // Reschedule completions in flow-id order: scheduling order
        // assigns engine sequence numbers, which break ties between
        // equal-timestamp events — iterating the HashMap directly would
        // make tie order (and thus ULP-level arithmetic) vary run to run.
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let f = self.flows.get_mut(&id).expect("flow vanished");
            f.gen += 1;
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let eta = f.remaining / f.rate;
            sched.schedule_at(
                now.after(eta),
                FlowEvent::Complete {
                    flow: id,
                    gen: f.gen,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind};
    use lsds_core::{Ctx, EventDriven, Model};

    /// Harness model: drives a FlowNet and records completions.
    struct Harness {
        net: FlowNet,
        done: Vec<FlowDone>,
        /// transfers to start at given times: (t, src, dst, bytes, tag)
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    }

    enum Ev {
        Kickoff(usize),
        Net(FlowEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Kickoff(i) => {
                    let (_, src, dst, bytes, tag) = self.plan[i];
                    self.net.start(src, dst, bytes, tag, &mut ctx.map(Ev::Net));
                }
                Ev::Net(fe) => {
                    let done = self.net.handle(fe, &mut ctx.map(Ev::Net));
                    self.done.extend(done);
                }
            }
        }
    }

    fn run_plan(
        topo: Topology,
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    ) -> (Vec<FlowDone>, FlowNet) {
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(topo),
            done: vec![],
            plan: plan.clone(),
        });
        for (i, (t, ..)) in plan.iter().enumerate() {
            sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
        }
        sim.run();
        let m = sim.into_model();
        (m.done, m.net)
    }

    fn pair(bw: f64, lat: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, b, bw, lat);
        (t, a, b)
    }

    #[test]
    fn single_flow_full_bandwidth() {
        let (t, a, b) = pair(mbps(80.0), 0.1); // 10 MB/s
        let (done, net) = run_plan(t, vec![(0.0, a, b, 100.0e6, 7)]);
        assert_eq!(done.len(), 1);
        // latency 0.1 + 100 MB / 10 MB/s = 10.1 s
        assert!((done[0].finished.seconds() - 10.1).abs() < 1e-6);
        assert_eq!(done[0].tag, 7);
        assert_eq!(net.completed(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn two_flows_share_equally() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 50.0e6, 2)]);
        assert_eq!(done.len(), 2);
        // both at 5 MB/s → both finish at 10 s
        for d in &done {
            assert!((d.finished.seconds() - 10.0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn late_flow_speeds_up_after_first_completes() {
        let (t, a, b) = pair(mbps(80.0), 0.0); // 10 MB/s
                                               // flow1: 50 MB at t=0; flow2: 75 MB at t=0.
                                               // shared 5 MB/s each; flow1 done at 10s; flow2 then has 25 MB left
                                               // at 10 MB/s → done at 12.5 s
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 75.0e6, 2)]);
        let d2 = done.iter().find(|d| d.tag == 2).unwrap();
        assert!((d2.finished.seconds() - 12.5).abs() < 1e-6, "{d2:?}");
    }

    #[test]
    fn max_min_textbook_allocation() {
        // Classic: flows A (l1), B (l1+l2), C (l2).
        // l1 cap 10, l2 cap 6 (MB/s). Max-min: bottleneck l2 share 3 →
        // B=C=3; l1 remaining 7 → A=7.
        let mut t = Topology::new();
        let n0 = t.add_node(NodeKind::Host, "n0");
        let n1 = t.add_node(NodeKind::Router, "n1");
        let n2 = t.add_node(NodeKind::Host, "n2");
        t.add_link(n0, n1, 10.0e6, 0.0);
        t.add_link(n1, n2, 6.0e6, 0.0);
        // sizes chosen so nothing completes before we inspect rates
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(t),
            done: vec![],
            plan: vec![
                (0.0, n0, n1, 1.0e9, 1), // A over l1
                (0.0, n0, n2, 1.0e9, 2), // B over l1+l2
                (0.0, n1, n2, 1.0e9, 3), // C over l2
            ],
        });
        for i in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Kickoff(i));
        }
        sim.run_until(SimTime::new(1.0));
        let net = &sim.model().net;
        let rates: HashMap<u64, f64> = net.flows.values().map(|f| (f.tag, f.rate)).collect();
        assert!((rates[&1] - 7.0e6).abs() < 1.0, "A {}", rates[&1]);
        assert!((rates[&2] - 3.0e6).abs() < 1.0, "B {}", rates[&2]);
        assert!((rates[&3] - 3.0e6).abs() < 1.0, "C {}", rates[&3]);
    }

    #[test]
    fn conservation_of_bytes() {
        let (t, a, b) = pair(mbps(80.0), 0.01);
        let plan: Vec<_> = (0..20)
            .map(|i| (i as f64 * 0.37, a, b, 1.0e6 * (i + 1) as f64, i as u64))
            .collect();
        let injected: f64 = plan.iter().map(|p| p.3).sum();
        let (done, net) = run_plan(t, plan);
        assert_eq!(done.len(), 20);
        let delivered: f64 = done.iter().map(|d| d.bytes).sum();
        assert!((delivered - injected).abs() < 1.0);
        // the single forward link carried everything
        assert!((net.link_bytes(LinkId(0)) - injected).abs() < injected * 1e-6);
    }

    #[test]
    fn utilization_reflects_active_flows() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(t),
            done: vec![],
            plan: vec![(0.0, a, b, 1.0e9, 1)],
        });
        sim.schedule(SimTime::ZERO, Ev::Kickoff(0));
        sim.run_until(SimTime::new(0.5));
        assert!((sim.model().net.link_utilization(LinkId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_tracks_utilization_and_latency_without_changing_results() {
        let plan: Vec<_> = (0..8)
            .map(|i| {
                let (t, a, b) = (i as f64 * 0.5, NodeId(0), NodeId(1));
                (t, a, b, 1.0e6 * (i + 1) as f64, i as u64)
            })
            .collect();
        let run = |monitored: bool| {
            let (t, _, _) = pair(mbps(80.0), 0.01);
            let mut net = FlowNet::new(t);
            if monitored {
                net.enable_monitor();
            }
            let mut sim = EventDriven::new(Harness {
                net,
                done: vec![],
                plan: plan.clone(),
            });
            for (i, (t, ..)) in plan.iter().enumerate() {
                sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
            }
            sim.run();
            let m = sim.into_model();
            (m.done, m.net)
        };
        let (done_mon, net_mon) = run(true);
        let (done_plain, _) = run(false);
        assert_eq!(done_mon, done_plain, "monitoring must not perturb the run");

        let reg = net_mon.monitor().unwrap();
        let util = reg.series("net.link.a->b.utilization").unwrap();
        assert!(
            (util.max() - 1.0).abs() < 1e-9,
            "link saturated at some point"
        );
        assert_eq!(util.value(), 0.0, "idle after the last completion");
        let lat = reg.summary("net.transfer_latency").unwrap();
        assert_eq!(lat.count(), 8);
        assert!(lat.min() > 0.0);

        let mut merged = Registry::new();
        net_mon.export_metrics(&mut merged);
        assert_eq!(merged.counter("net.transfers_completed"), 8);
        assert!(merged.gauge("net.link.a->b.bytes").unwrap() > 0.0);
    }

    #[test]
    #[should_panic]
    fn unroutable_transfer_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(b, a, 1.0, 0.0); // reverse only
        let _ = run_plan(t, vec![(0.0, a, b, 1.0, 0)]);
    }
}
