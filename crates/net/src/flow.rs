//! Flow-level (fluid) network model with max-min fair bandwidth sharing.
//!
//! Each transfer is a fluid flow along its routed path; concurrent flows
//! share link bandwidth max-min fairly, recomputed on every arrival and
//! departure. This is the granularity OptorSim- and SimGrid-class
//! simulators use: cheap ("it can model only the flows of packets going
//! from one end to another") at the price of ignoring per-packet effects —
//! the other side of the E13 trade-off.
//!
//! # Incremental sharing
//!
//! Resharing is *incremental* by default ([`ShareMode::Incremental`]):
//! when a flow arrives, departs, reroutes, or a link's capacity changes,
//! only the connected component of the link↔flow bipartite graph that is
//! actually coupled to the change is recomputed (dirty-set propagation
//! from the affected links). Flows in untouched components keep their
//! rates, their progress bookkeeping, and their already-scheduled
//! completion events. Because the max-min progressive-filling arithmetic
//! of one component never reads another component's links, the
//! incremental result is bit-identical to a full recompute
//! ([`ShareMode::Full`]) — `tests/share_equivalence.rs` runs both side by
//! side on seeded random workloads (including faults) and asserts
//! identical trajectories. See DESIGN.md §"Incremental flow-level
//! sharing" for the invariant.

use crate::fault::LinkFault;
use crate::routing::{RouteCache, Routing};
use crate::topology::{LinkId, NodeId, Topology};
use lsds_core::{IdMap, Schedule, SimTime, Slab};
use lsds_obs::Registry;
use std::cell::RefCell;
use std::fmt;

/// Identifier of a flow within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// How [`FlowNet`] recomputes the max-min fair allocation after a change.
///
/// Both modes produce bit-identical trajectories (allocations, completion
/// timestamps, event order); `Full` exists as the self-checking reference
/// the equivalence property tests compare against, and as a diagnostic
/// fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShareMode {
    /// Recompute every component's allocation from scratch on each change,
    /// then apply only the rates that differ. O(L·min(F,L)) per change.
    Full,
    /// Recompute only the connected component(s) of links coupled to the
    /// changed flow (dirty-set propagation). Cost scales with the touched
    /// component, not the whole network.
    #[default]
    Incremental,
}

/// Events the flow model schedules for itself. Embed these in the owning
/// model's event type and route them back to [`FlowNet::handle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// The flow's first byte reaches the path after propagation latency.
    Begin {
        /// Raw id of the starting flow.
        flow: u64,
    },
    /// Predicted completion; stale generations are ignored.
    Complete {
        /// Raw id of the completing flow.
        flow: u64,
        /// Rate-share generation this prediction was made under.
        gen: u64,
    },
}

impl FlowEvent {
    /// Classifies this event for the tracing layer, tagging the span with
    /// the flow id so trace tooling can follow one transfer end to end.
    pub fn span_kind(&self) -> lsds_obs::SpanKind {
        match self {
            FlowEvent::Begin { flow } => lsds_obs::SpanKind::tagged("net.flow_begin", *flow),
            FlowEvent::Complete { flow, .. } => {
                lsds_obs::SpanKind::tagged("net.flow_complete", *flow)
            }
        }
    }
}

/// Completion record returned to the owner.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDone {
    /// The finished flow.
    pub id: FlowId,
    /// Owner-supplied tag (job id, file id …).
    pub tag: u64,
    /// Bytes transferred.
    pub bytes: f64,
    /// When the transfer was requested.
    pub requested: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
}

/// Error returned by [`FlowNet::try_start`] when no usable route exists
/// from `src` to `dst` (possible in any topology once links can fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRoute {
    /// Transfer source.
    pub src: NodeId,
    /// Unreachable destination.
    pub dst: NodeId,
}

impl fmt::Display for NoRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no route {:?} -> {:?}", self.src, self.dst)
    }
}

impl std::error::Error for NoRoute {}

/// Record of a flow torn down before completion — by [`FlowNet::cancel`]
/// or because a link failure left it with no usable route.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAborted {
    /// The aborted flow.
    pub id: FlowId,
    /// Owner-supplied tag.
    pub tag: u64,
    /// Requested transfer size in bytes.
    pub bytes: f64,
    /// Bytes actually carried before the abort (lost; a retry restarts
    /// from zero, matching FTP-style whole-file transfer semantics).
    pub transferred: f64,
    /// When the transfer was requested.
    pub requested: SimTime,
}

/// What a [`FlowNet::apply_fault`] call did to in-flight traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOutcome {
    /// Flows that had no surviving route and were torn down. The owner
    /// decides whether to retry them (see `RetryPolicy`).
    pub aborted: Vec<FlowAborted>,
    /// Flows moved onto a detour path, keeping their progress.
    pub rerouted: u64,
}

struct Flow {
    /// The flow's public monotone id (the key events and orderings use).
    id: u64,
    src: NodeId,
    dst: NodeId,
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    last_update: SimTime,
    gen: u64,
    tag: u64,
    requested: SimTime,
    active: bool,
    bytes: f64,
    /// Scratch epoch: this flow is in the component being reshared.
    mark: u64,
    /// Scratch epoch: this flow's share was fixed by the current fill.
    fixed: u64,
    /// Rate computed by the current fill (applied only if it differs).
    pending: f64,
}

/// Reusable per-reshare working memory, held by [`FlowNet`] so the hot
/// path allocates nothing in steady state. Link-indexed vectors are
/// epoch-stamped instead of cleared: a slot is valid only when its stamp
/// equals the current epoch.
#[derive(Debug, Default)]
struct Scratch {
    /// Monotone reshare epoch; bumping it invalidates all stamps at once.
    epoch: u64,
    /// Per-link: equals `epoch` when the link is in the current component.
    link_stamp: Vec<u64>,
    /// Residual capacity per component link during progressive filling.
    cap: Vec<f64>,
    /// Unassigned-flow count per component link during filling.
    nflows: Vec<usize>,
    /// Links of the component(s) being reshared, ascending index.
    comp_links: Vec<usize>,
    /// Active flows of the component(s) being reshared, ascending id.
    comp_flows: Vec<u64>,
    /// Flows fixed by the current bottleneck (fill inner batch).
    batch: Vec<u64>,
    /// Dirty links seeding the next reshare's component search.
    seeds: Vec<usize>,
    /// Links whose cached load changed during the current event.
    changed_links: Vec<usize>,
    /// BFS worklist over the link↔flow bipartite graph.
    queue: Vec<usize>,
}

/// Optional MonALISA-style monitoring attached to a [`FlowNet`]: per-link
/// time-weighted utilization series plus transfer latency/size summaries.
/// `None` by default, so an unmonitored network does zero extra work.
struct NetMonitor {
    reg: Registry,
    /// Precomputed series key per link (`net.link.<from>-><to>.utilization`).
    link_keys: Vec<String>,
    /// Precomputed series key per link (`net.link.<from>-><to>.up`).
    up_keys: Vec<String>,
}

/// The fluid network state. Owns no clock; it is driven by an engine
/// through [`lsds_core::Schedule`].
pub struct FlowNet {
    topo: Topology,
    routing: Routing,
    /// Flow storage: a free-list arena indexed by `u32` slot. Events and
    /// all deterministic orderings keep using the monotone `u64` flow id;
    /// `fmap` turns an id into its slot with one array index — no hashing
    /// on the event path.
    flows: Slab<Flow>,
    /// Direct-indexed id → slot map (ids are issued densely from 0).
    fmap: IdMap,
    /// Retired path `Vec`s, reused by new flows so steady-state transfer
    /// starts allocate nothing.
    spare_paths: Vec<Vec<LinkId>>,
    next_id: u64,
    /// Cumulative bytes carried per link. Progress is charged lazily: a
    /// flow's carried bytes are posted whenever its rate changes, it
    /// reroutes, or it leaves the system — not on every event.
    link_bytes: Vec<f64>,
    completed: u64,
    /// Dynamic link state: `false` while a link is down (fault-injected).
    link_up: Vec<bool>,
    /// Bandwidth multiplier per link (`1.0` = nominal service).
    degrade: Vec<f64>,
    /// Accumulated downtime per link over closed down intervals (seconds).
    downtime: Vec<f64>,
    /// Start of the current down interval, if the link is down now.
    down_since: Vec<Option<f64>>,
    aborted: u64,
    rerouted: u64,
    faults_applied: u64,
    monitor: Option<NetMonitor>,
    sharing: ShareMode,
    /// Memoized shortest paths over the current routing tables; behind a
    /// `RefCell` so read-side consumers (`&self`) share the memo.
    route_cache: RefCell<RouteCache>,
    /// Per-link ascending ids of the *active* flows crossing it — the
    /// link→flow half of the bipartite graph the dirty-set search walks.
    link_flows: Vec<Vec<u64>>,
    /// Cached Σ of active-flow rates per link, maintained at each rate
    /// change so load/utilization queries are O(1).
    load: Vec<f64>,
    scratch: Scratch,
    reshare_count: u64,
    links_touched: u64,
    flows_touched: u64,
}

impl FlowNet {
    /// Builds a flow network over a topology (routes are computed here).
    pub fn new(topo: Topology) -> Self {
        let routing = Routing::compute(&topo);
        let n_links = topo.link_count();
        FlowNet {
            topo,
            routing,
            flows: Slab::new(),
            fmap: IdMap::new(),
            spare_paths: Vec::new(),
            next_id: 0,
            link_bytes: vec![0.0; n_links],
            completed: 0,
            link_up: vec![true; n_links],
            degrade: vec![1.0; n_links],
            downtime: vec![0.0; n_links],
            down_since: vec![None; n_links],
            aborted: 0,
            rerouted: 0,
            faults_applied: 0,
            monitor: None,
            sharing: ShareMode::default(),
            route_cache: RefCell::new(RouteCache::new()),
            link_flows: vec![Vec::new(); n_links],
            load: vec![0.0; n_links],
            scratch: Scratch {
                link_stamp: vec![0; n_links],
                cap: vec![0.0; n_links],
                nflows: vec![0; n_links],
                ..Scratch::default()
            },
            reshare_count: 0,
            links_touched: 0,
            flows_touched: 0,
        }
    }

    /// Selects how reshares are computed. [`ShareMode::Incremental`] is
    /// the default; [`ShareMode::Full`] is the bit-identical reference.
    pub fn set_share_mode(&mut self, mode: ShareMode) {
        self.sharing = mode;
    }

    /// The active [`ShareMode`].
    pub fn share_mode(&self) -> ShareMode {
        self.sharing
    }

    /// Enables or disables the pairwise route cache (enabled by default).
    /// Cache-off runs are bit-identical to cache-on runs; the toggle
    /// exists for the equivalence tests and for memory-constrained runs.
    pub fn set_route_cache(&mut self, enabled: bool) {
        self.route_cache.borrow_mut().set_enabled(enabled);
    }

    /// `(hits, misses)` of the pairwise route cache.
    pub fn route_cache_stats(&self) -> (u64, u64) {
        let rc = self.route_cache.borrow();
        (rc.hits(), rc.misses())
    }

    /// How many times the fair-share allocation was recomputed.
    pub fn reshare_count(&self) -> u64 {
        self.reshare_count
    }

    /// Cumulative links visited by reshares (component scope metric).
    pub fn links_touched(&self) -> u64 {
        self.links_touched
    }

    /// Cumulative active flows visited by reshares (component scope
    /// metric; under [`ShareMode::Full`] every reshare counts them all).
    pub fn flows_touched(&self) -> u64 {
        self.flows_touched
    }

    /// Turns on monitoring: per-link utilization series and transfer
    /// summaries accumulate in an internal [`Registry`] from this point on.
    /// Monitoring only ever *reads* simulation state, so a monitored run's
    /// event trajectory is identical to an unmonitored one.
    pub fn enable_monitor(&mut self) {
        let key = |i: usize, what: &str| {
            let l = self.topo.link(LinkId(i));
            format!(
                "net.link.{}->{}.{what}",
                self.topo.node(l.from).name,
                self.topo.node(l.to).name
            )
        };
        let link_keys = (0..self.topo.link_count())
            .map(|i| key(i, "utilization"))
            .collect();
        let up_keys = (0..self.topo.link_count()).map(|i| key(i, "up")).collect();
        self.monitor = Some(NetMonitor {
            reg: Registry::new(),
            link_keys,
            up_keys,
        });
    }

    /// The monitoring registry, if monitoring is enabled.
    pub fn monitor(&self) -> Option<&Registry> {
        self.monitor.as_ref().map(|m| &m.reg)
    }

    /// Merges the accumulated network metrics into `reg` (cumulative
    /// per-link byte gauges are always available; utilization series and
    /// transfer summaries require [`FlowNet::enable_monitor`]).
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("net.transfers_completed", self.completed);
        reg.inc("net.flows_aborted", self.aborted);
        reg.inc("net.flows_rerouted", self.rerouted);
        reg.inc("net.link_faults", self.faults_applied);
        reg.inc("net.reshare_count", self.reshare_count);
        reg.inc("net.links_touched", self.links_touched);
        reg.inc("net.flows_touched", self.flows_touched);
        let (hits, misses) = self.route_cache_stats();
        reg.inc("net.route_cache_hits", hits);
        reg.inc("net.route_cache_misses", misses);
        reg.set_gauge("net.flows_in_flight", self.flows.len() as f64);
        for i in 0..self.topo.link_count() {
            let l = self.topo.link(LinkId(i));
            let name = format!(
                "net.link.{}->{}",
                self.topo.node(l.from).name,
                self.topo.node(l.to).name
            );
            reg.set_gauge(&format!("{name}.bytes"), self.link_bytes[i]);
            // closed down intervals only; an interval still open at export
            // time is visible through the `.up` series instead
            if self.downtime[i] > 0.0 || self.down_since[i].is_some() {
                reg.set_gauge(&format!("{name}.downtime"), self.downtime[i]);
            }
        }
        if let Some(mon) = &self.monitor {
            reg.merge(mon.reg.clone());
        }
    }

    /// Records the utilization of every link whose load changed during
    /// the current event into the monitor's series, then clears the
    /// change list. No-op (beyond the clear) when monitoring is off.
    fn record_utilization(&mut self, now: SimTime) {
        if self.monitor.is_none() {
            self.scratch.changed_links.clear();
            return;
        }
        self.scratch.changed_links.sort_unstable();
        self.scratch.changed_links.dedup();
        let Some(mon) = self.monitor.as_mut() else {
            return;
        };
        for &li in &self.scratch.changed_links {
            let util = self.load[li] / self.topo.link(LinkId(li)).bandwidth;
            mon.reg
                .series_update(&mon.link_keys[li], now.seconds(), util);
        }
        self.scratch.changed_links.clear();
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// The link path from `src` to `dst` under the current routing state,
    /// served from the pairwise route cache (the cache is invalidated
    /// whenever a fault changes the routing tables).
    pub fn cached_path(&self, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        self.route_cache
            .borrow_mut()
            .path(&self.routing, &self.topo, src, dst)
    }

    /// Propagation latency along the current route, served from the route
    /// cache. `None` when `dst` is unreachable from `src`.
    pub fn path_latency(&self, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.cached_path(src, dst)?;
        Some(p.iter().map(|&l| self.topo.link(l).latency).sum())
    }

    /// Starts a transfer of `bytes` from `src` to `dst`. The flow begins
    /// consuming bandwidth after the path's propagation latency. `tag` is
    /// returned in the [`FlowDone`] record.
    ///
    /// Panics if `dst` is unreachable from `src`; on a network with
    /// injected faults use [`FlowNet::try_start`], since unreachability is
    /// a normal transient condition there.
    pub fn start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> FlowId {
        self.try_start(src, dst, bytes, tag, sched)
            // lsds-lint: allow(hot-path-panic) reason="start() is the documented panicking wrapper; fault-tolerant callers use try_start()"
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FlowNet::start`]: returns [`NoRoute`] instead of
    /// panicking when `dst` is currently unreachable from `src` (routes
    /// exclude links that are down).
    pub fn try_start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> Result<FlowId, NoRoute> {
        assert!(bytes > 0.0 && bytes.is_finite(), "bad transfer size");
        // reuse a retired flow's path buffer: a cache hit fills it with one
        // memcpy, so the steady-state start path performs zero allocations
        let mut path = self.spare_paths.pop().unwrap_or_default();
        let routed =
            self.route_cache
                .borrow_mut()
                .path_into(&self.routing, &self.topo, src, dst, &mut path);
        if !routed {
            self.spare_paths.push(path);
            return Err(NoRoute { src, dst });
        }
        assert!(!path.is_empty(), "src == dst transfer needs no network");
        let latency: f64 = path.iter().map(|&l| self.topo.link(l).latency).sum();
        let id = self.next_id;
        self.next_id += 1;
        let slot = self.flows.insert(Flow {
            id,
            src,
            dst,
            path,
            remaining: bytes,
            rate: 0.0,
            last_update: sched.now(),
            gen: 0,
            tag,
            requested: sched.now(),
            active: false,
            bytes,
            mark: 0,
            fixed: 0,
            pending: 0.0,
        });
        self.fmap.bind(id, slot);
        sched.schedule_in(latency, FlowEvent::Begin { flow: id });
        Ok(FlowId(id))
    }

    /// Tears down an in-flight flow (its pending events become no-ops) and
    /// reshares bandwidth. Returns `None` if the flow no longer exists.
    pub fn cancel(
        &mut self,
        id: FlowId,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> Option<FlowAborted> {
        self.fmap.get(id.0)?;
        let now = sched.now();
        self.advance_one(id.0, now);
        let was_active = self
            .fmap
            .get(id.0)
            .and_then(|s| self.flows.get(s))
            .is_some_and(|f| f.active);
        self.unindex(id.0);
        let Some(mut f) = self.remove_flow(id.0) else {
            debug_assert!(false, "flow vanished between lookup and remove");
            return None;
        };
        self.aborted += 1;
        let rec = FlowAborted {
            id,
            tag: f.tag,
            bytes: f.bytes,
            transferred: f.bytes - f.remaining,
            requested: f.requested,
        };
        if was_active {
            for &l in &f.path {
                self.scratch.seeds.push(l.0);
            }
        }
        self.spare_paths.push(std::mem::take(&mut f.path));
        self.reshare(now, sched);
        self.record_utilization(now);
        Some(rec)
    }

    /// Applies a link fault at the current simulated time.
    ///
    /// * [`LinkFault::Down`] — the link is removed from routing; flows
    ///   crossing it are moved to a surviving route (keeping their
    ///   progress) or torn down and reported in the [`FaultOutcome`] when
    ///   no route survives. Flows still in their latency phase keep their
    ///   originally scheduled begin time even if re-routed.
    /// * [`LinkFault::Up`] — the link rejoins routing for *new* flows;
    ///   flows already re-routed keep their detour (transfers do not flap
    ///   back mid-flight).
    /// * [`LinkFault::Degrade`] — the link's usable capacity becomes
    ///   `factor ×` nominal for the max-min fair share from now on.
    ///
    /// Call this from the owning model's event handler so same-seed runs
    /// replay faults identically.
    pub fn apply_fault(
        &mut self,
        fault: LinkFault,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> FaultOutcome {
        let now = sched.now();
        self.faults_applied += 1;
        let mut outcome = FaultOutcome::default();
        match fault {
            LinkFault::Down(l) => {
                if self.link_up[l.0] {
                    self.link_up[l.0] = false;
                    self.down_since[l.0] = Some(now.seconds());
                    self.routing = Routing::compute_filtered(&self.topo, &self.link_up);
                    self.route_cache.borrow_mut().invalidate();
                    // sorted ids: abort/reroute order must be
                    // deterministic (the slot-order slab scan feeds a sort)
                    let mut hit: Vec<u64> = Vec::new();
                    self.flows.for_each(|_, f| {
                        if f.path.contains(&l) {
                            hit.push(f.id);
                        }
                    });
                    hit.sort_unstable();
                    for id in hit {
                        let (src, dst, was_active) = {
                            let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get(s)) else {
                                debug_assert!(false, "hit-list flow vanished");
                                continue;
                            };
                            (f.src, f.dst, f.active)
                        };
                        // the cache was just invalidated: the first flow
                        // of each (src, dst) pair misses, the rest hit
                        match self.cached_path(src, dst) {
                            Some(p) if !p.is_empty() => {
                                self.advance_one(id, now);
                                self.unindex(id);
                                let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get_mut(s))
                                else {
                                    debug_assert!(false, "hit-list flow vanished");
                                    continue;
                                };
                                for &ol in &f.path {
                                    self.scratch.seeds.push(ol.0);
                                }
                                for &nl in &p {
                                    self.scratch.seeds.push(nl.0);
                                }
                                // the generation is *not* bumped: if the
                                // detour leaves the rate bit-identical the
                                // pending completion stays valid, exactly
                                // as the full recompute would conclude
                                let old = std::mem::replace(&mut f.path, p);
                                self.spare_paths.push(old);
                                self.index(id);
                                self.rerouted += 1;
                                outcome.rerouted += 1;
                            }
                            _ => {
                                self.advance_one(id, now);
                                if was_active {
                                    self.unindex(id);
                                }
                                let Some(mut f) = self.remove_flow(id) else {
                                    debug_assert!(false, "hit-list flow vanished");
                                    continue;
                                };
                                if was_active {
                                    for &ol in &f.path {
                                        self.scratch.seeds.push(ol.0);
                                    }
                                }
                                self.spare_paths.push(std::mem::take(&mut f.path));
                                self.aborted += 1;
                                outcome.aborted.push(FlowAborted {
                                    id: FlowId(id),
                                    tag: f.tag,
                                    bytes: f.bytes,
                                    transferred: f.bytes - f.remaining,
                                    requested: f.requested,
                                });
                            }
                        }
                    }
                }
            }
            LinkFault::Up(l) => {
                if !self.link_up[l.0] {
                    self.link_up[l.0] = true;
                    if let Some(t0) = self.down_since[l.0].take() {
                        self.downtime[l.0] += now.seconds() - t0;
                    }
                    self.routing = Routing::compute_filtered(&self.topo, &self.link_up);
                    self.route_cache.borrow_mut().invalidate();
                    // no active flow can cross a link that was down, so no
                    // allocation changes: the reshare below finds an empty
                    // dirty set (and the Full reference finds no diffs)
                }
            }
            LinkFault::Degrade { link, factor } => {
                assert!(factor.is_finite() && factor > 0.0, "bad degrade factor");
                self.degrade[link.0] = factor;
                self.scratch.seeds.push(link.0);
            }
        }
        self.reshare(now, sched);
        self.record_utilization(now);
        if let Some(mon) = self.monitor.as_mut() {
            let l = fault.link();
            let up = if self.link_up[l.0] { 1.0 } else { 0.0 };
            mon.reg.series_update(&mon.up_keys[l.0], now.seconds(), up);
        }
        outcome
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0]
    }

    /// Usable capacity of a link right now: nominal bandwidth times the
    /// degradation factor, or zero while the link is down.
    pub fn effective_bandwidth(&self, link: LinkId) -> f64 {
        if self.link_up[link.0] {
            self.topo.link(link).bandwidth * self.degrade[link.0]
        } else {
            0.0
        }
    }

    /// Total downtime of a link up to `now` (open interval included).
    pub fn link_downtime(&self, link: LinkId, now: SimTime) -> f64 {
        let open = self.down_since[link.0]
            .map(|t0| now.seconds() - t0)
            .unwrap_or(0.0);
        self.downtime[link.0] + open
    }

    /// Flows torn down (by faults or [`FlowNet::cancel`]).
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Flows moved to a detour path by link failures.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Number of flows currently in the system (including in latency phase).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Completed flow count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cumulative bytes carried by a link. Progress is charged lazily (at
    /// each rate change, reroute, or departure of a flow), so while flows
    /// are still in flight this lags the fluid state by at most one
    /// constant-rate segment per flow; once the run drains it is exact.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.link_bytes[link.0]
    }

    /// Summed current rate of the active flows crossing a link, bytes/s.
    /// O(1): the value is maintained incrementally as rates change, and
    /// snapped to exactly `0.0` whenever the link's last flow leaves.
    pub fn link_load(&self, link: LinkId) -> f64 {
        self.load[link.0]
    }

    /// Instantaneous utilization of a link in `[0, 1]`. O(1) per query.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        self.load[link.0] / self.topo.link(link).bandwidth
    }

    /// Handles a flow event, returning any completions.
    ///
    /// Convenience wrapper over [`FlowNet::handle_into`]; allocates a
    /// fresh `Vec` per completion. Hot callers (million-job drivers)
    /// should pass a reused buffer to `handle_into` instead.
    pub fn handle(&mut self, ev: FlowEvent, sched: &mut impl Schedule<FlowEvent>) -> Vec<FlowDone> {
        let mut out = Vec::new();
        self.handle_into(ev, sched, &mut out);
        out
    }

    /// Handles a flow event, pushing any completions into `out` (which is
    /// not cleared). Allocation-free in steady state when the caller
    /// recycles `out` across events.
    pub fn handle_into(
        &mut self,
        ev: FlowEvent,
        sched: &mut impl Schedule<FlowEvent>,
        out: &mut Vec<FlowDone>,
    ) {
        match ev {
            FlowEvent::Begin { flow } => {
                let now = sched.now();
                if let Some(slot) = self.fmap.get(flow) {
                    if let Some(f) = self.flows.get_mut(slot) {
                        f.active = true;
                        f.last_update = now;
                        // inline of `index(flow)`: a flow's rate is still
                        // zero at Begin (rates only change in `reshare`,
                        // which only touches active flows), so the load
                        // cache needs no update here
                        debug_assert!(f.rate.to_bits() == 0);
                        for &l in &f.path {
                            self.scratch.seeds.push(l.0);
                            let v = &mut self.link_flows[l.0];
                            match v.binary_search(&flow) {
                                Err(pos) => v.insert(pos, flow),
                                Ok(_) => debug_assert!(false, "flow already in link index"),
                            }
                        }
                    }
                    self.reshare(now, sched);
                    self.record_utilization(now);
                }
            }
            FlowEvent::Complete { flow, gen } => {
                let now = sched.now();
                let Some(slot) = self.fmap.get(flow) else {
                    return;
                };
                {
                    // single lookup: validate, then inline `advance_one`
                    // and `unindex` (same arithmetic, same order) while the
                    // flow is still borrowed
                    let Some(f) = self.flows.get_mut(slot) else {
                        return;
                    };
                    if f.gen != gen || !f.active {
                        return;
                    }
                    let dt = now - f.last_update;
                    if dt > 0.0 {
                        let moved = (f.rate * dt).min(f.remaining);
                        f.remaining -= moved;
                        for &l in &f.path {
                            self.link_bytes[l.0] += moved;
                        }
                        f.last_update = now;
                    }
                    let rate = f.rate;
                    for &l in &f.path {
                        let v = &mut self.link_flows[l.0];
                        if let Ok(pos) = v.binary_search(&flow) {
                            v.remove(pos);
                        } else {
                            debug_assert!(false, "active flow missing from link index");
                        }
                        self.load[l.0] -= rate;
                        if v.is_empty() {
                            self.load[l.0] = 0.0;
                        }
                        self.scratch.changed_links.push(l.0);
                    }
                }
                self.fmap.unbind(flow);
                let Some(mut f) = self.flows.remove(slot) else {
                    debug_assert!(false, "flow vanished after validation");
                    return;
                };
                debug_assert!(
                    f.remaining <= 1e-6 * f.bytes.max(1.0),
                    "completion with {} bytes left",
                    f.remaining
                );
                self.completed += 1;
                if let Some(mon) = self.monitor.as_mut() {
                    mon.reg.observe("net.transfer_latency", now - f.requested);
                    mon.reg.observe("net.transfer_bytes", f.bytes);
                }
                out.push(FlowDone {
                    id: FlowId(flow),
                    tag: f.tag,
                    bytes: f.bytes,
                    requested: f.requested,
                    finished: now,
                });
                for &l in &f.path {
                    self.scratch.seeds.push(l.0);
                }
                self.spare_paths.push(std::mem::take(&mut f.path));
                self.reshare(now, sched);
                self.record_utilization(now);
            }
        }
    }

    /// Unbinds a flow id and removes its slot, returning the flow.
    /// Callers recycle `f.path` into `spare_paths` once done with it.
    fn remove_flow(&mut self, id: u64) -> Option<Flow> {
        let slot = self.fmap.unbind(id)?;
        self.flows.remove(slot)
    }

    /// Moves one flow's progress forward to `now` at its current rate,
    /// charging the carried bytes to its links. No-op for flows still in
    /// their latency phase. Called exactly when a flow's rate, path, or
    /// existence is about to change, so per-flow float arithmetic is a
    /// fixed function of its own rate-change history — the property the
    /// full/incremental bit-identity rests on.
    fn advance_one(&mut self, id: u64, now: SimTime) {
        let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get_mut(s)) else {
            debug_assert!(false, "advance of a missing flow");
            return;
        };
        if !f.active {
            return;
        }
        let dt = now - f.last_update;
        if dt > 0.0 {
            let moved = (f.rate * dt).min(f.remaining);
            f.remaining -= moved;
            for &l in &f.path {
                self.link_bytes[l.0] += moved;
            }
            f.last_update = now;
        }
    }

    /// Inserts an active flow into the per-link index and load cache.
    fn index(&mut self, id: u64) {
        let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get(s)) else {
            debug_assert!(false, "indexing a missing flow");
            return;
        };
        if !f.active {
            return;
        }
        let rate = f.rate;
        for &l in &f.path {
            let v = &mut self.link_flows[l.0];
            match v.binary_search(&id) {
                Err(pos) => v.insert(pos, id),
                Ok(_) => debug_assert!(false, "flow already in link index"),
            }
            if rate != 0.0 {
                self.load[l.0] += rate;
                self.scratch.changed_links.push(l.0);
            }
        }
    }

    /// Removes an active flow from the per-link index and load cache,
    /// snapping a link's load to exactly zero when its last flow leaves.
    fn unindex(&mut self, id: u64) {
        let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get(s)) else {
            debug_assert!(false, "unindexing a missing flow");
            return;
        };
        if !f.active {
            return;
        }
        let rate = f.rate;
        for &l in &f.path {
            let v = &mut self.link_flows[l.0];
            if let Ok(pos) = v.binary_search(&id) {
                v.remove(pos);
            } else {
                debug_assert!(false, "active flow missing from link index");
            }
            self.load[l.0] -= rate;
            if self.link_flows[l.0].is_empty() {
                self.load[l.0] = 0.0;
            }
            self.scratch.changed_links.push(l.0);
        }
    }

    /// Recomputes max-min fair rates for the dirty scope and reschedules
    /// completions of the flows whose rate actually changed.
    ///
    /// Callers push the link indices affected by the triggering change
    /// into `scratch.seeds` first. Under [`ShareMode::Incremental`] the
    /// recomputed scope is the connected component(s) of the link↔flow
    /// bipartite graph reachable from those seeds; under
    /// [`ShareMode::Full`] it is every loaded link (the seeds are
    /// ignored). Either way, only flows whose freshly computed rate
    /// differs bit-wise from their current rate are advanced, re-rated,
    /// and rescheduled — flows outside the dirty component always compare
    /// equal (their component's fill arithmetic reads nothing that
    /// changed), which is what makes the two modes bit-identical.
    fn reshare(&mut self, now: SimTime, sched: &mut impl Schedule<FlowEvent>) {
        self.reshare_count += 1;
        self.scratch.epoch += 1;
        let epoch = self.scratch.epoch;
        self.scratch.comp_links.clear();
        self.scratch.comp_flows.clear();
        match self.sharing {
            ShareMode::Full => {
                self.scratch.seeds.clear();
                for (li, fl) in self.link_flows.iter().enumerate() {
                    if !fl.is_empty() {
                        self.scratch.link_stamp[li] = epoch;
                        self.scratch.comp_links.push(li);
                    }
                }
                // id-sorted sink: the slot-order slab scan feeds a sort
                let mut ids: Vec<u64> = Vec::new();
                self.flows.for_each(|_, f| {
                    if f.active {
                        ids.push(f.id);
                    }
                });
                ids.sort_unstable();
                for &id in &ids {
                    let Some(f) = self.fmap.get(id).and_then(|s| self.flows.get_mut(s)) else {
                        debug_assert!(false, "active flow vanished during scan");
                        continue;
                    };
                    f.mark = epoch;
                }
                self.scratch.comp_flows = ids;
            }
            ShareMode::Incremental => {
                // component search over the link↔flow bipartite graph
                self.scratch.queue.clear();
                while let Some(l) = self.scratch.seeds.pop() {
                    if self.scratch.link_stamp[l] != epoch {
                        self.scratch.link_stamp[l] = epoch;
                        self.scratch.queue.push(l);
                    }
                }
                while let Some(l) = self.scratch.queue.pop() {
                    if self.link_flows[l].is_empty() {
                        continue;
                    }
                    self.scratch.comp_links.push(l);
                    for &fid in &self.link_flows[l] {
                        let Some(f) = self.fmap.get(fid).and_then(|s| self.flows.get_mut(s)) else {
                            debug_assert!(false, "indexed flow vanished");
                            continue;
                        };
                        if f.mark == epoch {
                            continue;
                        }
                        f.mark = epoch;
                        self.scratch.comp_flows.push(fid);
                        for &l2 in &f.path {
                            if self.scratch.link_stamp[l2.0] != epoch {
                                self.scratch.link_stamp[l2.0] = epoch;
                                self.scratch.queue.push(l2.0);
                            }
                        }
                    }
                }
                // ascending order: the fill scans links (and fixes flows)
                // in exactly the per-component order a full scan would
                self.scratch.comp_links.sort_unstable();
                self.scratch.comp_flows.sort_unstable();
            }
        }
        self.links_touched += self.scratch.comp_links.len() as u64;
        self.flows_touched += self.scratch.comp_flows.len() as u64;
        if self.scratch.comp_flows.is_empty() {
            // nothing is coupled to the change (e.g. the departing flow
            // was the last on its links): no rate can differ, so skip the
            // fill and apply scaffolding outright
            return;
        }

        if let [fid] = self.scratch.comp_flows[..] {
            // single-flow component: every component link carries exactly
            // this one flow, so the generic fill would compute each link's
            // share as `cap / 1` (an exact division) and fix the flow at
            // the minimum — compute that minimum directly
            let mut share = f64::INFINITY;
            for &li in &self.scratch.comp_links {
                let cap = self.effective_bandwidth(LinkId(li));
                if cap < share {
                    share = cap;
                }
            }
            let Some(f) = self.fmap.get(fid).and_then(|s| self.flows.get_mut(s)) else {
                debug_assert!(false, "flow vanished during fill");
                return;
            };
            f.pending = share;
            self.apply_pending(now, sched);
            return;
        }

        // progressive filling over the *effective* (fault-adjusted) caps,
        // restricted to the component: repeatedly saturate the bottleneck
        // link (minimal fair share), fixing its unassigned flows
        for i in 0..self.scratch.comp_links.len() {
            let li = self.scratch.comp_links[i];
            self.scratch.cap[li] = self.effective_bandwidth(LinkId(li));
            self.scratch.nflows[li] = self.link_flows[li].len();
        }
        let mut unassigned = self.scratch.comp_flows.len();
        while unassigned > 0 {
            let mut best: Option<(f64, usize)> = None;
            for &li in &self.scratch.comp_links {
                let n = self.scratch.nflows[li];
                if n > 0 {
                    let share = self.scratch.cap[li] / n as f64;
                    if best.is_none_or(|(s, _)| share < s) {
                        best = Some((share, li));
                    }
                }
            }
            let Some((share, bottleneck)) = best else {
                debug_assert!(false, "unassigned flows but no loaded link");
                break;
            };
            // fix every unassigned flow crossing the bottleneck, in
            // ascending id order (link_flows lists are kept sorted)
            self.scratch.batch.clear();
            for &fid in &self.link_flows[bottleneck] {
                let unfixed = self
                    .fmap
                    .get(fid)
                    .and_then(|s| self.flows.get(s))
                    .is_some_and(|f| f.fixed != epoch);
                if unfixed {
                    self.scratch.batch.push(fid);
                }
            }
            debug_assert!(!self.scratch.batch.is_empty());
            for i in 0..self.scratch.batch.len() {
                let fid = self.scratch.batch[i];
                let Some(f) = self.fmap.get(fid).and_then(|s| self.flows.get_mut(s)) else {
                    debug_assert!(false, "flow vanished during fill");
                    continue;
                };
                f.fixed = epoch;
                f.pending = share;
                unassigned -= 1;
                for &l in &f.path {
                    self.scratch.cap[l.0] -= share;
                    if self.scratch.cap[l.0] < 0.0 {
                        self.scratch.cap[l.0] = 0.0; // guard accumulated rounding
                    }
                    self.scratch.nflows[l.0] -= 1;
                }
            }
        }

        self.apply_pending(now, sched);
    }

    /// Applies the rates computed into `pending` by the current fill and
    /// reschedules completions, ascending flow id over the component:
    /// scheduling order assigns engine sequence numbers, which break ties
    /// between equal-time events. Flows whose freshly computed rate is
    /// bit-equal to their current rate are left entirely alone — no
    /// progress charge, no generation bump, no reschedule — so their
    /// pending completion events survive verbatim.
    fn apply_pending(&mut self, now: SimTime, sched: &mut impl Schedule<FlowEvent>) {
        for i in 0..self.scratch.comp_flows.len() {
            let fid = self.scratch.comp_flows[i];
            // one lookup: check, then inline `advance_one` (the flow is in
            // the component, hence active) and the rate switch
            let Some(f) = self.fmap.get(fid).and_then(|s| self.flows.get_mut(s)) else {
                debug_assert!(false, "flow vanished before reschedule");
                continue;
            };
            if f.pending.to_bits() == f.rate.to_bits() {
                continue;
            }
            let dt = now - f.last_update;
            if dt > 0.0 {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.path {
                    self.link_bytes[l.0] += moved;
                }
            }
            let old = f.rate;
            f.rate = f.pending;
            f.gen += 1;
            f.last_update = now;
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let eta = f.remaining / f.rate;
            let gen = f.gen;
            let new = f.rate;
            for &l in &f.path {
                self.load[l.0] = self.load[l.0] - old + new;
                self.scratch.changed_links.push(l.0);
            }
            sched.schedule_at(now.after(eta), FlowEvent::Complete { flow: fid, gen });
        }
        #[cfg(debug_assertions)]
        self.verify_load_cache();
    }

    /// Debug-build cross-check: the O(1) load cache must agree with a
    /// fresh sorted-id accumulation on every touched link.
    #[cfg(debug_assertions)]
    fn verify_load_cache(&self) {
        for &li in &self.scratch.comp_links {
            let mut sum = 0.0;
            for &fid in &self.link_flows[li] {
                if let Some(f) = self.fmap.get(fid).and_then(|s| self.flows.get(s)) {
                    sum += f.rate;
                }
            }
            let cached = self.load[li];
            debug_assert!(
                (cached - sum).abs() <= 1e-6 * sum.abs().max(1.0),
                "link {li}: cached load {cached} drifted from {sum}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind};
    use lsds_core::{Ctx, EventDriven, Model};

    /// Harness model: drives a FlowNet and records completions.
    struct Harness {
        net: FlowNet,
        done: Vec<FlowDone>,
        /// transfers to start at given times: (t, src, dst, bytes, tag)
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    }

    enum Ev {
        Kickoff(usize),
        Net(FlowEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Kickoff(i) => {
                    let (_, src, dst, bytes, tag) = self.plan[i];
                    self.net.start(src, dst, bytes, tag, &mut ctx.map(Ev::Net));
                }
                Ev::Net(fe) => {
                    let done = self.net.handle(fe, &mut ctx.map(Ev::Net));
                    self.done.extend(done);
                }
            }
        }
    }

    fn run_plan(
        topo: Topology,
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    ) -> (Vec<FlowDone>, FlowNet) {
        run_plan_mode(topo, plan, ShareMode::Incremental)
    }

    fn run_plan_mode(
        topo: Topology,
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
        mode: ShareMode,
    ) -> (Vec<FlowDone>, FlowNet) {
        let mut net = FlowNet::new(topo);
        net.set_share_mode(mode);
        let mut sim = EventDriven::new(Harness {
            net,
            done: vec![],
            plan: plan.clone(),
        });
        for (i, (t, ..)) in plan.iter().enumerate() {
            sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
        }
        sim.run();
        let m = sim.into_model();
        (m.done, m.net)
    }

    fn pair(bw: f64, lat: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, b, bw, lat);
        (t, a, b)
    }

    #[test]
    fn single_flow_full_bandwidth() {
        let (t, a, b) = pair(mbps(80.0), 0.1); // 10 MB/s
        let (done, net) = run_plan(t, vec![(0.0, a, b, 100.0e6, 7)]);
        assert_eq!(done.len(), 1);
        // latency 0.1 + 100 MB / 10 MB/s = 10.1 s
        assert!((done[0].finished.seconds() - 10.1).abs() < 1e-6);
        assert_eq!(done[0].tag, 7);
        assert_eq!(net.completed(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn two_flows_share_equally() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 50.0e6, 2)]);
        assert_eq!(done.len(), 2);
        // both at 5 MB/s → both finish at 10 s
        for d in &done {
            assert!((d.finished.seconds() - 10.0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn late_flow_speeds_up_after_first_completes() {
        let (t, a, b) = pair(mbps(80.0), 0.0); // 10 MB/s
                                               // flow1: 50 MB at t=0; flow2: 75 MB at t=0.
                                               // shared 5 MB/s each; flow1 done at 10s; flow2 then has 25 MB left
                                               // at 10 MB/s → done at 12.5 s
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 75.0e6, 2)]);
        let d2 = done.iter().find(|d| d.tag == 2).unwrap();
        assert!((d2.finished.seconds() - 12.5).abs() < 1e-6, "{d2:?}");
    }

    #[test]
    fn max_min_textbook_allocation() {
        // Classic: flows A (l1), B (l1+l2), C (l2).
        // l1 cap 10, l2 cap 6 (MB/s). Max-min: bottleneck l2 share 3 →
        // B=C=3; l1 remaining 7 → A=7.
        for mode in [ShareMode::Full, ShareMode::Incremental] {
            let mut t = Topology::new();
            let n0 = t.add_node(NodeKind::Host, "n0");
            let n1 = t.add_node(NodeKind::Router, "n1");
            let n2 = t.add_node(NodeKind::Host, "n2");
            t.add_link(n0, n1, 10.0e6, 0.0);
            t.add_link(n1, n2, 6.0e6, 0.0);
            // sizes chosen so nothing completes before we inspect rates
            let mut net = FlowNet::new(t);
            net.set_share_mode(mode);
            let mut sim = EventDriven::new(Harness {
                net,
                done: vec![],
                plan: vec![
                    (0.0, n0, n1, 1.0e9, 1), // A over l1
                    (0.0, n0, n2, 1.0e9, 2), // B over l1+l2
                    (0.0, n1, n2, 1.0e9, 3), // C over l2
                ],
            });
            for i in 0..3 {
                sim.schedule(SimTime::ZERO, Ev::Kickoff(i));
            }
            sim.run_until(SimTime::new(1.0));
            let net = &sim.model().net;
            let mut rates: std::collections::HashMap<u64, f64> = Default::default();
            net.flows.for_each(|_, f| {
                rates.insert(f.tag, f.rate);
            });
            assert!((rates[&1] - 7.0e6).abs() < 1.0, "A {}", rates[&1]);
            assert!((rates[&2] - 3.0e6).abs() < 1.0, "B {}", rates[&2]);
            assert!((rates[&3] - 3.0e6).abs() < 1.0, "C {}", rates[&3]);
        }
    }

    #[test]
    fn conservation_of_bytes() {
        let (t, a, b) = pair(mbps(80.0), 0.01);
        let plan: Vec<_> = (0..20)
            .map(|i| (i as f64 * 0.37, a, b, 1.0e6 * (i + 1) as f64, i as u64))
            .collect();
        let injected: f64 = plan.iter().map(|p| p.3).sum();
        let (done, net) = run_plan(t, plan);
        assert_eq!(done.len(), 20);
        let delivered: f64 = done.iter().map(|d| d.bytes).sum();
        assert!((delivered - injected).abs() < 1.0);
        // the single forward link carried everything
        assert!((net.link_bytes(LinkId(0)) - injected).abs() < injected * 1e-6);
    }

    #[test]
    fn utilization_reflects_active_flows() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(t),
            done: vec![],
            plan: vec![(0.0, a, b, 1.0e9, 1)],
        });
        sim.schedule(SimTime::ZERO, Ev::Kickoff(0));
        sim.run_until(SimTime::new(0.5));
        assert!((sim.model().net.link_utilization(LinkId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_tracks_utilization_and_latency_without_changing_results() {
        let plan: Vec<_> = (0..8)
            .map(|i| {
                let (t, a, b) = (i as f64 * 0.5, NodeId(0), NodeId(1));
                (t, a, b, 1.0e6 * (i + 1) as f64, i as u64)
            })
            .collect();
        let run = |monitored: bool| {
            let (t, _, _) = pair(mbps(80.0), 0.01);
            let mut net = FlowNet::new(t);
            if monitored {
                net.enable_monitor();
            }
            let mut sim = EventDriven::new(Harness {
                net,
                done: vec![],
                plan: plan.clone(),
            });
            for (i, (t, ..)) in plan.iter().enumerate() {
                sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
            }
            sim.run();
            let m = sim.into_model();
            (m.done, m.net)
        };
        let (done_mon, net_mon) = run(true);
        let (done_plain, _) = run(false);
        assert_eq!(done_mon, done_plain, "monitoring must not perturb the run");

        let reg = net_mon.monitor().unwrap();
        let util = reg.series("net.link.a->b.utilization").unwrap();
        assert!(
            (util.max() - 1.0).abs() < 1e-9,
            "link saturated at some point"
        );
        assert_eq!(util.value(), 0.0, "idle after the last completion");
        let lat = reg.summary("net.transfer_latency").unwrap();
        assert_eq!(lat.count(), 8);
        assert!(lat.min() > 0.0);

        let mut merged = Registry::new();
        net_mon.export_metrics(&mut merged);
        assert_eq!(merged.counter("net.transfers_completed"), 8);
        assert!(merged.gauge("net.link.a->b.bytes").unwrap() > 0.0);
        assert!(merged.counter("net.reshare_count") > 0);
        assert!(merged.counter("net.route_cache_misses") > 0);
    }

    #[test]
    fn incremental_leaves_disjoint_components_untouched() {
        // two disjoint host pairs: flows on pair 0 must never widen the
        // reshare scope to pair 1's links
        let mut t = Topology::new();
        let a0 = t.add_node(NodeKind::Host, "a0");
        let b0 = t.add_node(NodeKind::Host, "b0");
        let a1 = t.add_node(NodeKind::Host, "a1");
        let b1 = t.add_node(NodeKind::Host, "b1");
        t.add_duplex(a0, b0, mbps(80.0), 0.0);
        t.add_duplex(a1, b1, mbps(80.0), 0.0);
        let plan = vec![
            (0.0, a0, b0, 50.0e6, 0),
            (0.0, a1, b1, 50.0e6, 1),
            (1.0, a0, b0, 50.0e6, 2),
            (1.0, a1, b1, 50.0e6, 3),
        ];
        let (done, net) = run_plan(t, plan);
        assert_eq!(done.len(), 4);
        // 8 reshares (4 begins + 4 completes), each touching at most the
        // one forward link and its 1–2 flows — never the other pair's.
        // The last completion of each pair leaves an empty component
        // (0 links), so per pair: 1 + 1 + 1 + 0 links, 1 + 2 + 1 + 0 flows.
        assert_eq!(net.reshare_count(), 8);
        assert_eq!(net.links_touched(), 6);
        assert_eq!(net.flows_touched(), 8);
    }

    #[test]
    fn full_and_incremental_trajectories_match_bitwise() {
        let (t, a, b) = pair(mbps(80.0), 0.01);
        let plan: Vec<_> = (0..16)
            .map(|i| (i as f64 * 0.61, a, b, 1.0e6 * (i % 5 + 1) as f64, i as u64))
            .collect();
        let (full, _) = run_plan_mode(t.clone(), plan.clone(), ShareMode::Full);
        let (inc, _) = run_plan_mode(t, plan, ShareMode::Incremental);
        assert_eq!(full.len(), inc.len());
        for (f, i) in full.iter().zip(&inc) {
            assert_eq!(f.tag, i.tag);
            assert_eq!(
                f.finished.seconds().to_bits(),
                i.finished.seconds().to_bits(),
                "tag {} diverged",
                f.tag
            );
        }
    }

    #[test]
    fn route_cache_serves_repeated_pairs() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let plan: Vec<_> = (0..6).map(|i| (i as f64, a, b, 1.0e6, i as u64)).collect();
        let (_, net) = run_plan(t, plan);
        let (hits, misses) = net.route_cache_stats();
        assert_eq!(misses, 1, "one miss fills the (a, b) entry");
        assert_eq!(hits, 5, "the remaining starts are cache hits");
    }

    #[test]
    #[should_panic]
    fn unroutable_transfer_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(b, a, 1.0, 0.0); // reverse only
        let _ = run_plan(t, vec![(0.0, a, b, 1.0, 0)]);
    }
}
