//! Flow-level (fluid) network model with max-min fair bandwidth sharing.
//!
//! Each transfer is a fluid flow along its routed path; concurrent flows
//! share link bandwidth max-min fairly, recomputed on every arrival and
//! departure. This is the granularity OptorSim- and SimGrid-class
//! simulators use: cheap ("it can model only the flows of packets going
//! from one end to another") at the price of ignoring per-packet effects —
//! the other side of the E13 trade-off.

use crate::fault::LinkFault;
use crate::routing::Routing;
use crate::topology::{LinkId, NodeId, Topology};
use lsds_core::{Schedule, SimTime};
use lsds_obs::Registry;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Identifier of a flow within a [`FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub u64);

/// Events the flow model schedules for itself. Embed these in the owning
/// model's event type and route them back to [`FlowNet::handle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowEvent {
    /// The flow's first byte reaches the path after propagation latency.
    Begin {
        /// Raw id of the starting flow.
        flow: u64,
    },
    /// Predicted completion; stale generations are ignored.
    Complete {
        /// Raw id of the completing flow.
        flow: u64,
        /// Rate-share generation this prediction was made under.
        gen: u64,
    },
}

/// Completion record returned to the owner.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDone {
    /// The finished flow.
    pub id: FlowId,
    /// Owner-supplied tag (job id, file id …).
    pub tag: u64,
    /// Bytes transferred.
    pub bytes: f64,
    /// When the transfer was requested.
    pub requested: SimTime,
    /// When the last byte arrived.
    pub finished: SimTime,
}

/// Error returned by [`FlowNet::try_start`] when no usable route exists
/// from `src` to `dst` (possible in any topology once links can fail).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoRoute {
    /// Transfer source.
    pub src: NodeId,
    /// Unreachable destination.
    pub dst: NodeId,
}

impl fmt::Display for NoRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no route {:?} -> {:?}", self.src, self.dst)
    }
}

impl std::error::Error for NoRoute {}

/// Record of a flow torn down before completion — by [`FlowNet::cancel`]
/// or because a link failure left it with no usable route.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowAborted {
    /// The aborted flow.
    pub id: FlowId,
    /// Owner-supplied tag.
    pub tag: u64,
    /// Requested transfer size in bytes.
    pub bytes: f64,
    /// Bytes actually carried before the abort (lost; a retry restarts
    /// from zero, matching FTP-style whole-file transfer semantics).
    pub transferred: f64,
    /// When the transfer was requested.
    pub requested: SimTime,
}

/// What a [`FlowNet::apply_fault`] call did to in-flight traffic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultOutcome {
    /// Flows that had no surviving route and were torn down. The owner
    /// decides whether to retry them (see `RetryPolicy`).
    pub aborted: Vec<FlowAborted>,
    /// Flows moved onto a detour path, keeping their progress.
    pub rerouted: u64,
}

struct Flow {
    src: NodeId,
    dst: NodeId,
    path: Vec<LinkId>,
    remaining: f64,
    rate: f64,
    last_update: SimTime,
    gen: u64,
    tag: u64,
    requested: SimTime,
    active: bool,
    bytes: f64,
}

/// Optional MonALISA-style monitoring attached to a [`FlowNet`]: per-link
/// time-weighted utilization series plus transfer latency/size summaries.
/// `None` by default, so an unmonitored network does zero extra work.
struct NetMonitor {
    reg: Registry,
    /// Precomputed series key per link (`net.link.<from>-><to>.utilization`).
    link_keys: Vec<String>,
    /// Precomputed series key per link (`net.link.<from>-><to>.up`).
    up_keys: Vec<String>,
}

/// The fluid network state. Owns no clock; it is driven by an engine
/// through [`lsds_core::Schedule`].
pub struct FlowNet {
    topo: Topology,
    routing: Routing,
    flows: HashMap<u64, Flow>,
    next_id: u64,
    /// Cumulative bytes carried per link (for utilization reports).
    link_bytes: Vec<f64>,
    completed: u64,
    /// Dynamic link state: `false` while a link is down (fault-injected).
    link_up: Vec<bool>,
    /// Bandwidth multiplier per link (`1.0` = nominal service).
    degrade: Vec<f64>,
    /// Accumulated downtime per link over closed down intervals (seconds).
    downtime: Vec<f64>,
    /// Start of the current down interval, if the link is down now.
    down_since: Vec<Option<f64>>,
    aborted: u64,
    rerouted: u64,
    faults_applied: u64,
    monitor: Option<NetMonitor>,
}

impl FlowNet {
    /// Builds a flow network over a topology (routes are computed here).
    pub fn new(topo: Topology) -> Self {
        let routing = Routing::compute(&topo);
        let n_links = topo.link_count();
        FlowNet {
            topo,
            routing,
            flows: HashMap::new(),
            next_id: 0,
            link_bytes: vec![0.0; n_links],
            completed: 0,
            link_up: vec![true; n_links],
            degrade: vec![1.0; n_links],
            downtime: vec![0.0; n_links],
            down_since: vec![None; n_links],
            aborted: 0,
            rerouted: 0,
            faults_applied: 0,
            monitor: None,
        }
    }

    /// Turns on monitoring: per-link utilization series and transfer
    /// summaries accumulate in an internal [`Registry`] from this point on.
    /// Monitoring only ever *reads* simulation state, so a monitored run's
    /// event trajectory is identical to an unmonitored one.
    pub fn enable_monitor(&mut self) {
        let key = |i: usize, what: &str| {
            let l = self.topo.link(LinkId(i));
            format!(
                "net.link.{}->{}.{what}",
                self.topo.node(l.from).name,
                self.topo.node(l.to).name
            )
        };
        let link_keys = (0..self.topo.link_count())
            .map(|i| key(i, "utilization"))
            .collect();
        let up_keys = (0..self.topo.link_count()).map(|i| key(i, "up")).collect();
        self.monitor = Some(NetMonitor {
            reg: Registry::new(),
            link_keys,
            up_keys,
        });
    }

    /// The monitoring registry, if monitoring is enabled.
    pub fn monitor(&self) -> Option<&Registry> {
        self.monitor.as_ref().map(|m| &m.reg)
    }

    /// Merges the accumulated network metrics into `reg` (cumulative
    /// per-link byte gauges are always available; utilization series and
    /// transfer summaries require [`FlowNet::enable_monitor`]).
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.inc("net.transfers_completed", self.completed);
        reg.inc("net.flows_aborted", self.aborted);
        reg.inc("net.flows_rerouted", self.rerouted);
        reg.inc("net.link_faults", self.faults_applied);
        reg.set_gauge("net.flows_in_flight", self.flows.len() as f64);
        for i in 0..self.topo.link_count() {
            let l = self.topo.link(LinkId(i));
            let name = format!(
                "net.link.{}->{}",
                self.topo.node(l.from).name,
                self.topo.node(l.to).name
            );
            reg.set_gauge(&format!("{name}.bytes"), self.link_bytes[i]);
            // closed down intervals only; an interval still open at export
            // time is visible through the `.up` series instead
            if self.downtime[i] > 0.0 || self.down_since[i].is_some() {
                reg.set_gauge(&format!("{name}.downtime"), self.downtime[i]);
            }
        }
        if let Some(mon) = &self.monitor {
            reg.merge(mon.reg.clone());
        }
    }

    /// Records the instantaneous utilization of every link into the
    /// monitor's series. No-op when monitoring is off.
    fn record_utilization(&mut self, now: SimTime) {
        let Some(mon) = self.monitor.as_mut() else {
            return;
        };
        let mut used = vec![0.0f64; self.topo.link_count()];
        // flow-id order keeps float accumulation deterministic
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let f = &self.flows[&id];
            for &l in &f.path {
                used[l.0] += f.rate;
            }
        }
        for (li, u) in used.iter().enumerate() {
            let util = u / self.topo.link(LinkId(li)).bandwidth;
            mon.reg
                .series_update(&mon.link_keys[li], now.seconds(), util);
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The routing tables.
    pub fn routing(&self) -> &Routing {
        &self.routing
    }

    /// Starts a transfer of `bytes` from `src` to `dst`. The flow begins
    /// consuming bandwidth after the path's propagation latency. `tag` is
    /// returned in the [`FlowDone`] record.
    ///
    /// Panics if `dst` is unreachable from `src`; on a network with
    /// injected faults use [`FlowNet::try_start`], since unreachability is
    /// a normal transient condition there.
    pub fn start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> FlowId {
        self.try_start(src, dst, bytes, tag, sched)
            // lsds-lint: allow(hot-path-panic) reason="start() is the documented panicking wrapper; fault-tolerant callers use try_start()"
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`FlowNet::start`]: returns [`NoRoute`] instead of
    /// panicking when `dst` is currently unreachable from `src` (routes
    /// exclude links that are down).
    pub fn try_start(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bytes: f64,
        tag: u64,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> Result<FlowId, NoRoute> {
        assert!(bytes > 0.0 && bytes.is_finite(), "bad transfer size");
        let path = self
            .routing
            .path(&self.topo, src, dst)
            .ok_or(NoRoute { src, dst })?;
        assert!(!path.is_empty(), "src == dst transfer needs no network");
        let latency: f64 = path.iter().map(|&l| self.topo.link(l).latency).sum();
        let id = self.next_id;
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                src,
                dst,
                path,
                remaining: bytes,
                rate: 0.0,
                last_update: sched.now(),
                gen: 0,
                tag,
                requested: sched.now(),
                active: false,
                bytes,
            },
        );
        sched.schedule_in(latency, FlowEvent::Begin { flow: id });
        Ok(FlowId(id))
    }

    /// Tears down an in-flight flow (its pending events become no-ops) and
    /// reshares bandwidth. Returns `None` if the flow no longer exists.
    pub fn cancel(
        &mut self,
        id: FlowId,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> Option<FlowAborted> {
        if !self.flows.contains_key(&id.0) {
            return None;
        }
        let now = sched.now();
        self.advance_progress(now);
        let Some(f) = self.flows.remove(&id.0) else {
            debug_assert!(false, "flow vanished between contains_key and remove");
            return None;
        };
        self.aborted += 1;
        let rec = FlowAborted {
            id,
            tag: f.tag,
            bytes: f.bytes,
            transferred: f.bytes - f.remaining,
            requested: f.requested,
        };
        self.reshare(now, sched);
        self.record_utilization(now);
        Some(rec)
    }

    /// Applies a link fault at the current simulated time.
    ///
    /// * [`LinkFault::Down`] — the link is removed from routing; flows
    ///   crossing it are moved to a surviving route (keeping their
    ///   progress) or torn down and reported in the [`FaultOutcome`] when
    ///   no route survives. Flows still in their latency phase keep their
    ///   originally scheduled begin time even if re-routed.
    /// * [`LinkFault::Up`] — the link rejoins routing for *new* flows;
    ///   flows already re-routed keep their detour (transfers do not flap
    ///   back mid-flight).
    /// * [`LinkFault::Degrade`] — the link's usable capacity becomes
    ///   `factor ×` nominal for the max-min fair share from now on.
    ///
    /// Call this from the owning model's event handler so same-seed runs
    /// replay faults identically.
    pub fn apply_fault(
        &mut self,
        fault: LinkFault,
        sched: &mut impl Schedule<FlowEvent>,
    ) -> FaultOutcome {
        let now = sched.now();
        self.advance_progress(now);
        self.faults_applied += 1;
        let mut outcome = FaultOutcome::default();
        match fault {
            LinkFault::Down(l) => {
                if self.link_up[l.0] {
                    self.link_up[l.0] = false;
                    self.down_since[l.0] = Some(now.seconds());
                    self.routing = Routing::compute_filtered(&self.topo, &self.link_up);
                    // sorted ids: abort/reroute order must be deterministic
                    let mut hit: Vec<u64> = self
                        .flows
                        .iter()
                        .filter(|(_, f)| f.path.contains(&l))
                        .map(|(&id, _)| id)
                        .collect();
                    hit.sort_unstable();
                    for id in hit {
                        let (src, dst) = {
                            let f = &self.flows[&id];
                            (f.src, f.dst)
                        };
                        match self.routing.path(&self.topo, src, dst) {
                            Some(p) if !p.is_empty() => {
                                let Some(f) = self.flows.get_mut(&id) else {
                                    debug_assert!(false, "hit-list flow vanished");
                                    continue;
                                };
                                f.path = p;
                                f.gen += 1; // stale Complete events die
                                self.rerouted += 1;
                                outcome.rerouted += 1;
                            }
                            _ => {
                                let Some(f) = self.flows.remove(&id) else {
                                    debug_assert!(false, "hit-list flow vanished");
                                    continue;
                                };
                                self.aborted += 1;
                                outcome.aborted.push(FlowAborted {
                                    id: FlowId(id),
                                    tag: f.tag,
                                    bytes: f.bytes,
                                    transferred: f.bytes - f.remaining,
                                    requested: f.requested,
                                });
                            }
                        }
                    }
                }
            }
            LinkFault::Up(l) => {
                if !self.link_up[l.0] {
                    self.link_up[l.0] = true;
                    if let Some(t0) = self.down_since[l.0].take() {
                        self.downtime[l.0] += now.seconds() - t0;
                    }
                    self.routing = Routing::compute_filtered(&self.topo, &self.link_up);
                }
            }
            LinkFault::Degrade { link, factor } => {
                assert!(factor.is_finite() && factor > 0.0, "bad degrade factor");
                self.degrade[link.0] = factor;
            }
        }
        self.reshare(now, sched);
        self.record_utilization(now);
        if let Some(mon) = self.monitor.as_mut() {
            let l = fault.link();
            let up = if self.link_up[l.0] { 1.0 } else { 0.0 };
            mon.reg.series_update(&mon.up_keys[l.0], now.seconds(), up);
        }
        outcome
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.link_up[link.0]
    }

    /// Usable capacity of a link right now: nominal bandwidth times the
    /// degradation factor, or zero while the link is down.
    pub fn effective_bandwidth(&self, link: LinkId) -> f64 {
        if self.link_up[link.0] {
            self.topo.link(link).bandwidth * self.degrade[link.0]
        } else {
            0.0
        }
    }

    /// Total downtime of a link up to `now` (open interval included).
    pub fn link_downtime(&self, link: LinkId, now: SimTime) -> f64 {
        let open = self.down_since[link.0]
            .map(|t0| now.seconds() - t0)
            .unwrap_or(0.0);
        self.downtime[link.0] + open
    }

    /// Flows torn down (by faults or [`FlowNet::cancel`]).
    pub fn aborted(&self) -> u64 {
        self.aborted
    }

    /// Flows moved to a detour path by link failures.
    pub fn rerouted(&self) -> u64 {
        self.rerouted
    }

    /// Number of flows currently in the system (including in latency phase).
    pub fn in_flight(&self) -> usize {
        self.flows.len()
    }

    /// Completed flow count.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Cumulative bytes carried by a link.
    pub fn link_bytes(&self, link: LinkId) -> f64 {
        self.link_bytes[link.0]
    }

    /// Summed current rate of the active flows crossing a link, bytes/s
    /// (sorted-id accumulation, so the value is reproducible).
    pub fn link_load(&self, link: LinkId) -> f64 {
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .map(|id| &self.flows[id])
            .filter(|f| f.active && f.path.contains(&link))
            .map(|f| f.rate)
            .sum()
    }

    /// Instantaneous utilization of a link in `[0, 1]`.
    pub fn link_utilization(&self, link: LinkId) -> f64 {
        // sorted-id accumulation via link_load: hash order must not leak
        // into the reported float
        self.link_load(link) / self.topo.link(link).bandwidth
    }

    /// Handles a flow event, returning any completions.
    pub fn handle(&mut self, ev: FlowEvent, sched: &mut impl Schedule<FlowEvent>) -> Vec<FlowDone> {
        match ev {
            FlowEvent::Begin { flow } => {
                let now = sched.now();
                self.advance_progress(now);
                if let Some(f) = self.flows.get_mut(&flow) {
                    f.active = true;
                    f.last_update = now;
                }
                self.reshare(now, sched);
                self.record_utilization(now);
                Vec::new()
            }
            FlowEvent::Complete { flow, gen } => {
                let now = sched.now();
                let valid = self
                    .flows
                    .get(&flow)
                    .is_some_and(|f| f.gen == gen && f.active);
                if !valid {
                    return Vec::new();
                }
                self.advance_progress(now);
                let Some(f) = self.flows.remove(&flow) else {
                    debug_assert!(false, "flow vanished after validation");
                    return Vec::new();
                };
                debug_assert!(
                    f.remaining <= 1e-6 * f.bytes.max(1.0),
                    "completion with {} bytes left",
                    f.remaining
                );
                self.completed += 1;
                if let Some(mon) = self.monitor.as_mut() {
                    mon.reg.observe("net.transfer_latency", now - f.requested);
                    mon.reg.observe("net.transfer_bytes", f.bytes);
                }
                let done = FlowDone {
                    id: FlowId(flow),
                    tag: f.tag,
                    bytes: f.bytes,
                    requested: f.requested,
                    finished: now,
                };
                self.reshare(now, sched);
                self.record_utilization(now);
                vec![done]
            }
        }
    }

    /// Moves every active flow's progress forward to `now` at its current
    /// rate, charging the carried bytes to its links.
    fn advance_progress(&mut self, now: SimTime) {
        // deterministic order: link_bytes accumulation must not depend on
        // HashMap iteration (float addition does not reassociate)
        let mut ids: Vec<u64> = self.flows.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let Some(f) = self.flows.get_mut(&id) else {
                debug_assert!(false, "flow vanished during progress advance");
                continue;
            };
            if !f.active {
                continue;
            }
            let dt = now - f.last_update;
            if dt > 0.0 {
                let moved = (f.rate * dt).min(f.remaining);
                f.remaining -= moved;
                for &l in &f.path {
                    self.link_bytes[l.0] += moved;
                }
                f.last_update = now;
            }
        }
    }

    /// Recomputes max-min fair rates and reschedules completions.
    fn reshare(&mut self, now: SimTime, sched: &mut impl Schedule<FlowEvent>) {
        // progressive filling over the *effective* (fault-adjusted) caps
        let mut cap: Vec<f64> = (0..self.topo.link_count())
            .map(|i| self.effective_bandwidth(LinkId(i)))
            .collect();
        let mut active: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        active.sort_unstable(); // determinism
        let mut flows_on_link = vec![0usize; cap.len()];
        // per-link flow lists, ascending id (inherited from `active`), so
        // fixing a bottleneck's flows is a scan of that link's list rather
        // than of every unassigned flow's whole path — O(Σ path length)
        // overall instead of O(flows²) for large fan-in
        let mut link_flows: Vec<Vec<u64>> = vec![Vec::new(); cap.len()];
        for &id in &active {
            for &l in &self.flows[&id].path {
                flows_on_link[l.0] += 1;
                link_flows[l.0].push(id);
            }
        }
        let mut fixed: HashSet<u64> = HashSet::with_capacity(active.len());
        let mut unassigned = active.len();
        while unassigned > 0 {
            // bottleneck link: minimal fair share among links with load
            let mut best: Option<(f64, usize)> = None;
            for (li, &n) in flows_on_link.iter().enumerate() {
                if n > 0 {
                    let share = cap[li] / n as f64;
                    if best.is_none_or(|(s, _)| share < s) {
                        best = Some((share, li));
                    }
                }
            }
            let Some((share, bottleneck)) = best else {
                debug_assert!(false, "unassigned flows but no loaded link");
                break;
            };
            // fix every unassigned flow crossing the bottleneck, in
            // ascending id order (same order the retain-based version
            // produced, so float arithmetic is bit-identical)
            let batch: Vec<u64> = link_flows[bottleneck]
                .iter()
                .copied()
                .filter(|id| !fixed.contains(id))
                .collect();
            debug_assert!(!batch.is_empty());
            for id in &batch {
                fixed.insert(*id);
                unassigned -= 1;
                let Some(f) = self.flows.get_mut(id) else {
                    debug_assert!(false, "active flow vanished during reshare");
                    continue;
                };
                f.rate = share;
                let path = f.path.clone();
                for l in path {
                    cap[l.0] -= share;
                    if cap[l.0] < 0.0 {
                        cap[l.0] = 0.0; // guard accumulated rounding
                    }
                    flows_on_link[l.0] -= 1;
                }
            }
        }
        // Reschedule completions in flow-id order: scheduling order
        // assigns engine sequence numbers, which break ties between
        // equal-timestamp events — iterating the HashMap directly would
        // make tie order (and thus ULP-level arithmetic) vary run to run.
        let mut ids: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.active)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        for id in ids {
            let Some(f) = self.flows.get_mut(&id) else {
                debug_assert!(false, "active flow vanished before reschedule");
                continue;
            };
            f.gen += 1;
            debug_assert!(f.rate > 0.0, "active flow with zero rate");
            let eta = f.remaining / f.rate;
            sched.schedule_at(
                now.after(eta),
                FlowEvent::Complete {
                    flow: id,
                    gen: f.gen,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind};
    use lsds_core::{Ctx, EventDriven, Model};

    /// Harness model: drives a FlowNet and records completions.
    struct Harness {
        net: FlowNet,
        done: Vec<FlowDone>,
        /// transfers to start at given times: (t, src, dst, bytes, tag)
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    }

    enum Ev {
        Kickoff(usize),
        Net(FlowEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Kickoff(i) => {
                    let (_, src, dst, bytes, tag) = self.plan[i];
                    self.net.start(src, dst, bytes, tag, &mut ctx.map(Ev::Net));
                }
                Ev::Net(fe) => {
                    let done = self.net.handle(fe, &mut ctx.map(Ev::Net));
                    self.done.extend(done);
                }
            }
        }
    }

    fn run_plan(
        topo: Topology,
        plan: Vec<(f64, NodeId, NodeId, f64, u64)>,
    ) -> (Vec<FlowDone>, FlowNet) {
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(topo),
            done: vec![],
            plan: plan.clone(),
        });
        for (i, (t, ..)) in plan.iter().enumerate() {
            sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
        }
        sim.run();
        let m = sim.into_model();
        (m.done, m.net)
    }

    fn pair(bw: f64, lat: f64) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, b, bw, lat);
        (t, a, b)
    }

    #[test]
    fn single_flow_full_bandwidth() {
        let (t, a, b) = pair(mbps(80.0), 0.1); // 10 MB/s
        let (done, net) = run_plan(t, vec![(0.0, a, b, 100.0e6, 7)]);
        assert_eq!(done.len(), 1);
        // latency 0.1 + 100 MB / 10 MB/s = 10.1 s
        assert!((done[0].finished.seconds() - 10.1).abs() < 1e-6);
        assert_eq!(done[0].tag, 7);
        assert_eq!(net.completed(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn two_flows_share_equally() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 50.0e6, 2)]);
        assert_eq!(done.len(), 2);
        // both at 5 MB/s → both finish at 10 s
        for d in &done {
            assert!((d.finished.seconds() - 10.0).abs() < 1e-6, "{d:?}");
        }
    }

    #[test]
    fn late_flow_speeds_up_after_first_completes() {
        let (t, a, b) = pair(mbps(80.0), 0.0); // 10 MB/s
                                               // flow1: 50 MB at t=0; flow2: 75 MB at t=0.
                                               // shared 5 MB/s each; flow1 done at 10s; flow2 then has 25 MB left
                                               // at 10 MB/s → done at 12.5 s
        let (done, _) = run_plan(t, vec![(0.0, a, b, 50.0e6, 1), (0.0, a, b, 75.0e6, 2)]);
        let d2 = done.iter().find(|d| d.tag == 2).unwrap();
        assert!((d2.finished.seconds() - 12.5).abs() < 1e-6, "{d2:?}");
    }

    #[test]
    fn max_min_textbook_allocation() {
        // Classic: flows A (l1), B (l1+l2), C (l2).
        // l1 cap 10, l2 cap 6 (MB/s). Max-min: bottleneck l2 share 3 →
        // B=C=3; l1 remaining 7 → A=7.
        let mut t = Topology::new();
        let n0 = t.add_node(NodeKind::Host, "n0");
        let n1 = t.add_node(NodeKind::Router, "n1");
        let n2 = t.add_node(NodeKind::Host, "n2");
        t.add_link(n0, n1, 10.0e6, 0.0);
        t.add_link(n1, n2, 6.0e6, 0.0);
        // sizes chosen so nothing completes before we inspect rates
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(t),
            done: vec![],
            plan: vec![
                (0.0, n0, n1, 1.0e9, 1), // A over l1
                (0.0, n0, n2, 1.0e9, 2), // B over l1+l2
                (0.0, n1, n2, 1.0e9, 3), // C over l2
            ],
        });
        for i in 0..3 {
            sim.schedule(SimTime::ZERO, Ev::Kickoff(i));
        }
        sim.run_until(SimTime::new(1.0));
        let net = &sim.model().net;
        let rates: HashMap<u64, f64> = net.flows.values().map(|f| (f.tag, f.rate)).collect();
        assert!((rates[&1] - 7.0e6).abs() < 1.0, "A {}", rates[&1]);
        assert!((rates[&2] - 3.0e6).abs() < 1.0, "B {}", rates[&2]);
        assert!((rates[&3] - 3.0e6).abs() < 1.0, "C {}", rates[&3]);
    }

    #[test]
    fn conservation_of_bytes() {
        let (t, a, b) = pair(mbps(80.0), 0.01);
        let plan: Vec<_> = (0..20)
            .map(|i| (i as f64 * 0.37, a, b, 1.0e6 * (i + 1) as f64, i as u64))
            .collect();
        let injected: f64 = plan.iter().map(|p| p.3).sum();
        let (done, net) = run_plan(t, plan);
        assert_eq!(done.len(), 20);
        let delivered: f64 = done.iter().map(|d| d.bytes).sum();
        assert!((delivered - injected).abs() < 1.0);
        // the single forward link carried everything
        assert!((net.link_bytes(LinkId(0)) - injected).abs() < injected * 1e-6);
    }

    #[test]
    fn utilization_reflects_active_flows() {
        let (t, a, b) = pair(mbps(80.0), 0.0);
        let mut sim = EventDriven::new(Harness {
            net: FlowNet::new(t),
            done: vec![],
            plan: vec![(0.0, a, b, 1.0e9, 1)],
        });
        sim.schedule(SimTime::ZERO, Ev::Kickoff(0));
        sim.run_until(SimTime::new(0.5));
        assert!((sim.model().net.link_utilization(LinkId(0)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn monitor_tracks_utilization_and_latency_without_changing_results() {
        let plan: Vec<_> = (0..8)
            .map(|i| {
                let (t, a, b) = (i as f64 * 0.5, NodeId(0), NodeId(1));
                (t, a, b, 1.0e6 * (i + 1) as f64, i as u64)
            })
            .collect();
        let run = |monitored: bool| {
            let (t, _, _) = pair(mbps(80.0), 0.01);
            let mut net = FlowNet::new(t);
            if monitored {
                net.enable_monitor();
            }
            let mut sim = EventDriven::new(Harness {
                net,
                done: vec![],
                plan: plan.clone(),
            });
            for (i, (t, ..)) in plan.iter().enumerate() {
                sim.schedule(SimTime::new(*t), Ev::Kickoff(i));
            }
            sim.run();
            let m = sim.into_model();
            (m.done, m.net)
        };
        let (done_mon, net_mon) = run(true);
        let (done_plain, _) = run(false);
        assert_eq!(done_mon, done_plain, "monitoring must not perturb the run");

        let reg = net_mon.monitor().unwrap();
        let util = reg.series("net.link.a->b.utilization").unwrap();
        assert!(
            (util.max() - 1.0).abs() < 1e-9,
            "link saturated at some point"
        );
        assert_eq!(util.value(), 0.0, "idle after the last completion");
        let lat = reg.summary("net.transfer_latency").unwrap();
        assert_eq!(lat.count(), 8);
        assert!(lat.min() > 0.0);

        let mut merged = Registry::new();
        net_mon.export_metrics(&mut merged);
        assert_eq!(merged.counter("net.transfers_completed"), 8);
        assert!(merged.gauge("net.link.a->b.bytes").unwrap() > 0.0);
    }

    #[test]
    #[should_panic]
    fn unroutable_transfer_panics() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(b, a, 1.0, 0.0); // reverse only
        let _ = run_plan(t, vec![(0.0, a, b, 1.0, 0)]);
    }
}
