//! Shortest-path routing over a [`Topology`], plus a pairwise route cache.

use crate::topology::{LinkId, NodeId, Topology};
use std::cell::RefCell;
use std::collections::HashMap;

/// Next-hop routing, computed with Dijkstra per source *on demand*.
///
/// Path weight is propagation latency, with hop count as tie-break, which
/// matches the static shortest-path routing the surveyed Grid simulators
/// assume. Routes are computed once per topology *state*: a static network
/// computes them once, and a network with injected link faults recomputes
/// them on each link state change (see [`Routing::compute_filtered`]).
///
/// Per-source rows are *lazy and sparse*: a row is materialized by one
/// Dijkstra run the first time any query touches that source, and stores
/// only the nodes actually reachable from it. An eager all-pairs table is
/// `O(n²)` memory — a hard wall near 100k nodes — while lazy rows cost
/// `O(Σ reachable)` over the sources a workload actually routes from.
/// Laziness is invisible to results: each row is a pure function of the
/// topology state, so query order cannot change any path.
#[derive(Debug, Clone)]
pub struct Routing {
    /// Link mask for fault-filtered routing (`None` = every link usable).
    usable: Option<Vec<bool>>,
    /// Lazily materialized per-source rows plus reusable Dijkstra scratch;
    /// behind a `RefCell` so read-side queries (`&self`) can fill rows.
    rows: RefCell<Rows>,
}

/// Heap entry: (latency bits, hops, node, first link from the source).
type HeapEntry = std::cmp::Reverse<(u64, u32, usize, Option<LinkId>)>;

/// One materialized routing row: sorted `(dst, first link)` pairs for
/// every node reachable from a source.
type Row = Box<[(u32, LinkId)]>;

#[derive(Debug, Clone, Default)]
struct Rows {
    /// `sources[src]` = sorted `(dst, first link)` pairs for every node
    /// reachable from `src`; `None` until materialized. Absent `dst` =
    /// unreachable.
    sources: Vec<Option<Row>>,
    /// Dijkstra scratch, validated by `stamp[v] == epoch` so runs reset in
    /// `O(touched)` instead of `O(n)`.
    stamp: Vec<u64>,
    epoch: u64,
    dist: Vec<(f64, u32)>,
    visited: Vec<bool>,
    first: Vec<Option<LinkId>>,
    heap: std::collections::BinaryHeap<HeapEntry>,
}

impl Rows {
    fn new(n: usize) -> Self {
        Rows {
            sources: vec![None; n],
            stamp: vec![0; n],
            epoch: 0,
            dist: vec![(f64::INFINITY, u32::MAX); n],
            visited: vec![false; n],
            first: vec![None; n],
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// One Dijkstra from `src`; identical relaxation and tie-breaking to a
    /// full-table build, so the lazy row equals the eager row bit for bit.
    fn materialize(&mut self, topo: &Topology, usable: Option<&[bool]>, src: usize) {
        self.epoch += 1;
        let epoch = self.epoch;
        let touch = |stamp: &mut Vec<u64>,
                     visited: &mut Vec<bool>,
                     first: &mut Vec<Option<LinkId>>,
                     dist: &mut Vec<(f64, u32)>,
                     v: usize| {
            if stamp[v] != epoch {
                stamp[v] = epoch;
                visited[v] = false;
                first[v] = None;
                dist[v] = (f64::INFINITY, u32::MAX);
            }
        };
        touch(
            &mut self.stamp,
            &mut self.visited,
            &mut self.first,
            &mut self.dist,
            src,
        );
        self.dist[src] = (0.0, 0);
        let mut reached: Vec<(u32, LinkId)> = Vec::new();
        self.heap
            .push(std::cmp::Reverse((ordered_float(0.0), 0u32, src, None)));
        while let Some(std::cmp::Reverse((d, hops, u, via))) = self.heap.pop() {
            if self.visited[u] {
                continue;
            }
            self.visited[u] = true;
            self.first[u] = via;
            if u != src {
                if let Some(lid) = via {
                    reached.push((u as u32, lid));
                }
            }
            for &lid in topo.out_links(NodeId(u)) {
                if usable.is_some_and(|mask| !mask[lid.0]) {
                    continue;
                }
                let link = topo.link(lid);
                let v = link.to.0;
                touch(
                    &mut self.stamp,
                    &mut self.visited,
                    &mut self.first,
                    &mut self.dist,
                    v,
                );
                if self.visited[v] {
                    continue;
                }
                let nd = from_ordered(d) + link.latency;
                let nh = hops + 1;
                if (nd, nh) < self.dist[v] {
                    self.dist[v] = (nd, nh);
                    let via_v = via.or(Some(lid));
                    self.heap
                        .push(std::cmp::Reverse((ordered_float(nd), nh, v, via_v)));
                }
            }
        }
        reached.sort_unstable_by_key(|&(dst, _)| dst);
        self.sources[src] = Some(reached.into_boxed_slice());
    }

    /// First link from `src` toward `dst`, materializing the row on first
    /// touch.
    fn next_hop(
        &mut self,
        topo: &Topology,
        usable: Option<&[bool]>,
        src: usize,
        dst: usize,
    ) -> Option<LinkId> {
        if self.sources[src].is_none() {
            self.materialize(topo, usable, src);
        }
        let row = self.sources[src].as_deref()?;
        let i = row.binary_search_by_key(&(dst as u32), |&(d, _)| d).ok()?;
        Some(row[i].1)
    }
}

impl Routing {
    /// Builds routing over every link (rows materialize on first query).
    pub fn compute(topo: &Topology) -> Self {
        Routing {
            usable: None,
            rows: RefCell::new(Rows::new(topo.node_count())),
        }
    }

    /// Builds routing using only links whose `usable` entry is `true`
    /// (indexed by [`LinkId`]). This is how [`crate::FlowNet`] routes
    /// around failed links: rebuild with the down links masked out.
    pub fn compute_filtered(topo: &Topology, usable: &[bool]) -> Self {
        assert_eq!(usable.len(), topo.link_count(), "usable mask size");
        Routing {
            usable: Some(usable.to_vec()),
            rows: RefCell::new(Rows::new(topo.node_count())),
        }
    }

    /// First link on the route from `src` to `dst`, or `None`.
    pub fn next_hop(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<LinkId> {
        if src == dst {
            return None;
        }
        self.rows
            .borrow_mut()
            .next_hop(topo, self.usable.as_deref(), src.0, dst.0)
    }

    /// Full link path from `src` to `dst`, or `None` if unreachable.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        let mut out = Vec::new();
        self.path_into(topo, src, dst, &mut out).then_some(out)
    }

    /// Like [`Routing::path`] but appends into a caller-owned buffer
    /// (cleared first), returning `false` when `dst` is unreachable — the
    /// allocation-free form hot paths use.
    pub fn path_into(
        &self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> bool {
        out.clear();
        if src == dst {
            return true;
        }
        // the walk consults each intermediate node's own row, exactly as
        // the eager table walk did
        let mut rows = self.rows.borrow_mut();
        let mut at = src;
        let mut guard = 0;
        while at != dst {
            let Some(lid) = rows.next_hop(topo, self.usable.as_deref(), at.0, dst.0) else {
                out.clear();
                return false;
            };
            out.push(lid);
            at = topo.link(lid).to;
            guard += 1;
            assert!(guard <= topo.node_count(), "routing loop");
        }
        true
    }

    /// Sum of link latencies along the path.
    pub fn path_latency(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.path(topo, src, dst)?;
        Some(p.iter().map(|&l| topo.link(l).latency).sum())
    }

    /// Minimum bandwidth along the path (the path's static bottleneck).
    pub fn path_bottleneck(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.path(topo, src, dst)?;
        p.iter()
            .map(|&l| topo.link(l).bandwidth)
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.min(b))))
    }
}

/// Memoized [`Routing::path`] lookups keyed by `(src, dst)`.
///
/// [`Routing`]'s tables store next *hops*; materializing a full path walks
/// the tables once per query. Workloads repeat the same endpoint pairs
/// constantly (every retry, every replica of a dataset, every job on the
/// same site pair), so [`crate::FlowNet`] keeps one of these in front of
/// its routing tables and serves repeats from the memo.
///
/// The cache stores *negative* results too (`None` = unreachable), and
/// must be [`RouteCache::invalidate`]d whenever the routing tables are
/// rebuilt — in `FlowNet` that is exactly the fault paths
/// (`apply_fault` down/up). A cache hit returns a clone of the stored
/// path, bit-identical to what a fresh table walk would build, so cache-on
/// and cache-off runs produce identical trajectories (property-tested in
/// `tests/share_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct RouteCache {
    // keyed by raw node indices; never iterated, only probed, so the
    // HashMap cannot leak iteration order into simulation state
    map: HashMap<(usize, usize), Option<Vec<LinkId>>, std::hash::BuildHasherDefault<PairHasher>>,
    hits: u64,
    misses: u64,
    enabled: bool,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Multiplicative hasher for the cache's integer pair keys. SipHash (the
/// `HashMap` default) costs more than the rest of a cache probe put
/// together on the per-transfer hot path; node ids are simulation-internal
/// (not attacker-controlled), so a fixed multiplicative mix with a
/// splitmix64 finisher is safe and much cheaper.
#[derive(Debug, Default, Clone)]
struct PairHasher(u64);

impl std::hash::Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(29) ^ n).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

impl RouteCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        RouteCache {
            map: HashMap::default(),
            hits: 0,
            misses: 0,
            enabled: true,
        }
    }

    /// Turns the memo on or off (off = every lookup recomputes; the hit
    /// and miss counters stop advancing). Disabling drops stored entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.map.clear();
        }
    }

    /// The path from `src` to `dst`, served from the memo when possible.
    pub fn path(
        &mut self,
        routing: &Routing,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Vec<LinkId>> {
        if !self.enabled {
            return routing.path(topo, src, dst);
        }
        if let Some(cached) = self.map.get(&(src.0, dst.0)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let p = routing.path(topo, src, dst);
        self.map.insert((src.0, dst.0), p.clone());
        p
    }

    /// Like [`RouteCache::path`] but copies the path into a caller-owned
    /// buffer (cleared first), returning `false` when unreachable. A hit
    /// costs one memo probe and one memcpy — no allocation — which is what
    /// the per-transfer hot path in [`crate::FlowNet`] uses.
    pub fn path_into(
        &mut self,
        routing: &Routing,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        out: &mut Vec<LinkId>,
    ) -> bool {
        if !self.enabled {
            return routing.path_into(topo, src, dst, out);
        }
        if let Some(cached) = self.map.get(&(src.0, dst.0)) {
            self.hits += 1;
            return match cached {
                Some(p) => {
                    out.clear();
                    out.extend_from_slice(p);
                    true
                }
                None => {
                    out.clear();
                    false
                }
            };
        }
        self.misses += 1;
        let ok = routing.path_into(topo, src, dst, out);
        self.map.insert((src.0, dst.0), ok.then(|| out.clone()));
        ok
    }

    /// Drops every memoized entry. Call after rebuilding the [`Routing`]
    /// tables this cache fronts.
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to walk the routing tables.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized `(src, dst)` pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// BinaryHeap needs Ord; wrap latency as sortable bits (all values finite
// and non-negative here, so the IEEE bit pattern orders correctly).
fn ordered_float(x: f64) -> u64 {
    debug_assert!(x >= 0.0 && x.is_finite());
    x.to_bits()
}

fn from_ordered(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind};

    fn line3() -> (Topology, [NodeId; 3]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_duplex(a, b, mbps(100.0), 0.01);
        t.add_duplex(b, c, mbps(10.0), 0.02);
        (t, [a, b, c])
    }

    #[test]
    fn line_path() {
        let (t, [a, _b, c]) = line3();
        let r = Routing::compute(&t);
        let p = r.path(&t, a, c).unwrap();
        assert_eq!(p.len(), 2);
        assert!((r.path_latency(&t, a, c).unwrap() - 0.03).abs() < 1e-12);
        assert_eq!(r.path_bottleneck(&t, a, c).unwrap(), mbps(10.0));
    }

    #[test]
    fn self_path_is_empty() {
        let (t, [a, _, _]) = line3();
        let r = Routing::compute(&t);
        assert!(r.path(&t, a, a).unwrap().is_empty());
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_link(a, b, 1.0, 0.0); // one-way only, c isolated
        let r = Routing::compute(&t);
        assert!(r.path(&t, a, c).is_none());
        assert!(r.path(&t, b, a).is_none());
        assert!(r.path(&t, a, b).is_some());
    }

    #[test]
    fn picks_lower_latency_path() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        // direct but slow; via b is faster
        t.add_link(a, c, mbps(1.0), 0.10);
        t.add_link(a, b, mbps(1.0), 0.01);
        t.add_link(b, c, mbps(1.0), 0.01);
        let r = Routing::compute(&t);
        assert_eq!(r.path(&t, a, c).unwrap().len(), 2);
    }

    #[test]
    fn equal_latency_prefers_fewer_hops() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_link(a, c, mbps(1.0), 0.02);
        t.add_link(a, b, mbps(1.0), 0.01);
        t.add_link(b, c, mbps(1.0), 0.01);
        let r = Routing::compute(&t);
        assert_eq!(r.path(&t, a, c).unwrap().len(), 1);
    }

    #[test]
    fn star_routes_through_hub() {
        let (t, hosts) = Topology::star(4, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let p = r.path(&t, hosts[0], hosts[3]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn filtered_routes_around_masked_link() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        // fast direct link plus a slower detour via b
        let (direct, _) = t.add_duplex(a, c, mbps(1.0), 0.01);
        t.add_duplex(a, b, mbps(1.0), 0.05);
        t.add_duplex(b, c, mbps(1.0), 0.05);
        let all = Routing::compute(&t);
        assert_eq!(all.path(&t, a, c).unwrap(), vec![direct]);
        let mut usable = vec![true; t.link_count()];
        usable[direct.0] = false;
        let filtered = Routing::compute_filtered(&t, &usable);
        let detour = filtered.path(&t, a, c).unwrap();
        assert_eq!(detour.len(), 2);
        assert!(!detour.contains(&direct));
        // mask the detour too: unreachable
        usable[detour[0].0] = false;
        let none = Routing::compute_filtered(&t, &usable);
        assert!(none.path(&t, a, c).is_none());
    }

    #[test]
    fn route_cache_memoizes_and_invalidates() {
        let (t, hosts) = Topology::star(4, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        let p1 = cache.path(&r, &t, hosts[0], hosts[2]);
        let p2 = cache.path(&r, &t, hosts[0], hosts[2]);
        assert_eq!(p1, r.path(&t, hosts[0], hosts[2]));
        assert_eq!(p1, p2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
        let p3 = cache.path(&r, &t, hosts[0], hosts[2]);
        assert_eq!(p1, p3);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn route_cache_stores_negative_results() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(a, b, 1.0, 0.0); // one-way: b cannot reach a
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        assert!(cache.path(&r, &t, b, a).is_none());
        assert!(cache.path(&r, &t, b, a).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disabled_route_cache_computes_fresh() {
        let (t, hosts) = Topology::star(3, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        cache.set_enabled(false);
        let p1 = cache.path(&r, &t, hosts[0], hosts[1]);
        let p2 = cache.path(&r, &t, hosts[0], hosts[1]);
        assert_eq!(p1, r.path(&t, hosts[0], hosts[1]));
        assert_eq!(p1, p2);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn unfiltered_matches_all_true_mask() {
        let (t, hosts) = Topology::star(5, mbps(100.0), 0.001);
        let plain = Routing::compute(&t);
        let masked = Routing::compute_filtered(&t, &vec![true; t.link_count()]);
        for &s in &hosts {
            for &d in &hosts {
                assert_eq!(plain.path(&t, s, d), masked.path(&t, s, d));
            }
        }
    }
}
