//! Shortest-path routing over a [`Topology`], plus a pairwise route cache.

use crate::topology::{LinkId, NodeId, Topology};
use std::collections::HashMap;

/// All-pairs next-hop routing, computed with Dijkstra per source.
///
/// Path weight is propagation latency, with hop count as tie-break, which
/// matches the static shortest-path routing the surveyed Grid simulators
/// assume. Routes are computed once per topology *state*: a static network
/// computes them once, and a network with injected link faults recomputes
/// them on each link state change (see [`Routing::compute_filtered`]).
#[derive(Debug, Clone)]
pub struct Routing {
    /// `next[src][dst]` = first link on the path, or `None` if unreachable.
    next: Vec<Vec<Option<LinkId>>>,
}

impl Routing {
    /// Computes routes for every ordered node pair.
    pub fn compute(topo: &Topology) -> Self {
        Self::compute_inner(topo, None)
    }

    /// Computes routes using only links whose `usable` entry is `true`
    /// (indexed by [`LinkId`]). This is how [`crate::FlowNet`] routes
    /// around failed links: recompute with the down links masked out.
    pub fn compute_filtered(topo: &Topology, usable: &[bool]) -> Self {
        assert_eq!(usable.len(), topo.link_count(), "usable mask size");
        Self::compute_inner(topo, Some(usable))
    }

    fn compute_inner(topo: &Topology, usable: Option<&[bool]>) -> Self {
        let n = topo.node_count();
        let mut next = vec![vec![None; n]; n];
        for src in 0..n {
            // Dijkstra from src; dist = (latency, hops)
            let mut dist = vec![(f64::INFINITY, u32::MAX); n];
            let mut first_link: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            dist[src] = (0.0, 0);
            let mut heap = std::collections::BinaryHeap::new();
            heap.push(std::cmp::Reverse((
                ordered_float(0.0),
                0u32,
                src,
                None::<LinkId>,
            )));
            while let Some(std::cmp::Reverse((d, hops, u, via))) = heap.pop() {
                if visited[u] {
                    continue;
                }
                visited[u] = true;
                first_link[u] = via;
                for &lid in topo.out_links(NodeId(u)) {
                    if usable.is_some_and(|mask| !mask[lid.0]) {
                        continue;
                    }
                    let link = topo.link(lid);
                    let v = link.to.0;
                    if visited[v] {
                        continue;
                    }
                    let nd = from_ordered(d) + link.latency;
                    let nh = hops + 1;
                    if (nd, nh) < dist[v] {
                        dist[v] = (nd, nh);
                        let via_v = via.or(Some(lid));
                        heap.push(std::cmp::Reverse((ordered_float(nd), nh, v, via_v)));
                    }
                }
            }
            for dst in 0..n {
                if dst != src {
                    next[src][dst] = first_link[dst];
                }
            }
        }
        Routing { next }
    }

    /// First link on the route from `src` to `dst`, or `None`.
    pub fn next_hop(&self, src: NodeId, dst: NodeId) -> Option<LinkId> {
        self.next[src.0][dst.0]
    }

    /// Full link path from `src` to `dst`, or `None` if unreachable.
    pub fn path(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<Vec<LinkId>> {
        if src == dst {
            return Some(Vec::new());
        }
        let mut at = src;
        let mut out = Vec::new();
        let mut guard = 0;
        while at != dst {
            let lid = self.next[at.0][dst.0]?;
            out.push(lid);
            at = topo.link(lid).to;
            guard += 1;
            assert!(guard <= topo.node_count(), "routing loop");
        }
        Some(out)
    }

    /// Sum of link latencies along the path.
    pub fn path_latency(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.path(topo, src, dst)?;
        Some(p.iter().map(|&l| topo.link(l).latency).sum())
    }

    /// Minimum bandwidth along the path (the path's static bottleneck).
    pub fn path_bottleneck(&self, topo: &Topology, src: NodeId, dst: NodeId) -> Option<f64> {
        let p = self.path(topo, src, dst)?;
        p.iter()
            .map(|&l| topo.link(l).bandwidth)
            .fold(None, |acc, b| Some(acc.map_or(b, |a: f64| a.min(b))))
    }
}

/// Memoized [`Routing::path`] lookups keyed by `(src, dst)`.
///
/// [`Routing`]'s tables store next *hops*; materializing a full path walks
/// the tables once per query. Workloads repeat the same endpoint pairs
/// constantly (every retry, every replica of a dataset, every job on the
/// same site pair), so [`crate::FlowNet`] keeps one of these in front of
/// its routing tables and serves repeats from the memo.
///
/// The cache stores *negative* results too (`None` = unreachable), and
/// must be [`RouteCache::invalidate`]d whenever the routing tables are
/// rebuilt — in `FlowNet` that is exactly the fault paths
/// (`apply_fault` down/up). A cache hit returns a clone of the stored
/// path, bit-identical to what a fresh table walk would build, so cache-on
/// and cache-off runs produce identical trajectories (property-tested in
/// `tests/share_equivalence.rs`).
#[derive(Debug, Clone)]
pub struct RouteCache {
    // keyed by raw node indices; never iterated, only probed, so the
    // HashMap cannot leak iteration order into simulation state
    map: HashMap<(usize, usize), Option<Vec<LinkId>>>,
    hits: u64,
    misses: u64,
    enabled: bool,
}

impl Default for RouteCache {
    fn default() -> Self {
        Self::new()
    }
}

impl RouteCache {
    /// An empty, enabled cache.
    pub fn new() -> Self {
        RouteCache {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            enabled: true,
        }
    }

    /// Turns the memo on or off (off = every lookup recomputes; the hit
    /// and miss counters stop advancing). Disabling drops stored entries.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.map.clear();
        }
    }

    /// The path from `src` to `dst`, served from the memo when possible.
    pub fn path(
        &mut self,
        routing: &Routing,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
    ) -> Option<Vec<LinkId>> {
        if !self.enabled {
            return routing.path(topo, src, dst);
        }
        if let Some(cached) = self.map.get(&(src.0, dst.0)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        let p = routing.path(topo, src, dst);
        self.map.insert((src.0, dst.0), p.clone());
        p
    }

    /// Drops every memoized entry. Call after rebuilding the [`Routing`]
    /// tables this cache fronts.
    pub fn invalidate(&mut self) {
        self.map.clear();
    }

    /// Lookups served from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to walk the routing tables.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of memoized `(src, dst)` pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

// BinaryHeap needs Ord; wrap latency as sortable bits (all values finite
// and non-negative here, so the IEEE bit pattern orders correctly).
fn ordered_float(x: f64) -> u64 {
    debug_assert!(x >= 0.0 && x.is_finite());
    x.to_bits()
}

fn from_ordered(bits: u64) -> f64 {
    f64::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{mbps, NodeKind};

    fn line3() -> (Topology, [NodeId; 3]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_duplex(a, b, mbps(100.0), 0.01);
        t.add_duplex(b, c, mbps(10.0), 0.02);
        (t, [a, b, c])
    }

    #[test]
    fn line_path() {
        let (t, [a, _b, c]) = line3();
        let r = Routing::compute(&t);
        let p = r.path(&t, a, c).unwrap();
        assert_eq!(p.len(), 2);
        assert!((r.path_latency(&t, a, c).unwrap() - 0.03).abs() < 1e-12);
        assert_eq!(r.path_bottleneck(&t, a, c).unwrap(), mbps(10.0));
    }

    #[test]
    fn self_path_is_empty() {
        let (t, [a, _, _]) = line3();
        let r = Routing::compute(&t);
        assert!(r.path(&t, a, a).unwrap().is_empty());
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_link(a, b, 1.0, 0.0); // one-way only, c isolated
        let r = Routing::compute(&t);
        assert!(r.path(&t, a, c).is_none());
        assert!(r.path(&t, b, a).is_none());
        assert!(r.path(&t, a, b).is_some());
    }

    #[test]
    fn picks_lower_latency_path() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        // direct but slow; via b is faster
        t.add_link(a, c, mbps(1.0), 0.10);
        t.add_link(a, b, mbps(1.0), 0.01);
        t.add_link(b, c, mbps(1.0), 0.01);
        let r = Routing::compute(&t);
        assert_eq!(r.path(&t, a, c).unwrap().len(), 2);
    }

    #[test]
    fn equal_latency_prefers_fewer_hops() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        t.add_link(a, c, mbps(1.0), 0.02);
        t.add_link(a, b, mbps(1.0), 0.01);
        t.add_link(b, c, mbps(1.0), 0.01);
        let r = Routing::compute(&t);
        assert_eq!(r.path(&t, a, c).unwrap().len(), 1);
    }

    #[test]
    fn star_routes_through_hub() {
        let (t, hosts) = Topology::star(4, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let p = r.path(&t, hosts[0], hosts[3]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn filtered_routes_around_masked_link() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Router, "b");
        let c = t.add_node(NodeKind::Host, "c");
        // fast direct link plus a slower detour via b
        let (direct, _) = t.add_duplex(a, c, mbps(1.0), 0.01);
        t.add_duplex(a, b, mbps(1.0), 0.05);
        t.add_duplex(b, c, mbps(1.0), 0.05);
        let all = Routing::compute(&t);
        assert_eq!(all.path(&t, a, c).unwrap(), vec![direct]);
        let mut usable = vec![true; t.link_count()];
        usable[direct.0] = false;
        let filtered = Routing::compute_filtered(&t, &usable);
        let detour = filtered.path(&t, a, c).unwrap();
        assert_eq!(detour.len(), 2);
        assert!(!detour.contains(&direct));
        // mask the detour too: unreachable
        usable[detour[0].0] = false;
        let none = Routing::compute_filtered(&t, &usable);
        assert!(none.path(&t, a, c).is_none());
    }

    #[test]
    fn route_cache_memoizes_and_invalidates() {
        let (t, hosts) = Topology::star(4, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        let p1 = cache.path(&r, &t, hosts[0], hosts[2]);
        let p2 = cache.path(&r, &t, hosts[0], hosts[2]);
        assert_eq!(p1, r.path(&t, hosts[0], hosts[2]));
        assert_eq!(p1, p2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
        cache.invalidate();
        assert!(cache.is_empty());
        let p3 = cache.path(&r, &t, hosts[0], hosts[2]);
        assert_eq!(p1, p3);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn route_cache_stores_negative_results() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(a, b, 1.0, 0.0); // one-way: b cannot reach a
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        assert!(cache.path(&r, &t, b, a).is_none());
        assert!(cache.path(&r, &t, b, a).is_none());
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
    }

    #[test]
    fn disabled_route_cache_computes_fresh() {
        let (t, hosts) = Topology::star(3, mbps(100.0), 0.001);
        let r = Routing::compute(&t);
        let mut cache = RouteCache::new();
        cache.set_enabled(false);
        let p1 = cache.path(&r, &t, hosts[0], hosts[1]);
        let p2 = cache.path(&r, &t, hosts[0], hosts[1]);
        assert_eq!(p1, r.path(&t, hosts[0], hosts[1]));
        assert_eq!(p1, p2);
        assert_eq!((cache.hits(), cache.misses()), (0, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn unfiltered_matches_all_true_mask() {
        let (t, hosts) = Topology::star(5, mbps(100.0), 0.001);
        let plain = Routing::compute(&t);
        let masked = Routing::compute_filtered(&t, &vec![true; t.link_count()]);
        for &s in &hosts {
            for &d in &hosts {
                assert_eq!(plain.path(&t, s, d), masked.path(&t, s, d));
            }
        }
    }
}
