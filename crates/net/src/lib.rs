//! `lsds-net` — the network substrate.
//!
//! Implements the *network characteristics* axis of the taxonomy (§3):
//! "network elements interconnecting hosts … routers, switches and other
//! devices", infrastructure protocols (TCP/UDP-like transports), and
//! higher-level application protocols (an FTP-like bulk transfer service).
//!
//! The taxonomy's *granularity* axis is first-class: "the simulation of the
//! network can model in detail the flow of each packet through the network,
//! a time consuming operation that leads to better output results, or it
//! can model only the flows of packets going from one end to another":
//!
//! * [`flow`] — fluid, max-min fair bandwidth sharing (what OptorSim and
//!   SimGrid-class simulators use);
//! * [`packet`] — store-and-forward per-packet simulation with finite
//!   drop-tail queues (ns-class granularity).
//!
//! Experiment E13 runs the same workload through both and reports the
//! accuracy/cost trade-off.
//!
//! Everything is written as embeddable components driven through
//! [`lsds_core::Schedule`], so the grid middleware layer (`lsds-grid`) can
//! compose a network into its own models.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fault;
pub mod flow;
pub mod packet;
pub mod routing;
pub mod topology;
pub mod traffic;
pub mod transfer;
pub mod transport;

pub use fault::{poisson_link_outages, LinkFault, RetryPolicy};
pub use flow::{
    FaultOutcome, FlowAborted, FlowDone, FlowEvent, FlowId, FlowNet, NoRoute, ShareMode,
};
pub use packet::{PacketEvent, PacketNet, PacketNote};
pub use routing::{RouteCache, Routing};
pub use topology::{gbps, mbps, LinkId, NodeId, NodeKind, Topology};
pub use traffic::{BackgroundTraffic, FlowDemand, TrafficEvent};
pub use transfer::{FtpService, TransferDone, TransferEvent, TransferRequest};
pub use transport::{TcpConnection, TransportEvent, TransportNet, TransportNote, UdpStream};
