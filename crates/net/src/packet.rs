//! Packet-level network model: store-and-forward with drop-tail queues.
//!
//! The expensive end of the taxonomy's granularity axis: every packet is
//! serialized over every link on its route, waits in finite FIFO queues,
//! and can be dropped when a queue overflows. "A time consuming operation
//! that leads to better output results" (§3) — it captures queueing delay,
//! pipelining, and loss, which the fluid model cannot (E13).

use crate::routing::Routing;
use crate::topology::{LinkId, NodeId, Topology};
use lsds_core::{Schedule, SimTime};
use std::collections::VecDeque;
use std::sync::Arc;

/// One packet in flight.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Owner-assigned transfer id.
    pub transfer: u64,
    /// Index within the transfer.
    pub index: u32,
    /// Size in bytes.
    pub size: f64,
    /// Link route (shared between the transfer's packets).
    route: Arc<[LinkId]>,
    /// Next hop to traverse (`route[hop]`).
    hop: usize,
    /// Injection time, for end-to-end latency accounting.
    injected: SimTime,
}

/// Events the packet model schedules for itself.
#[derive(Debug, Clone)]
pub enum PacketEvent {
    /// A link finished serializing its head packet.
    TransmitDone {
        /// Index of the link that finished.
        link: usize,
    },
    /// A packet arrived at the input of its next hop (or destination).
    Arrive {
        /// The arriving packet.
        pkt: Packet,
    },
}

/// Notifications returned to the owning model.
#[derive(Debug, Clone, PartialEq)]
pub enum PacketNote {
    /// A packet reached its destination.
    Delivered {
        /// Transfer the packet belongs to.
        transfer: u64,
        /// Index within the transfer.
        index: u32,
        /// End-to-end latency (injection → delivery).
        latency: f64,
    },
    /// A packet was dropped at a full queue.
    Dropped {
        /// Transfer the packet belonged to.
        transfer: u64,
        /// Index within the transfer.
        index: u32,
        /// The congested link.
        link: LinkId,
    },
}

struct LinkState {
    queue: VecDeque<Packet>,
    busy: bool,
}

/// Store-and-forward packet network.
pub struct PacketNet {
    topo: Topology,
    routing: Routing,
    links: Vec<LinkState>,
    /// Maximum queued packets per link (drop-tail beyond this).
    queue_capacity: usize,
    injected: u64,
    delivered: u64,
    dropped: u64,
}

impl PacketNet {
    /// Builds a packet network with the given per-link queue capacity.
    pub fn new(topo: Topology, queue_capacity: usize) -> Self {
        assert!(queue_capacity > 0, "queue capacity must be positive");
        let routing = Routing::compute(&topo);
        let links = (0..topo.link_count())
            .map(|_| LinkState {
                queue: VecDeque::new(),
                busy: false,
            })
            .collect();
        PacketNet {
            topo,
            routing,
            links,
            queue_capacity,
            injected: 0,
            delivered: 0,
            dropped: 0,
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Packets injected / delivered / dropped so far.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.injected, self.delivered, self.dropped)
    }

    /// Injects the packets of a transfer at `src`, all at `now` (the
    /// transport layer is responsible for pacing). Returns the number of
    /// packets injected. Panics if `dst` is unreachable.
    pub fn inject_transfer(
        &mut self,
        transfer: u64,
        src: NodeId,
        dst: NodeId,
        n_packets: u32,
        packet_size: f64,
        sched: &mut impl Schedule<PacketEvent>,
    ) -> Vec<PacketNote> {
        let route: Arc<[LinkId]> = self
            .routing
            .path(&self.topo, src, dst)
            .unwrap_or_else(|| panic!("no route {src:?} -> {dst:?}"))
            .into();
        assert!(!route.is_empty(), "src == dst");
        let mut notes = Vec::new();
        for index in 0..n_packets {
            let pkt = Packet {
                transfer,
                index,
                size: packet_size,
                route: route.clone(),
                hop: 0,
                injected: sched.now(),
            };
            self.injected += 1;
            if let Some(note) = self.enqueue(pkt, sched) {
                notes.push(note);
            }
        }
        notes
    }

    /// Injects a single packet (used by transports for pacing and acks).
    pub fn inject_packet(
        &mut self,
        transfer: u64,
        index: u32,
        src: NodeId,
        dst: NodeId,
        size: f64,
        sched: &mut impl Schedule<PacketEvent>,
    ) -> Option<PacketNote> {
        let route: Arc<[LinkId]> = self
            .routing
            .path(&self.topo, src, dst)
            .unwrap_or_else(|| panic!("no route {src:?} -> {dst:?}"))
            .into();
        assert!(!route.is_empty(), "src == dst");
        let pkt = Packet {
            transfer,
            index,
            size,
            route,
            hop: 0,
            injected: sched.now(),
        };
        self.injected += 1;
        self.enqueue(pkt, sched)
    }

    /// Places a packet at the tail of its next link's queue.
    fn enqueue(
        &mut self,
        pkt: Packet,
        sched: &mut impl Schedule<PacketEvent>,
    ) -> Option<PacketNote> {
        let lid = pkt.route[pkt.hop];
        let cap = self.queue_capacity;
        let state = &mut self.links[lid.0];
        if state.queue.len() >= cap {
            self.dropped += 1;
            return Some(PacketNote::Dropped {
                transfer: pkt.transfer,
                index: pkt.index,
                link: lid,
            });
        }
        state.queue.push_back(pkt);
        if !state.busy {
            self.start_transmit(lid, sched);
        }
        None
    }

    fn start_transmit(&mut self, lid: LinkId, sched: &mut impl Schedule<PacketEvent>) {
        let state = &mut self.links[lid.0];
        debug_assert!(!state.busy && !state.queue.is_empty());
        state.busy = true;
        let size = state.queue.front().expect("queue emptied").size;
        let tx_time = size / self.topo.link(lid).bandwidth;
        sched.schedule_in(tx_time, PacketEvent::TransmitDone { link: lid.0 });
    }

    /// Handles a packet event, returning notifications.
    pub fn handle(
        &mut self,
        ev: PacketEvent,
        sched: &mut impl Schedule<PacketEvent>,
    ) -> Vec<PacketNote> {
        match ev {
            PacketEvent::TransmitDone { link } => {
                let lid = LinkId(link);
                let mut pkt = {
                    let state = &mut self.links[link];
                    let pkt = state.queue.pop_front().expect("transmit from empty queue");
                    state.busy = false;
                    if !state.queue.is_empty() {
                        self.start_transmit(lid, sched);
                    }
                    pkt
                };
                pkt.hop += 1;
                let latency = self.topo.link(lid).latency;
                sched.schedule_in(latency, PacketEvent::Arrive { pkt });
                Vec::new()
            }
            PacketEvent::Arrive { pkt } => {
                if pkt.hop >= pkt.route.len() {
                    self.delivered += 1;
                    return vec![PacketNote::Delivered {
                        transfer: pkt.transfer,
                        index: pkt.index,
                        latency: sched.now() - pkt.injected,
                    }];
                }
                match self.enqueue(pkt, sched) {
                    Some(note) => vec![note],
                    None => Vec::new(),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::NodeKind;
    use lsds_core::{Ctx, EventDriven, Model};

    struct Harness {
        net: PacketNet,
        notes: Vec<PacketNote>,
    }

    enum Ev {
        Inject {
            transfer: u64,
            src: NodeId,
            dst: NodeId,
            n: u32,
            size: f64,
        },
        Net(PacketEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Inject {
                    transfer,
                    src,
                    dst,
                    n,
                    size,
                } => {
                    let notes = self.net.inject_transfer(
                        transfer,
                        src,
                        dst,
                        n,
                        size,
                        &mut ctx.map(Ev::Net),
                    );
                    self.notes.extend(notes);
                }
                Ev::Net(pe) => {
                    let notes = self.net.handle(pe, &mut ctx.map(Ev::Net));
                    self.notes.extend(notes);
                }
            }
        }
    }

    fn two_hop(bw: f64, lat: f64, qcap: usize) -> (Harness, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let r = t.add_node(NodeKind::Router, "r");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_link(a, r, bw, lat);
        t.add_link(r, b, bw, lat);
        (
            Harness {
                net: PacketNet::new(t, qcap),
                notes: vec![],
            },
            a,
            b,
        )
    }

    #[test]
    fn single_packet_latency_is_store_and_forward() {
        let (h, a, b) = two_hop(1000.0, 0.1, 64);
        let mut sim = EventDriven::new(h);
        sim.schedule(
            SimTime::ZERO,
            Ev::Inject {
                transfer: 1,
                src: a,
                dst: b,
                n: 1,
                size: 100.0,
            },
        );
        sim.run();
        let m = sim.model();
        assert_eq!(m.notes.len(), 1);
        match &m.notes[0] {
            PacketNote::Delivered { latency, .. } => {
                // 2 × (100/1000 serialization + 0.1 propagation) = 0.4
                assert!((latency - 0.4).abs() < 1e-9, "latency {latency}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pipelining_beats_naive_serial_model() {
        // N packets over 2 hops: last delivery ≈ N·tx + tx + 2·lat,
        // not 2·N·tx (store-and-forward pipelines across links)
        let (h, a, b) = two_hop(1000.0, 0.0, 1000);
        let mut sim = EventDriven::new(h);
        sim.schedule(
            SimTime::ZERO,
            Ev::Inject {
                transfer: 1,
                src: a,
                dst: b,
                n: 50,
                size: 100.0,
            },
        );
        let stats = sim.run();
        let tx = 100.0 / 1000.0;
        let expected = 50.0 * tx + tx;
        assert!(
            (stats.end_time.seconds() - expected).abs() < 1e-9,
            "end {} vs {expected}",
            stats.end_time.seconds()
        );
        let (inj, del, drop) = sim.model().net.counters();
        assert_eq!((inj, del, drop), (50, 50, 0));
    }

    #[test]
    fn drops_when_queue_overflows() {
        // queue capacity 4: a burst of 10 packets loses some at the first
        // link (the head starts transmitting, 4 wait, the rest drop)
        let (h, a, b) = two_hop(10.0, 0.0, 4);
        let mut sim = EventDriven::new(h);
        sim.schedule(
            SimTime::ZERO,
            Ev::Inject {
                transfer: 1,
                src: a,
                dst: b,
                n: 10,
                size: 100.0,
            },
        );
        sim.run();
        let (inj, del, drop) = sim.model().net.counters();
        assert_eq!(inj, 10);
        assert_eq!(del + drop, 10);
        assert_eq!(drop, 6, "4 queued (incl. head in service) + rest dropped");
    }

    #[test]
    fn delivery_order_preserved_within_transfer() {
        let (h, a, b) = two_hop(1000.0, 0.01, 1000);
        let mut sim = EventDriven::new(h);
        sim.schedule(
            SimTime::ZERO,
            Ev::Inject {
                transfer: 9,
                src: a,
                dst: b,
                n: 20,
                size: 50.0,
            },
        );
        sim.run();
        let delivered: Vec<u32> = sim
            .model()
            .notes
            .iter()
            .filter_map(|n| match n {
                PacketNote::Delivered { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn queueing_delay_grows_with_position() {
        let (h, a, b) = two_hop(100.0, 0.0, 1000);
        let mut sim = EventDriven::new(h);
        sim.schedule(
            SimTime::ZERO,
            Ev::Inject {
                transfer: 1,
                src: a,
                dst: b,
                n: 5,
                size: 100.0,
            },
        );
        sim.run();
        let lats: Vec<f64> = sim
            .model()
            .notes
            .iter()
            .filter_map(|n| match n {
                PacketNote::Delivered { latency, .. } => Some(*latency),
                _ => None,
            })
            .collect();
        for w in lats.windows(2) {
            assert!(w[1] > w[0], "later packets wait longer: {lats:?}");
        }
    }
}
