//! Background traffic generation.
//!
//! "In the simulation of network traffic pattern, queuing models are
//! generally used to describe traffic generation, flows of the
//! transmission" (§5): this component produces a Poisson stream of flow
//! demands with configurable size distribution between random host pairs,
//! providing the cross-traffic against which foreground transfers contend
//! in the replication experiments.

use crate::topology::NodeId;
use lsds_core::Schedule;
use lsds_stats::{Dist, SimRng};

/// Events of the background-traffic component.
#[derive(Debug, Clone, Copy)]
pub enum TrafficEvent {
    /// Next background flow arrival.
    Arrival,
}

/// A flow demand produced by the generator; the owner injects it into its
/// network model (fluid or packet — the generator does not care).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDemand {
    /// Source host.
    pub src: NodeId,
    /// Destination host (always ≠ src).
    pub dst: NodeId,
    /// Size in bytes (≥ 1).
    pub bytes: f64,
}

/// Poisson background-flow generator.
pub struct BackgroundTraffic {
    /// Hosts eligible as sources/destinations.
    endpoints: Vec<NodeId>,
    /// Mean inter-arrival time (exponential).
    mean_interarrival: f64,
    /// Flow size distribution (bytes).
    size: Dist,
    rng: SimRng,
    started: u64,
}

impl BackgroundTraffic {
    /// Creates a generator; demands go between distinct random endpoints.
    pub fn new(endpoints: Vec<NodeId>, mean_interarrival: f64, size: Dist, rng: SimRng) -> Self {
        assert!(endpoints.len() >= 2, "need at least two endpoints");
        assert!(mean_interarrival > 0.0, "bad inter-arrival");
        BackgroundTraffic {
            endpoints,
            mean_interarrival,
            size,
            rng,
            started: 0,
        }
    }

    /// Demands produced so far.
    pub fn started(&self) -> u64 {
        self.started
    }

    /// Schedules the first arrival. Call once at model start.
    pub fn prime(&mut self, sched: &mut impl Schedule<TrafficEvent>) {
        let dt = Dist::exp_mean(self.mean_interarrival).sample(&mut self.rng);
        sched.schedule_in(dt, TrafficEvent::Arrival);
    }

    /// Handles an arrival: returns the demand to inject and schedules the
    /// next arrival.
    pub fn handle(
        &mut self,
        _ev: TrafficEvent,
        sched: &mut impl Schedule<TrafficEvent>,
    ) -> FlowDemand {
        let si = self.rng.index(self.endpoints.len());
        let mut di = self.rng.index(self.endpoints.len() - 1);
        if di >= si {
            di += 1;
        }
        let bytes = self.size.sample_at_least(&mut self.rng, 1.0);
        self.started += 1;
        let dt = Dist::exp_mean(self.mean_interarrival).sample(&mut self.rng);
        sched.schedule_in(dt, TrafficEvent::Arrival);
        FlowDemand {
            src: self.endpoints[si],
            dst: self.endpoints[di],
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowEvent, FlowNet};
    use crate::topology::{mbps, Topology};
    use lsds_core::{Ctx, EventDriven, Model, SimTime};

    struct Harness {
        net: FlowNet,
        traffic: BackgroundTraffic,
        done: u64,
        bytes: f64,
    }

    enum Ev {
        Prime,
        Traffic(TrafficEvent),
        Net(FlowEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Prime => self.traffic.prime(&mut ctx.map(Ev::Traffic)),
                Ev::Traffic(te) => {
                    let demand = self.traffic.handle(te, &mut ctx.map(Ev::Traffic));
                    self.net.start(
                        demand.src,
                        demand.dst,
                        demand.bytes,
                        0,
                        &mut ctx.map(Ev::Net),
                    );
                }
                Ev::Net(fe) => {
                    for d in self.net.handle(fe, &mut ctx.map(Ev::Net)) {
                        self.done += 1;
                        self.bytes += d.bytes;
                    }
                }
            }
        }
    }

    fn run(seed: u64, horizon: f64) -> (u64, u64, f64) {
        let (topo, hosts) = Topology::star(6, mbps(800.0), 0.001);
        let h = Harness {
            net: FlowNet::new(topo),
            traffic: BackgroundTraffic::new(hosts, 0.5, Dist::exp_mean(1.0e5), SimRng::new(seed)),
            done: 0,
            bytes: 0.0,
        };
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::Prime);
        sim.run_until(SimTime::new(horizon));
        let m = sim.model();
        (m.traffic.started(), m.done, m.bytes)
    }

    #[test]
    fn generates_poisson_flows() {
        let (started, done, bytes) = run(42, 100.0);
        // ~200 arrivals expected over 100 s at rate 2/s
        assert!(
            (150..=260).contains(&(started as usize)),
            "{started} arrivals"
        );
        assert!(done > 100, "{done} completions");
        assert!(bytes > 0.0);
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(run(7, 50.0), run(7, 50.0));
        assert_ne!(run(7, 50.0).0, run(8, 50.0).0);
    }

    #[test]
    fn src_never_equals_dst() {
        let mut gen = BackgroundTraffic::new(
            vec![NodeId(0), NodeId(1), NodeId(2)],
            1.0,
            Dist::constant(100.0),
            SimRng::new(5),
        );
        // drive the generator directly with a scratch scheduler
        struct Sink(SimTime);
        impl Schedule<TrafficEvent> for Sink {
            fn now(&self) -> SimTime {
                self.0
            }
            fn schedule_at(&mut self, _t: SimTime, _e: TrafficEvent) {}
        }
        let mut sink = Sink(SimTime::ZERO);
        for _ in 0..1000 {
            let d = gen.handle(TrafficEvent::Arrival, &mut sink);
            assert_ne!(d.src, d.dst);
            assert!(d.bytes >= 1.0);
        }
    }
}
