//! Infrastructure transport protocols over the packet network.
//!
//! The taxonomy's protocol axis: "the infrastructure communication
//! protocols refers to lower-level protocols such as TCP, UDP" (§3).
//!
//! * TCP-like connections — reliable, congestion-controlled bulk transfer:
//!   slow start / congestion avoidance (AIMD), fast retransmit on three
//!   duplicate acks, go-back-N recovery on timeout, adaptive
//!   retransmission timers (Jacobson/Karn). Acks are modeled as
//!   latency-only return signals (they do not consume forward bandwidth),
//!   the usual simplification in grid-level simulators.
//! * UDP-like streams — fixed-rate unreliable datagrams; loss is whatever
//!   the drop-tail queues discard.

use crate::packet::{PacketEvent, PacketNet, PacketNote};
use crate::routing::Routing;
use crate::topology::NodeId;
use lsds_core::{Schedule, SimTime};
use std::collections::BTreeSet;

/// Transfer-id tag space: TCP segment vs UDP datagram.
const UDP_KIND: u64 = 1 << 32;

/// Events of the transport component.
#[derive(Debug, Clone)]
pub enum TransportEvent {
    /// Underlying packet-network event.
    Net(PacketEvent),
    /// Cumulative ack reaching the sender of connection `conn`.
    AckArrive {
        /// Connection index.
        conn: usize,
        /// One past the highest contiguous segment received.
        upto: u32,
    },
    /// Retransmission timer for segment `seq` of connection `conn`.
    Timeout {
        /// Connection index.
        conn: usize,
        /// Segment the timer guards.
        seq: u32,
        /// Recovery epoch the timer belongs to (stale epochs are ignored).
        epoch: u64,
    },
    /// Pacing tick of UDP stream `stream`.
    UdpTick {
        /// Stream index.
        stream: usize,
    },
}

/// Notifications returned to the owner.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportNote {
    /// A TCP connection delivered all its segments.
    TcpComplete {
        /// Connection index.
        conn: usize,
        /// Completion time.
        at: SimTime,
        /// Total retransmitted segments (loss recovery cost).
        retransmits: u64,
    },
    /// A UDP stream sent its last datagram (loss counted separately).
    UdpFinished {
        /// Stream index.
        stream: usize,
    },
}

/// Sender/receiver state of one TCP-like connection.
#[derive(Debug)]
pub struct TcpConnection {
    src: NodeId,
    dst: NodeId,
    total: u32,
    seg_size: f64,
    /// Next segment index to send (go-back-N rewinds this).
    next_seq: u32,
    /// One past the highest cumulatively acked segment.
    acked: u32,
    in_flight: BTreeSet<u32>,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// Receiver side: which segments have arrived.
    received: Vec<bool>,
    recv_contig: u32,
    /// Last send time per segment (NaN = never sent).
    send_time: Vec<f64>,
    /// Karn's rule: retransmitted segments are not RTT-sampled.
    retx_flag: Vec<bool>,
    srtt: Option<f64>,
    rttvar: f64,
    reverse_latency: f64,
    /// Recovery epoch; bumping it invalidates all outstanding timers.
    epoch: u64,
    retransmits: u64,
    started: SimTime,
    finished: Option<SimTime>,
    done: bool,
}

impl TcpConnection {
    /// Current congestion window (segments).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Segments retransmitted so far.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Whether all segments were acked.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Fraction of the transfer acked.
    pub fn progress(&self) -> f64 {
        self.acked as f64 / self.total as f64
    }

    /// When the connection opened.
    pub fn started(&self) -> SimTime {
        self.started
    }

    /// When the transfer completed, if it has.
    pub fn finished(&self) -> Option<SimTime> {
        self.finished
    }

    /// Current retransmission timeout.
    ///
    /// Jacobson's estimator with a 200 ms floor (as real stacks use):
    /// without the floor, the self-induced queueing delay of slow start
    /// doubles the RTT every round and the lagging EWMA fires spurious
    /// timeouts on a perfectly lossless path.
    fn rto(&self) -> f64 {
        match self.srtt {
            Some(s) => (2.0 * s + 4.0 * self.rttvar).max(0.2),
            None => 1.0,
        }
    }

    fn sample_rtt(&mut self, sample: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - sample).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * sample);
            }
        }
    }
}

/// A fixed-rate unreliable datagram stream.
#[derive(Debug)]
pub struct UdpStream {
    src: NodeId,
    dst: NodeId,
    remaining: u32,
    interval: f64,
    size: f64,
    /// Datagrams delivered end-to-end.
    pub delivered: u64,
    /// Datagrams dropped in the network.
    pub dropped: u64,
    next_index: u32,
}

/// Transport layer bundling a [`PacketNet`] with TCP connections and UDP
/// streams. Drive it by routing [`TransportEvent`]s into [`handle`].
///
/// [`handle`]: TransportNet::handle
pub struct TransportNet {
    net: PacketNet,
    routing: Routing,
    conns: Vec<TcpConnection>,
    streams: Vec<UdpStream>,
}

impl TransportNet {
    /// Wraps a packet network.
    pub fn new(net: PacketNet) -> Self {
        let routing = Routing::compute(net.topology());
        TransportNet {
            net,
            routing,
            conns: Vec::new(),
            streams: Vec::new(),
        }
    }

    /// The underlying packet network.
    pub fn net(&self) -> &PacketNet {
        &self.net
    }

    /// Connection accessor.
    pub fn conn(&self, i: usize) -> &TcpConnection {
        &self.conns[i]
    }

    /// Stream accessor.
    pub fn stream(&self, i: usize) -> &UdpStream {
        &self.streams[i]
    }

    /// Opens a TCP-like connection transferring `total` segments of
    /// `seg_size` bytes; slow start begins immediately.
    pub fn open_tcp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        total: u32,
        seg_size: f64,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> usize {
        assert!(total > 0, "empty transfer");
        let topo = self.net.topology();
        assert!(
            self.routing.path(topo, src, dst).is_some(),
            "no route {src:?} -> {dst:?}"
        );
        let rev_lat = self
            .routing
            .path_latency(topo, dst, src)
            .expect("no reverse route for acks");
        let id = self.conns.len();
        self.conns.push(TcpConnection {
            src,
            dst,
            total,
            seg_size,
            next_seq: 0,
            acked: 0,
            in_flight: BTreeSet::new(),
            cwnd: 1.0,
            ssthresh: 64.0,
            dup_acks: 0,
            received: vec![false; total as usize],
            recv_contig: 0,
            send_time: vec![f64::NAN; total as usize],
            retx_flag: vec![false; total as usize],
            srtt: None,
            rttvar: 0.0,
            reverse_latency: rev_lat,
            epoch: 0,
            retransmits: 0,
            started: sched.now(),
            finished: None,
            done: false,
        });
        self.pump(id, sched);
        id
    }

    /// Starts a UDP stream of `count` datagrams of `size` bytes, one every
    /// `interval` seconds.
    pub fn open_udp(
        &mut self,
        src: NodeId,
        dst: NodeId,
        count: u32,
        size: f64,
        interval: f64,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> usize {
        assert!(count > 0 && interval > 0.0, "bad UDP stream");
        let id = self.streams.len();
        self.streams.push(UdpStream {
            src,
            dst,
            remaining: count,
            interval,
            size,
            delivered: 0,
            dropped: 0,
            next_index: 0,
        });
        sched.schedule_in(0.0, TransportEvent::UdpTick { stream: id });
        id
    }

    /// Sends as many new segments as the congestion window allows.
    fn pump(&mut self, conn: usize, sched: &mut impl Schedule<TransportEvent>) {
        loop {
            let c = &self.conns[conn];
            if c.done
                || c.next_seq >= c.total
                || (c.in_flight.len() as f64) >= c.cwnd.floor().max(1.0)
            {
                break;
            }
            let seq = c.next_seq;
            self.conns[conn].next_seq = seq + 1;
            self.send_segment(conn, seq, sched);
        }
    }

    fn send_segment(&mut self, conn: usize, seq: u32, sched: &mut impl Schedule<TransportEvent>) {
        let (src, dst, size, rto, epoch) = {
            let c = &mut self.conns[conn];
            c.in_flight.insert(seq);
            if !c.send_time[seq as usize].is_nan() {
                c.retx_flag[seq as usize] = true; // Karn: exclude from RTT
            }
            c.send_time[seq as usize] = sched.now().seconds();
            (c.src, c.dst, c.seg_size, c.rto(), c.epoch)
        };
        let _ = self
            .net
            .inject_packet(conn as u64, seq, src, dst, size, &mut map_net(sched)); // an injection drop is a loss the timer will recover
        sched.schedule_in(rto, TransportEvent::Timeout { conn, seq, epoch });
    }

    /// Handles a transport event, returning notifications.
    pub fn handle(
        &mut self,
        ev: TransportEvent,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> Vec<TransportNote> {
        match ev {
            TransportEvent::Net(pe) => {
                let notes = self.net.handle(pe, &mut map_net(sched));
                let mut out = Vec::new();
                for note in notes {
                    out.extend(self.on_packet_note(note, sched));
                }
                out
            }
            TransportEvent::AckArrive { conn, upto } => self.on_ack(conn, upto, sched),
            TransportEvent::Timeout { conn, seq, epoch } => {
                self.on_timeout(conn, seq, epoch, sched)
            }
            TransportEvent::UdpTick { stream } => {
                self.on_udp_tick(stream, sched);
                Vec::new()
            }
        }
    }

    fn on_packet_note(
        &mut self,
        note: PacketNote,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> Vec<TransportNote> {
        match note {
            PacketNote::Delivered {
                transfer, index, ..
            } => {
                if transfer & UDP_KIND != 0 {
                    let stream = (transfer & 0xFFFF_FFFF) as usize;
                    self.streams[stream].delivered += 1;
                    return Vec::new();
                }
                let conn = transfer as usize;
                let c = &mut self.conns[conn];
                if let Some(slot) = c.received.get_mut(index as usize) {
                    *slot = true;
                }
                while (c.recv_contig as usize) < c.received.len()
                    && c.received[c.recv_contig as usize]
                {
                    c.recv_contig += 1;
                }
                // cumulative ack travels back latency-only
                let upto = c.recv_contig;
                let lat = c.reverse_latency;
                sched.schedule_in(lat, TransportEvent::AckArrive { conn, upto });
                Vec::new()
            }
            PacketNote::Dropped { transfer, .. } => {
                if transfer & UDP_KIND != 0 {
                    let stream = (transfer & 0xFFFF_FFFF) as usize;
                    self.streams[stream].dropped += 1;
                }
                // TCP drops recover via timers / dup acks
                Vec::new()
            }
        }
    }

    fn on_ack(
        &mut self,
        conn: usize,
        upto: u32,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> Vec<TransportNote> {
        let mut fast_retx = None;
        let finish;
        {
            let c = &mut self.conns[conn];
            if c.done {
                return Vec::new();
            }
            if upto > c.acked {
                let newly = (upto - c.acked) as f64;
                // RTT sample from the highest newly acked, if never resent
                let hi = (upto - 1) as usize;
                if !c.retx_flag[hi] && !c.send_time[hi].is_nan() {
                    let sample = sched.now().seconds() - c.send_time[hi];
                    c.sample_rtt(sample);
                }
                c.acked = upto;
                c.dup_acks = 0;
                c.in_flight.retain(|&s| s >= upto);
                // a go-back-N rewind may have left next_seq behind data the
                // receiver already has; never (re)send below the ack point
                c.next_seq = c.next_seq.max(upto);
                if c.cwnd < c.ssthresh {
                    c.cwnd += newly; // slow start
                } else {
                    c.cwnd += newly / c.cwnd; // congestion avoidance
                }
            } else {
                c.dup_acks += 1;
                if c.dup_acks == 3 {
                    // fast retransmit + simplified fast recovery
                    c.ssthresh = (c.cwnd / 2.0).max(2.0);
                    c.cwnd = c.ssthresh;
                    c.dup_acks = 0;
                    c.retransmits += 1;
                    fast_retx = Some(c.acked);
                }
            }
            finish = c.acked >= c.total;
            if finish {
                c.done = true;
                c.finished = Some(sched.now());
            }
        }
        if finish {
            let c = &self.conns[conn];
            return vec![TransportNote::TcpComplete {
                conn,
                at: sched.now(),
                retransmits: c.retransmits,
            }];
        }
        if let Some(seq) = fast_retx {
            self.send_segment(conn, seq, sched);
        }
        self.pump(conn, sched);
        Vec::new()
    }

    fn on_timeout(
        &mut self,
        conn: usize,
        seq: u32,
        epoch: u64,
        sched: &mut impl Schedule<TransportEvent>,
    ) -> Vec<TransportNote> {
        {
            let c = &mut self.conns[conn];
            let stale = c.done || epoch != c.epoch || seq < c.acked || !c.in_flight.contains(&seq);
            if stale {
                return Vec::new();
            }
            // go-back-N: collapse the window and resend from the hole
            c.epoch += 1;
            c.ssthresh = (c.cwnd / 2.0).max(2.0);
            c.cwnd = 1.0;
            c.in_flight.clear();
            c.next_seq = c.acked;
            c.retransmits += 1;
        }
        self.pump(conn, sched);
        Vec::new()
    }

    fn on_udp_tick(&mut self, stream: usize, sched: &mut impl Schedule<TransportEvent>) {
        let (src, dst, size, index, more, interval) = {
            let s = &mut self.streams[stream];
            if s.remaining == 0 {
                return;
            }
            s.remaining -= 1;
            let idx = s.next_index;
            s.next_index += 1;
            (s.src, s.dst, s.size, idx, s.remaining > 0, s.interval)
        };
        let tag = UDP_KIND | stream as u64;
        if let Some(PacketNote::Dropped { .. }) =
            self.net
                .inject_packet(tag, index, src, dst, size, &mut map_net(sched))
        {
            self.streams[stream].dropped += 1;
        }
        if more {
            sched.schedule_in(interval, TransportEvent::UdpTick { stream });
        }
    }
}

/// Adapter exposing a `Schedule<TransportEvent>` as `Schedule<PacketEvent>`.
struct MapSched<'a, S>(&'a mut S);

fn map_net<S: Schedule<TransportEvent>>(s: &mut S) -> MapSched<'_, S> {
    MapSched(s)
}

impl<'a, S: Schedule<TransportEvent>> Schedule<PacketEvent> for MapSched<'a, S> {
    fn now(&self) -> SimTime {
        self.0.now()
    }
    fn schedule_at(&mut self, t: SimTime, event: PacketEvent) {
        self.0.schedule_at(t, TransportEvent::Net(event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{NodeKind, Topology};
    use lsds_core::{Ctx, EventDriven, Model};

    struct Harness {
        tn: TransportNet,
        notes: Vec<TransportNote>,
    }

    enum Ev {
        OpenTcp(NodeId, NodeId, u32, f64),
        OpenUdp(NodeId, NodeId, u32, f64, f64),
        T(TransportEvent),
    }

    impl Model for Harness {
        type Event = Ev;
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::OpenTcp(s, d, n, sz) => {
                    self.tn.open_tcp(s, d, n, sz, &mut ctx.map(Ev::T));
                }
                Ev::OpenUdp(s, d, n, sz, iv) => {
                    self.tn.open_udp(s, d, n, sz, iv, &mut ctx.map(Ev::T));
                }
                Ev::T(te) => {
                    let notes = self.tn.handle(te, &mut ctx.map(Ev::T));
                    self.notes.extend(notes);
                }
            }
        }
    }

    fn bottleneck(bw: f64, lat: f64, qcap: usize) -> (Harness, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Host, "a");
        let r = t.add_node(NodeKind::Router, "r");
        let b = t.add_node(NodeKind::Host, "b");
        t.add_duplex(a, r, bw * 10.0, lat);
        t.add_duplex(r, b, bw, lat);
        (
            Harness {
                tn: TransportNet::new(PacketNet::new(t, qcap)),
                notes: vec![],
            },
            a,
            b,
        )
    }

    #[test]
    fn tcp_completes_without_loss() {
        let (h, a, b) = bottleneck(1.0e6, 0.001, 1000);
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 100, 1000.0));
        sim.run();
        let m = sim.model();
        assert_eq!(m.notes.len(), 1);
        match &m.notes[0] {
            TransportNote::TcpComplete { retransmits, .. } => {
                assert_eq!(*retransmits, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(m.tn.conn(0).is_done());
        assert_eq!(m.tn.conn(0).progress(), 1.0);
        assert!(m.tn.conn(0).finished().is_some());
    }

    #[test]
    fn tcp_recovers_from_loss_and_completes() {
        // tiny queue forces drops during slow start
        let (h, a, b) = bottleneck(1.0e5, 0.005, 3);
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 200, 1000.0));
        sim.run();
        let m = sim.model();
        assert_eq!(m.notes.len(), 1, "connection must still complete");
        match &m.notes[0] {
            TransportNote::TcpComplete { retransmits, .. } => {
                assert!(*retransmits > 0, "loss must have occurred");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tcp_goodput_bounded_by_bottleneck() {
        let bw = 1.0e6;
        let (h, a, b) = bottleneck(bw, 0.001, 50);
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 500, 1000.0));
        sim.run();
        let m = sim.model();
        let end = m.tn.conn(0).finished().expect("must finish").seconds();
        let goodput = 500.0 * 1000.0 / end;
        assert!(goodput <= bw * 1.01, "goodput {goodput} vs {bw}");
        assert!(goodput >= bw * 0.3, "goodput {goodput} unreasonably low");
    }

    #[test]
    fn tcp_slow_start_grows_window() {
        let (h, a, b) = bottleneck(1.0e7, 0.01, 10_000);
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 400, 1000.0));
        sim.run();
        // lossless run: window should have grown well past initial 1
        assert!(sim.model().tn.conn(0).cwnd() > 16.0);
    }

    #[test]
    fn udp_lossless_below_capacity() {
        let (h, a, b) = bottleneck(1.0e6, 0.001, 50);
        let mut sim = EventDriven::new(h);
        // 1000-byte datagrams every 2ms = 500 kB/s < 1 MB/s
        sim.schedule(SimTime::ZERO, Ev::OpenUdp(a, b, 200, 1000.0, 0.002));
        sim.run();
        let s = sim.model().tn.stream(0);
        assert_eq!(s.delivered, 200);
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn udp_loss_fraction_matches_overload() {
        let (h, a, b) = bottleneck(1.0e6, 0.001, 2);
        let mut sim = EventDriven::new(h);
        // 1000-byte datagrams every 0.5ms = 2 MB/s into a 1 MB/s link
        sim.schedule(SimTime::ZERO, Ev::OpenUdp(a, b, 2000, 1000.0, 0.0005));
        sim.run();
        let s = sim.model().tn.stream(0);
        assert_eq!(s.delivered + s.dropped, 2000);
        let loss = s.dropped as f64 / 2000.0;
        assert!(
            (loss - 0.5).abs() < 0.1,
            "expected ≈50% loss, got {loss} ({} dropped)",
            s.dropped
        );
    }

    #[test]
    fn two_tcp_connections_share_bottleneck() {
        let (h, a, b) = bottleneck(1.0e6, 0.001, 100);
        let mut sim = EventDriven::new(h);
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 300, 1000.0));
        sim.schedule(SimTime::ZERO, Ev::OpenTcp(a, b, 300, 1000.0));
        sim.run();
        let m = sim.model();
        assert_eq!(m.notes.len(), 2, "both complete");
        assert!(m.tn.conn(0).is_done() && m.tn.conn(1).is_done());
    }
}
