//! Randomized tests of the fluid network under fault injection: the
//! max-min allocation never exceeds a link's *effective* (degraded)
//! capacity, every started flow is accounted for (completed, aborted,
//! or rejected for lack of a route), redundant topologies keep flows
//! alive via re-routing, and faulty runs are bit-identical per seed.
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_net::{
    mbps, poisson_link_outages, FlowDone, FlowEvent, FlowNet, LinkFault, LinkId, NodeId, NodeKind,
    Topology,
};
use lsds_stats::SimRng;

struct Harness {
    net: FlowNet,
    done: Vec<FlowDone>,
    plan: Vec<(f64, NodeId, NodeId, f64)>,
    no_route: u64,
    check_capacity: bool,
}

enum FEv {
    Kick(usize),
    Fault(LinkFault),
    Net(FlowEvent),
}

impl Model for Harness {
    type Event = FEv;
    fn handle(&mut self, ev: FEv, ctx: &mut Ctx<'_, FEv>) {
        match ev {
            FEv::Kick(i) => {
                let (_, s, d, b) = self.plan[i];
                if self
                    .net
                    .try_start(s, d, b, i as u64, &mut ctx.map(FEv::Net))
                    .is_err()
                {
                    self.no_route += 1;
                }
            }
            FEv::Fault(f) => {
                self.net.apply_fault(f, &mut ctx.map(FEv::Net));
            }
            FEv::Net(fe) => {
                let done = self.net.handle(fe, &mut ctx.map(FEv::Net));
                self.done.extend(done);
            }
        }
        if self.check_capacity {
            // the core fairness invariant, re-checked after *every*
            // event: no link carries more than it can right now
            for l in 0..self.net.topology().link_count() {
                let cap = self.net.effective_bandwidth(LinkId(l));
                let load = self.net.link_load(LinkId(l));
                assert!(
                    load <= cap + cap * 1e-9 + 1e-6,
                    "link {l}: load {load} exceeds effective capacity {cap}"
                );
            }
        }
    }
}

fn run_star(
    seed: u64,
    faults: &[(f64, LinkFault)],
    check_capacity: bool,
) -> (Vec<(u64, u64)>, u64, u64) {
    let mut rng = SimRng::new(seed);
    let n_hosts = 3 + rng.next_below(3) as usize;
    let n_transfers = 4 + rng.next_below(20) as usize;
    let (topo, hosts) = Topology::star(n_hosts, mbps(100.0), 0.01);
    let plan: Vec<(f64, NodeId, NodeId, f64)> = (0..n_transfers)
        .map(|_| {
            let t = rng.range_f64(0.0, 200.0);
            let s = rng.next_below(n_hosts as u64) as usize;
            let mut d = rng.next_below(n_hosts as u64) as usize;
            if d == s {
                d = (d + 1) % n_hosts;
            }
            let b = rng.range_f64(1.0e3, 5.0e8);
            (t, hosts[s], hosts[d], b)
        })
        .collect();
    let mut sim = EventDriven::new(Harness {
        net: FlowNet::new(topo),
        done: vec![],
        plan: plan.clone(),
        no_route: 0,
        check_capacity,
    });
    for (i, &(t, ..)) in plan.iter().enumerate() {
        sim.schedule(SimTime::new(t), FEv::Kick(i));
    }
    for &(t, f) in faults {
        sim.schedule(SimTime::new(t), FEv::Fault(f));
    }
    sim.run();
    let m = sim.model();
    assert_eq!(m.net.in_flight(), 0, "run must drain");
    // every planned transfer is accounted for exactly once
    assert_eq!(
        m.done.len() as u64 + m.net.aborted() + m.no_route,
        plan.len() as u64,
        "transfers must complete, abort, or be rejected"
    );
    let fingerprint = m
        .done
        .iter()
        .map(|d| (d.tag, d.finished.seconds().to_bits()))
        .collect();
    (fingerprint, m.net.aborted(), m.no_route)
}

/// Under randomized arrivals, outages, and degradations, the max-min
/// rates never exceed any link's effective capacity.
#[test]
fn capacity_respected_under_random_faults() {
    for trial in 0..24u64 {
        let mut frng = SimRng::new(0xFA17 + trial);
        let n_links = 6; // star(3) minimum: 2 links per host
        let mut faults: Vec<(f64, LinkFault)> = Vec::new();
        for _ in 0..4 {
            let l = LinkId(frng.next_below(n_links) as usize);
            let at = frng.range_f64(1.0, 150.0);
            match frng.next_below(2) {
                0 => {
                    faults.push((at, LinkFault::Down(l)));
                    faults.push((at + frng.range_f64(1.0, 40.0), LinkFault::Up(l)));
                }
                _ => {
                    let factor = frng.range_f64(0.05, 0.9);
                    faults.push((at, LinkFault::Degrade { link: l, factor }));
                    faults.push((
                        at + frng.range_f64(1.0, 40.0),
                        LinkFault::Degrade {
                            link: l,
                            factor: 1.0,
                        },
                    ));
                }
            }
        }
        run_star(0x57A6 + trial, &faults, true);
    }
}

/// Same seed, same fault schedule — bit-identical completions, abort
/// counts, and rejection counts, including seeded Poisson outages.
#[test]
fn faulty_runs_are_bit_identical() {
    for trial in 0..8u64 {
        let schedule = || {
            let mut rng = SimRng::new(0xDE7 + trial).fork(1);
            poisson_link_outages(
                &mut rng,
                &[LinkId(0), LinkId(3), LinkId(4)],
                300.0,
                60.0,
                15.0,
            )
        };
        let a = run_star(0xB17 + trial, &schedule(), false);
        let b = run_star(0xB17 + trial, &schedule(), false);
        assert_eq!(a, b, "trial {trial} diverged");
    }
}

/// On a topology with a redundant path, killing the preferred link
/// re-routes in-flight flows instead of aborting them: every transfer
/// still completes and every byte is delivered.
#[test]
fn redundant_path_keeps_flows_alive() {
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Host, "a");
    let r1 = topo.add_node(NodeKind::Router, "r1");
    let r2 = topo.add_node(NodeKind::Router, "r2");
    let b = topo.add_node(NodeKind::Host, "b");
    // the r1 path is preferred (lower latency); r2 is the detour
    let (ar1, _) = topo.add_duplex(a, r1, mbps(100.0), 0.001);
    topo.add_duplex(r1, b, mbps(100.0), 0.001);
    topo.add_duplex(a, r2, mbps(50.0), 0.01);
    topo.add_duplex(r2, b, mbps(50.0), 0.01);

    let mut rng = SimRng::new(0x2E40);
    let plan: Vec<(f64, NodeId, NodeId, f64)> = (0..12)
        .map(|_| {
            // large enough that flows started early are still running
            // when the outage hits at t = 5
            (rng.range_f64(0.0, 10.0), a, b, rng.range_f64(1.0e8, 1.0e9))
        })
        .collect();
    let injected: f64 = plan.iter().map(|p| p.3).sum();
    let mut sim = EventDriven::new(Harness {
        net: FlowNet::new(topo),
        done: vec![],
        plan: plan.clone(),
        no_route: 0,
        check_capacity: true,
    });
    for (i, &(t, ..)) in plan.iter().enumerate() {
        sim.schedule(SimTime::new(t), FEv::Kick(i));
    }
    sim.schedule(SimTime::new(5.0), FEv::Fault(LinkFault::Down(ar1)));
    sim.schedule(SimTime::new(500.0), FEv::Fault(LinkFault::Up(ar1)));
    sim.run();
    let m = sim.model();
    assert_eq!(m.no_route, 0, "the detour keeps a->b routable");
    assert_eq!(m.net.aborted(), 0, "redundancy prevents aborts");
    assert!(m.net.rerouted() > 0, "the outage must catch live flows");
    assert_eq!(m.done.len(), plan.len(), "every transfer completes");
    let delivered: f64 = m.done.iter().map(|d| d.bytes).sum();
    assert!((delivered - injected).abs() < injected * 1e-9 + 1e-6);
    // downtime accounting covers the full outage window
    let dt = m.net.link_downtime(ar1, SimTime::new(1000.0));
    assert!((dt - 495.0).abs() < 1e-9, "downtime {dt}");
}

/// Exercises the route cache's staleness contract when `cancel`,
/// `try_start`, and `apply_fault` interleave inside a *single* event
/// handler: after every fault the cache must be invalidated before any
/// same-handler lookup, so `cached_path` never serves a route crossing a
/// link that just went down.
struct StaleProbe {
    net: FlowNet,
    a: NodeId,
    b: NodeId,
    ab1: LinkId,
    ab2: LinkId,
    checks: u64,
}

enum PEv {
    Go,
    Net(FlowEvent),
}

impl StaleProbe {
    fn assert_no_stale_paths(&self) {
        let n = self.net.topology().node_count();
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                if let Some(p) = self.net.cached_path(NodeId(s), NodeId(d)) {
                    for &l in &p {
                        assert!(
                            self.net.link_is_up(l),
                            "cached path {s}->{d} crosses down link {l:?}"
                        );
                    }
                }
            }
        }
    }
}

impl Model for StaleProbe {
    type Event = PEv;
    fn handle(&mut self, ev: PEv, ctx: &mut Ctx<'_, PEv>) {
        match ev {
            PEv::Go => {
                // 1. start a flow over whichever path routing picks now
                let f1 = self
                    .net
                    .try_start(self.a, self.b, 1e6, 1, &mut ctx.map(PEv::Net))
                    .expect("diamond is connected");
                self.checks += 1;
                self.assert_no_stale_paths();
                // 2. kill the first arm: the flow reroutes, and any
                //    cached a->b path must already avoid the dead link
                self.net
                    .apply_fault(LinkFault::Down(self.ab1), &mut ctx.map(PEv::Net));
                self.checks += 1;
                self.assert_no_stale_paths();
                // 3. start another flow mid-handler (warms the cache with
                //    the detour), then cancel the first
                let _f2 = self
                    .net
                    .try_start(self.a, self.b, 1e6, 2, &mut ctx.map(PEv::Net))
                    .expect("second arm still up");
                self.net.cancel(f1, &mut ctx.map(PEv::Net));
                self.checks += 1;
                self.assert_no_stale_paths();
                // 4. kill the second arm too: now unreachable, and the
                //    warmed cache entry must not resurrect either route
                self.net
                    .apply_fault(LinkFault::Down(self.ab2), &mut ctx.map(PEv::Net));
                assert!(
                    self.net.cached_path(self.a, self.b).is_none(),
                    "both arms down: cache served a stale route"
                );
                assert!(self
                    .net
                    .try_start(self.a, self.b, 1e6, 3, &mut ctx.map(PEv::Net))
                    .is_err());
                self.checks += 1;
                self.assert_no_stale_paths();
                // 5. bring the first arm back: new flows route again, and
                //    the revived path only uses up links
                self.net
                    .apply_fault(LinkFault::Up(self.ab1), &mut ctx.map(PEv::Net));
                let _f3 = self
                    .net
                    .try_start(self.a, self.b, 1e6, 4, &mut ctx.map(PEv::Net))
                    .expect("first arm is back");
                self.checks += 1;
                self.assert_no_stale_paths();
            }
            PEv::Net(fe) => {
                self.net.handle(fe, &mut ctx.map(PEv::Net));
                self.assert_no_stale_paths();
            }
        }
    }
}

#[test]
fn route_cache_never_stale_across_same_handler_faults() {
    // diamond: two disjoint a->b arms through r1 and r2
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Host, "a");
    let b = topo.add_node(NodeKind::Host, "b");
    let r1 = topo.add_node(NodeKind::Router, "r1");
    let r2 = topo.add_node(NodeKind::Router, "r2");
    let (ab1, _) = topo.add_duplex(a, r1, mbps(100.0), 0.001);
    topo.add_duplex(r1, b, mbps(100.0), 0.001);
    let (ab2, _) = topo.add_duplex(a, r2, mbps(100.0), 0.002);
    topo.add_duplex(r2, b, mbps(100.0), 0.002);
    let net = FlowNet::new(topo);
    let model = StaleProbe {
        net,
        a,
        b,
        ab1,
        ab2,
        checks: 0,
    };
    let mut sim = EventDriven::new(model);
    sim.schedule(SimTime::ZERO, PEv::Go);
    sim.run();
    let m = sim.model();
    assert_eq!(m.checks, 5, "probe handler must run all five phases");
    assert_eq!(m.net.in_flight(), 0, "surviving flows must drain");
}
