//! Randomized tests of the network substrate: conservation of bytes
//! and packets, completion-time lower bounds, routing sanity.
//!
//! Cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), replacing the property-testing framework the offline build
//! cannot fetch.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_net::{
    mbps, FlowDone, FlowEvent, FlowNet, NodeId, NodeKind, PacketEvent, PacketNet, PacketNote,
    Routing, Topology,
};
use lsds_stats::SimRng;

// ---- fluid model harness ----

struct FlowHarness {
    net: FlowNet,
    done: Vec<FlowDone>,
    plan: Vec<(f64, NodeId, NodeId, f64)>,
}

enum FEv {
    Kick(usize),
    Net(FlowEvent),
}

impl Model for FlowHarness {
    type Event = FEv;
    fn handle(&mut self, ev: FEv, ctx: &mut Ctx<'_, FEv>) {
        match ev {
            FEv::Kick(i) => {
                let (_, s, d, b) = self.plan[i];
                self.net.start(s, d, b, i as u64, &mut ctx.map(FEv::Net));
            }
            FEv::Net(fe) => {
                let done = self.net.handle(fe, &mut ctx.map(FEv::Net));
                self.done.extend(done);
            }
        }
    }
}

/// Every byte injected into a star network is delivered, and no
/// transfer beats its physical lower bound (latency + size/bottleneck).
#[test]
fn fluid_conservation_and_bounds() {
    for trial in 0..32u64 {
        let mut rng = SimRng::new(0xF10D0 + trial);
        let n_hosts = 2 + rng.next_below(4) as usize;
        let n_transfers = 1 + rng.next_below(24) as usize;
        let bw = mbps(100.0);
        let lat = 0.01;
        let (topo, hosts) = Topology::star(n_hosts, bw, lat);
        let plan: Vec<(f64, NodeId, NodeId, f64)> = (0..n_transfers)
            .map(|_| {
                let t = rng.range_f64(0.0, 100.0);
                let s = rng.next_below(n_hosts as u64) as usize;
                let mut d = rng.next_below(n_hosts as u64) as usize;
                if d == s {
                    d = (d + 1) % n_hosts;
                }
                let b = rng.range_f64(1.0e3, 1.0e8);
                (t, hosts[s], hosts[d], b)
            })
            .collect();
        let injected: f64 = plan.iter().map(|p| p.3).sum();
        let mut sim = EventDriven::new(FlowHarness {
            net: FlowNet::new(topo),
            done: vec![],
            plan: plan.clone(),
        });
        for (i, &(t, ..)) in plan.iter().enumerate() {
            sim.schedule(SimTime::new(t), FEv::Kick(i));
        }
        sim.run();
        let m = sim.model();
        assert_eq!(m.done.len(), plan.len(), "all transfers complete");
        let delivered: f64 = m.done.iter().map(|d| d.bytes).sum();
        assert!((delivered - injected).abs() < injected * 1e-9 + 1e-6);
        for d in &m.done {
            let i = d.tag as usize;
            let (t0, _, _, bytes) = plan[i];
            // two hops through the hub: latency 2·lat, bottleneck bw
            let lower = 2.0 * lat + bytes / bw;
            let elapsed = d.finished.seconds() - t0;
            assert!(
                elapsed >= lower - 1e-9,
                "transfer {i}: {elapsed} < lower bound {lower}"
            );
        }
        assert_eq!(m.net.in_flight(), 0);
    }
}

/// Fluid model determinism under identical plans.
#[test]
fn fluid_deterministic() {
    for trial in 0..32u64 {
        let mut rng = SimRng::new(0xF10D1 + trial);
        let n_transfers = 1 + rng.next_below(14) as usize;
        let transfers: Vec<(f64, f64)> = (0..n_transfers)
            .map(|_| (rng.range_f64(0.0, 50.0), rng.range_f64(1.0e3, 1.0e7)))
            .collect();
        let run = || {
            let (topo, hosts) = Topology::star(3, mbps(50.0), 0.005);
            let plan: Vec<_> = transfers
                .iter()
                .map(|&(t, b)| (t, hosts[0], hosts[1], b))
                .collect();
            let mut sim = EventDriven::new(FlowHarness {
                net: FlowNet::new(topo),
                done: vec![],
                plan: plan.clone(),
            });
            for (i, &(t, ..)) in plan.iter().enumerate() {
                sim.schedule(SimTime::new(t), FEv::Kick(i));
            }
            sim.run();
            sim.model()
                .done
                .iter()
                .map(|d| (d.tag, d.finished.seconds()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

// ---- packet model harness ----

struct PacketHarness {
    net: PacketNet,
    delivered: u64,
    dropped: u64,
}

enum PEv {
    Inject(u64, NodeId, NodeId, u32, f64),
    Net(PacketEvent),
}

impl Model for PacketHarness {
    type Event = PEv;
    fn handle(&mut self, ev: PEv, ctx: &mut Ctx<'_, PEv>) {
        let notes = match ev {
            PEv::Inject(id, s, d, n, size) => {
                self.net
                    .inject_transfer(id, s, d, n, size, &mut ctx.map(PEv::Net))
            }
            PEv::Net(pe) => self.net.handle(pe, &mut ctx.map(PEv::Net)),
        };
        for note in notes {
            match note {
                PacketNote::Delivered { .. } => self.delivered += 1,
                PacketNote::Dropped { .. } => self.dropped += 1,
            }
        }
    }
}

/// Packet conservation: delivered + dropped = injected, always.
#[test]
fn packet_conservation() {
    for trial in 0..32u64 {
        let mut rng = SimRng::new(0xF10D2 + trial);
        let n_bursts = 1 + rng.next_below(9) as usize;
        let bursts: Vec<(f64, u32)> = (0..n_bursts)
            .map(|_| (rng.range_f64(0.0, 10.0), 1 + rng.next_below(79) as u32))
            .collect();
        let qcap = 1 + rng.next_below(63) as usize;
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Host, "a");
        let r = topo.add_node(NodeKind::Router, "r");
        let b = topo.add_node(NodeKind::Host, "b");
        topo.add_link(a, r, 1.0e5, 0.001);
        topo.add_link(r, b, 5.0e4, 0.001);
        let total: u32 = bursts.iter().map(|&(_, n)| n).sum();
        let mut sim = EventDriven::new(PacketHarness {
            net: PacketNet::new(topo, qcap),
            delivered: 0,
            dropped: 0,
        });
        for (i, &(t, n)) in bursts.iter().enumerate() {
            sim.schedule(SimTime::new(t), PEv::Inject(i as u64, a, b, n, 500.0));
        }
        sim.run();
        let m = sim.model();
        assert_eq!(m.delivered + m.dropped, total as u64);
        let (inj, del, drop) = m.net.counters();
        assert_eq!(inj, total as u64);
        assert_eq!(del, m.delivered);
        assert_eq!(drop, m.dropped);
    }
}

/// Routing on random trees: every pair connected, paths loop-free,
/// latency additive.
#[test]
fn routing_on_random_trees() {
    for trial in 0..16u64 {
        let mut rng = SimRng::new(0xF10D3 + trial);
        let extra = 1 + rng.next_below(7) as usize;
        // node i+1 attaches to a random earlier node: always a valid tree
        let mut topo = Topology::new();
        let mut nodes = vec![topo.add_node(NodeKind::Host, "n0")];
        for i in 0..extra {
            let n = topo.add_node(NodeKind::Host, format!("n{}", i + 1));
            let parent = nodes[rng.next_below((i + 1) as u64) as usize];
            topo.add_duplex(parent, n, mbps(10.0), 0.01);
            nodes.push(n);
        }
        let routing = Routing::compute(&topo);
        for &s in &nodes {
            for &d in &nodes {
                let path = routing.path(&topo, s, d);
                assert!(path.is_some(), "{s:?} -> {d:?} unreachable");
                let path = path.unwrap();
                assert!(path.len() < nodes.len(), "path too long (loop?)");
                let lat = routing.path_latency(&topo, s, d).unwrap();
                assert!((lat - 0.01 * path.len() as f64).abs() < 1e-12);
            }
        }
    }
}
