//! Side-by-side properties of the incremental fair-share engine.
//!
//! The dirty-component reshare ([`ShareMode::Incremental`]) claims to be
//! *bit-identical* to the full recompute ([`ShareMode::Full`]): same
//! allocations, same completion timestamps, same event order. These tests
//! run both modes on the same seeded random workloads — multi-component
//! topologies, Poisson link outages, capacity degradations, reroutes and
//! aborts — and compare complete trajectories: completion fingerprints,
//! abort/reroute/rejection counts, and a per-event digest of every link's
//! load bits (which pins down event *order*, not just final results).
//!
//! The same harness also proves the route-cache properties (stale cached
//! paths never survive a fault; cache-off runs match cache-on runs) and
//! that the O(1) cached `link_load` keeps monitored runs bit-identical.

use lsds_core::{Ctx, EventDriven, Model, SimTime};
use lsds_net::{
    mbps, poisson_link_outages, FlowDone, FlowEvent, FlowNet, LinkFault, LinkId, NodeId, NodeKind,
    ShareMode, Topology,
};
use lsds_stats::SimRng;

struct Harness {
    net: FlowNet,
    done: Vec<FlowDone>,
    plan: Vec<(f64, NodeId, NodeId, f64)>,
    no_route: u64,
    /// FNV-1a over every link's load bits after every event: a compact
    /// witness of the whole rate trajectory, including event order.
    digest: u64,
    /// After every event, assert no cached route crosses a down link.
    check_routes: bool,
}

enum FEv {
    Kick(usize),
    Fault(LinkFault),
    Net(FlowEvent),
}

fn fnv(mut h: u64, x: u64) -> u64 {
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl Model for Harness {
    type Event = FEv;
    fn handle(&mut self, ev: FEv, ctx: &mut Ctx<'_, FEv>) {
        match ev {
            FEv::Kick(i) => {
                let (_, s, d, b) = self.plan[i];
                if self
                    .net
                    .try_start(s, d, b, i as u64, &mut ctx.map(FEv::Net))
                    .is_err()
                {
                    self.no_route += 1;
                }
            }
            FEv::Fault(f) => {
                self.net.apply_fault(f, &mut ctx.map(FEv::Net));
            }
            FEv::Net(fe) => {
                let done = self.net.handle(fe, &mut ctx.map(FEv::Net));
                self.done.extend(done);
            }
        }
        for l in 0..self.net.topology().link_count() {
            self.digest = fnv(self.digest, self.net.link_load(LinkId(l)).to_bits());
        }
        if self.check_routes {
            let n = self.net.topology().node_count();
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    if let Some(p) = self.net.cached_path(NodeId(s), NodeId(d)) {
                        for &lid in &p {
                            assert!(
                                self.net.link_is_up(lid),
                                "cached route {s}->{d} crosses down link {lid:?}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Several disjoint clusters (duplex pairs plus a star), so the link↔flow
/// bipartite graph genuinely decomposes into independent components.
fn clustered_topo(rng: &mut SimRng) -> (Topology, Vec<Vec<NodeId>>) {
    let mut t = Topology::new();
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let n_pairs = 2 + rng.next_below(3) as usize;
    for p in 0..n_pairs {
        let a = t.add_node(NodeKind::Host, format!("p{p}a"));
        let b = t.add_node(NodeKind::Host, format!("p{p}b"));
        t.add_duplex(a, b, mbps(rng.range_f64(50.0, 200.0)), 0.01);
        clusters.push(vec![a, b]);
    }
    // one star cluster: multi-hop paths through a shared hub
    let hub = t.add_node(NodeKind::Router, "hub");
    let n_leaves = 3 + rng.next_below(3) as usize;
    let mut leaves = Vec::new();
    for h in 0..n_leaves {
        let leaf = t.add_node(NodeKind::Host, format!("s{h}"));
        t.add_duplex(leaf, hub, mbps(rng.range_f64(50.0, 200.0)), 0.005);
        leaves.push(leaf);
    }
    clusters.push(leaves);
    (t, clusters)
}

fn random_faults(rng: &mut SimRng, topo: &Topology) -> Vec<(f64, LinkFault)> {
    let links: Vec<LinkId> = (0..topo.link_count())
        .filter(|_| rng.next_below(3) == 0)
        .map(LinkId)
        .collect();
    let mut faults = poisson_link_outages(rng, &links, 250.0, 50.0, 10.0);
    for _ in 0..2 {
        let l = LinkId(rng.next_below(topo.link_count() as u64) as usize);
        let at = rng.range_f64(5.0, 150.0);
        let factor = rng.range_f64(0.1, 0.9);
        faults.push((at, LinkFault::Degrade { link: l, factor }));
        faults.push((
            at + rng.range_f64(5.0, 60.0),
            LinkFault::Degrade {
                link: l,
                factor: 1.0,
            },
        ));
    }
    faults
}

/// Everything two runs must agree on to count as "the same trajectory".
#[derive(Debug, PartialEq)]
struct Trajectory {
    completions: Vec<(u64, u64)>,
    aborted: u64,
    rerouted: u64,
    no_route: u64,
    digest: u64,
    reshare_count: u64,
}

struct RunCfg {
    mode: ShareMode,
    route_cache: bool,
    monitored: bool,
    check_routes: bool,
}

fn run_clustered(seed: u64, cfg: &RunCfg) -> (Trajectory, FlowNet) {
    let mut rng = SimRng::new(seed);
    let (topo, clusters) = clustered_topo(&mut rng);
    let n_transfers = 24 + rng.next_below(24) as usize;
    let plan: Vec<(f64, NodeId, NodeId, f64)> = (0..n_transfers)
        .map(|_| {
            let t = rng.range_f64(0.0, 180.0);
            let c = &clusters[rng.next_below(clusters.len() as u64) as usize];
            let s = rng.next_below(c.len() as u64) as usize;
            let mut d = rng.next_below(c.len() as u64) as usize;
            if d == s {
                d = (d + 1) % c.len();
            }
            (t, c[s], c[d], rng.range_f64(1.0e4, 8.0e8))
        })
        .collect();
    let faults = random_faults(&mut rng.fork(7), &topo);
    let mut net = FlowNet::new(topo);
    net.set_share_mode(cfg.mode);
    net.set_route_cache(cfg.route_cache);
    if cfg.monitored {
        net.enable_monitor();
    }
    let mut sim = EventDriven::new(Harness {
        net,
        done: vec![],
        plan: plan.clone(),
        no_route: 0,
        digest: 0xCBF2_9CE4_8422_2325,
        check_routes: cfg.check_routes,
    });
    for (i, &(t, ..)) in plan.iter().enumerate() {
        sim.schedule(SimTime::new(t), FEv::Kick(i));
    }
    for &(t, f) in &faults {
        sim.schedule(SimTime::new(t), FEv::Fault(f));
    }
    sim.run();
    let m = sim.into_model();
    assert_eq!(m.net.in_flight(), 0, "run must drain");
    assert_eq!(
        m.done.len() as u64 + m.net.aborted() + m.no_route,
        plan.len() as u64,
        "transfers must complete, abort, or be rejected"
    );
    let traj = Trajectory {
        completions: m
            .done
            .iter()
            .map(|d| (d.tag, d.finished.seconds().to_bits()))
            .collect(),
        aborted: m.net.aborted(),
        rerouted: m.net.rerouted(),
        no_route: m.no_route,
        digest: m.digest,
        reshare_count: m.net.reshare_count(),
    };
    (traj, m.net)
}

const BASE: RunCfg = RunCfg {
    mode: ShareMode::Incremental,
    route_cache: true,
    monitored: false,
    check_routes: false,
};

/// The tentpole property: on seeded random faulty workloads, the
/// incremental dirty-component reshare produces the exact trajectory of
/// the full recompute — completion timestamps bit-for-bit, same
/// abort/reroute/rejection outcomes, same per-event load digest — while
/// touching no more (usually far fewer) links and flows.
#[test]
fn incremental_matches_full_bitwise_under_faults() {
    let mut saw_faulted_run = false;
    let mut saw_scope_win = false;
    for trial in 0..12u64 {
        let seed = 0x51DE + trial;
        let (full, full_net) = run_clustered(
            seed,
            &RunCfg {
                mode: ShareMode::Full,
                ..BASE
            },
        );
        let (inc, inc_net) = run_clustered(seed, &BASE);
        assert_eq!(full, inc, "trial {trial}: trajectories diverged");
        saw_faulted_run |= full.aborted + full.rerouted > 0;
        assert!(
            inc_net.links_touched() <= full_net.links_touched(),
            "trial {trial}: incremental touched more links"
        );
        assert!(inc_net.flows_touched() <= full_net.flows_touched());
        saw_scope_win |= inc_net.flows_touched() < full_net.flows_touched();
    }
    assert!(saw_faulted_run, "workloads must exercise fault paths");
    assert!(saw_scope_win, "incremental must actually shrink the scope");
}

/// Memoized routes are invalidated by `apply_fault`: after every event of
/// a faulty run, no cached path crosses a link that is currently down.
#[test]
fn cached_routes_never_traverse_down_links() {
    for trial in 0..6u64 {
        let (traj, _) = run_clustered(
            0xCAC4E + trial,
            &RunCfg {
                check_routes: true,
                ..BASE
            },
        );
        // the harness asserted route freshness after every event; make
        // sure faults actually disturbed some routes along the way
        if traj.aborted + traj.rerouted > 0 {
            return;
        }
    }
    panic!("no trial exercised reroute/abort paths");
}

/// The route cache is a pure memo: disabling it changes nothing about
/// the trajectory, under the same Poisson outage schedules.
#[test]
fn cache_off_matches_cache_on_bitwise_under_outages() {
    for trial in 0..6u64 {
        let seed = 0x0FF + trial;
        let (on, on_net) = run_clustered(seed, &BASE);
        let (off, off_net) = run_clustered(
            seed,
            &RunCfg {
                route_cache: false,
                ..BASE
            },
        );
        assert_eq!(on, off, "trial {trial}: cache toggled the trajectory");
        let (hits, _) = on_net.route_cache_stats();
        assert!(hits > 0, "trial {trial}: cache never hit");
        assert_eq!(off_net.route_cache_stats(), (0, 0));
    }
}

/// Regression for the O(1) cached `link_load`: turning monitoring on
/// (which samples utilization after every event) must not perturb the
/// trajectory in any bit.
#[test]
fn monitored_runs_stay_bit_identical() {
    for trial in 0..6u64 {
        let seed = 0x40B + trial;
        let (plain, _) = run_clustered(seed, &BASE);
        let (monitored, net) = run_clustered(
            seed,
            &RunCfg {
                monitored: true,
                ..BASE
            },
        );
        assert_eq!(plain, monitored, "trial {trial}: monitoring perturbed run");
        let reg = net.monitor().unwrap();
        let sampled = (0..net.topology().link_count()).any(|l| {
            let link = net.topology().link(LinkId(l));
            let key = format!(
                "net.link.{}->{}.utilization",
                net.topology().node(link.from).name,
                net.topology().node(link.to).name
            );
            reg.series(&key).is_some()
        });
        assert!(sampled, "trial {trial}: monitor recorded nothing");
    }
}
