//! Randomized conformance of every event-list structure against a
//! reference model: arbitrary interleavings of inserts and pops must
//! behave exactly like a sorted multimap keyed by `(time, seq)`.
//!
//! The cases are generated with the deterministic [`SimRng`] (seeded per
//! trial), so failures reproduce exactly — the offline build has no
//! property-testing framework, but the properties and case counts match
//! the original suite.

use lsds_core::{
    BinaryHeapQueue, CalendarQueue, EventQueue, LadderQueue, ScheduledEvent, SimTime,
    SortedListQueue,
};
use lsds_stats::SimRng;
use std::collections::BTreeMap;

const TRIALS: u64 = 64;

/// Operations driven against both the queue under test and the reference.
#[derive(Debug, Clone)]
enum Op {
    /// Insert an event with the given non-negative time offset.
    Insert(f64),
    /// Pop the minimum.
    Pop,
}

/// 3:2 insert:pop mix, like the original strategy.
fn random_ops(rng: &mut SimRng) -> Vec<Op> {
    let len = 1 + rng.next_below(299) as usize;
    (0..len)
        .map(|_| {
            if rng.next_below(5) < 3 {
                Op::Insert(rng.range_f64(0.0, 1.0e4))
            } else {
                Op::Pop
            }
        })
        .collect()
}

/// Drives the op sequence with monotone validity: like a real engine, an
/// insert after a pop never schedules before the last popped time.
fn check_against_reference<Q: EventQueue<u64>>(mut q: Q, ops: &[Op]) {
    let mut reference: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut seq = 0u64;
    let mut clock = 0.0f64;
    for op in ops {
        match op {
            Op::Insert(dt) => {
                let t = clock + dt;
                q.insert(ScheduledEvent::new(SimTime::new(t), seq, seq));
                reference.insert((t.to_bits(), seq), seq);
                seq += 1;
            }
            Op::Pop => {
                let expected = reference.keys().next().copied();
                match (q.pop_min(), expected) {
                    (None, None) => {}
                    (Some(got), Some(key)) => {
                        let want = reference.remove(&key).expect("key exists");
                        assert_eq!(got.event, want, "{}: popped wrong event", q.name());
                        let t = f64::from_bits(key.0);
                        assert_eq!(got.time, SimTime::new(t), "{}", q.name());
                        assert!(t >= clock, "{}: time went backwards", q.name());
                        clock = t;
                    }
                    (got, want) => panic!(
                        "{}: emptiness mismatch: got {:?} want {:?}",
                        q.name(),
                        got.map(|e| e.event),
                        want
                    ),
                }
            }
        }
        assert_eq!(q.len(), reference.len(), "{}: len mismatch", q.name());
        assert_eq!(q.is_empty(), reference.is_empty(), "{}", q.name());
    }
    // drain and verify full order
    let mut last = clock;
    while let Some(ev) = q.pop_min() {
        let key = reference
            .keys()
            .next()
            .copied()
            .expect("reference empty early");
        assert_eq!(ev.event, reference.remove(&key).expect("key"));
        assert!(ev.time.seconds() >= last, "{}", q.name());
        last = ev.time.seconds();
    }
    assert!(reference.is_empty(), "{}: queue drained early", q.name());
}

#[test]
fn binary_heap_matches_reference() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x51EE0 + trial);
        check_against_reference(BinaryHeapQueue::new(), &random_ops(&mut rng));
    }
}

#[test]
fn sorted_list_matches_reference() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x51EE1 + trial);
        check_against_reference(SortedListQueue::new(), &random_ops(&mut rng));
    }
}

#[test]
fn calendar_matches_reference() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x51EE2 + trial);
        check_against_reference(CalendarQueue::new(), &random_ops(&mut rng));
    }
}

#[test]
fn ladder_matches_reference() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x51EE3 + trial);
        check_against_reference(LadderQueue::new(), &random_ops(&mut rng));
    }
}

/// All four structures drain identically for any batch of events.
#[test]
fn structures_agree_pairwise() {
    for trial in 0..TRIALS {
        let mut rng = SimRng::new(0x51EE4 + trial);
        let len = 1 + rng.next_below(199) as usize;
        let times: Vec<f64> = (0..len).map(|_| rng.range_f64(0.0, 1.0e6)).collect();
        let mut heap = BinaryHeapQueue::new();
        let mut list = SortedListQueue::new();
        let mut cal = CalendarQueue::new();
        let mut lad = LadderQueue::new();
        for (i, &t) in times.iter().enumerate() {
            let ev = ScheduledEvent::new(SimTime::new(t), i as u64, i as u64);
            heap.insert(ev.clone());
            list.insert(ev.clone());
            cal.insert(ev.clone());
            lad.insert(ev);
        }
        for _ in 0..times.len() {
            let a = heap.pop_min().unwrap().event;
            let b = list.pop_min().unwrap().event;
            let c = cal.pop_min().unwrap().event;
            let d = lad.pop_min().unwrap().event;
            assert_eq!(a, b);
            assert_eq!(b, c);
            assert_eq!(c, d);
        }
    }
}
