//! Process-oriented simulation: MONARC 2-style "active objects".
//!
//! "MONARC 2 is built based on a process oriented approach for discrete
//! event simulation, which is well suited to describe concurrent running
//! programs … Threaded objects or 'Active Objects' (having an execution
//! thread, program counter, stack …) allow a natural way to map the
//! specific behavior of distributed data processing into the simulation
//! program." (§4)
//!
//! Here an active object is a resumable state machine ([`Process`]) bound
//! to an *execution context* — a stand-in for the thread stack the Java
//! original allocates per object. The paper observes that how simulated
//! jobs map onto such contexts is a real engine design axis: "Reusing
//! threads, using advanced mapping schemes in which multiple jobs can be
//! simulated running in the same thread context, or any other aspect
//! considered in this direction can yield higher simulation performances."
//! (§3) The [`MappingScheme`] selects between one-context-per-job, pooled
//! reuse, and batched sharing, and experiment E12 measures the difference.

mod mapping;
mod scheduler;

pub use mapping::{ContextPool, ContextStats, MappingScheme, CONTEXT_BYTES};
pub use scheduler::{ProcessEngine, ProcessStats, Resume};

use crate::time::SimTime;

/// Identifier of a live process within a [`ProcessEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub(crate) u64);

impl ProcessId {
    /// Raw id value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// What a process wants to do next after being resumed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Sleep for the given non-negative simulated duration, then resume.
    Hold(f64),
    /// The process has finished; its context is released per the mapping
    /// scheme.
    Done,
}

/// A resumable simulated activity (job, transfer, daemon …).
///
/// `resume` is called with the current simulated time; the process advances
/// its internal state machine and returns what to do next. This is the
/// cooperative, deterministic equivalent of MONARC's threaded objects.
pub trait Process {
    /// Advances the process at time `now`.
    fn resume(&mut self, now: SimTime) -> Action;
}

impl<F: FnMut(SimTime) -> Action> Process for F {
    fn resume(&mut self, now: SimTime) -> Action {
        self(now)
    }
}
