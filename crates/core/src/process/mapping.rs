//! Execution contexts and job→context mapping schemes.

/// Size of one simulated execution context, matching a small thread stack.
///
/// The buffer is really allocated and written, so the cost difference
/// between allocating per job and reusing contexts is physical, not
/// notional — which is what experiment E12 measures.
pub const CONTEXT_BYTES: usize = 16 * 1024;

/// A stand-in for the per-active-object thread context (stack + registers).
pub struct Context {
    stack: Box<[u8]>,
    /// Number of jobs currently sharing this context (batched mapping).
    residents: usize,
}

impl Context {
    fn allocate() -> Self {
        // zeroed allocation: the kernel/allocator must actually provide
        // the pages, as a thread spawn would
        let mut stack = vec![0u8; CONTEXT_BYTES].into_boxed_slice();
        // touch one byte per page so the cost is not deferred
        for i in (0..CONTEXT_BYTES).step_by(4096) {
            stack[i] = 1;
        }
        Context {
            stack,
            residents: 0,
        }
    }

    /// "Context switch" bookkeeping: scribble a cache line, as a real
    /// switch would dirty the stack top.
    fn touch(&mut self) {
        for b in self.stack.iter_mut().take(64) {
            *b = b.wrapping_add(1);
        }
    }
}

/// How simulated jobs are mapped onto execution contexts (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingScheme {
    /// A fresh context per job, dropped at completion — the naive
    /// one-thread-per-job design.
    PerJob,
    /// Completed jobs return their context to a free pool for reuse —
    /// "reusing threads".
    Pooled,
    /// Up to `jobs_per_context` concurrent jobs share one context —
    /// "multiple jobs … running in the same thread context".
    Batched {
        /// Maximum concurrent jobs per shared context.
        jobs_per_context: usize,
    },
}

impl MappingScheme {
    /// Display name for experiment output.
    pub fn name(self) -> String {
        match self {
            MappingScheme::PerJob => "per-job".to_string(),
            MappingScheme::Pooled => "pooled".to_string(),
            MappingScheme::Batched { jobs_per_context } => {
                format!("batched({jobs_per_context})")
            }
        }
    }
}

/// Counters exposed by the pool for experiment E12.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Contexts actually allocated.
    pub allocations: u64,
    /// Context acquisitions served from the free pool or by sharing.
    pub reuses: u64,
    /// High-water mark of simultaneously live contexts.
    pub peak_live: u64,
}

/// Handle to an acquired context slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContextHandle(usize);

/// Pool of execution contexts governed by a [`MappingScheme`].
pub struct ContextPool {
    scheme: MappingScheme,
    contexts: Vec<Option<Context>>,
    free: Vec<usize>,
    live: u64,
    stats: ContextStats,
}

impl ContextPool {
    /// Creates an empty pool with the given scheme.
    pub fn new(scheme: MappingScheme) -> Self {
        ContextPool {
            scheme,
            contexts: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: ContextStats::default(),
        }
    }

    /// The pool's mapping scheme.
    pub fn scheme(&self) -> MappingScheme {
        self.scheme
    }

    /// Observed counters.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    fn fresh_slot(&mut self) -> usize {
        self.stats.allocations += 1;
        self.contexts.push(Some(Context::allocate()));
        self.contexts.len() - 1
    }

    /// Acquires a context for a new job.
    pub fn acquire(&mut self) -> ContextHandle {
        let idx = match self.scheme {
            MappingScheme::PerJob => self.fresh_slot(),
            MappingScheme::Pooled => {
                if let Some(idx) = self.free.pop() {
                    self.stats.reuses += 1;
                    idx
                } else {
                    self.fresh_slot()
                }
            }
            MappingScheme::Batched { jobs_per_context } => {
                // find a context with room; linear scan over live contexts
                // is bounded by live/jobs_per_context in practice
                let found = self
                    .contexts
                    .iter()
                    .position(|c| c.as_ref().is_some_and(|c| c.residents < jobs_per_context));
                if let Some(idx) = found {
                    self.stats.reuses += 1;
                    idx
                } else {
                    self.fresh_slot()
                }
            }
        };
        let ctx = self.contexts[idx].as_mut().expect("acquired slot is empty");
        ctx.residents += 1;
        if ctx.residents == 1 {
            self.live += 1;
            self.stats.peak_live = self.stats.peak_live.max(self.live);
        }
        ContextHandle(idx)
    }

    /// Performs per-resume context-switch work.
    pub fn switch(&mut self, handle: ContextHandle) {
        if let Some(ctx) = self.contexts[handle.0].as_mut() {
            ctx.touch();
        }
    }

    /// Releases a job's claim on its context.
    pub fn release(&mut self, handle: ContextHandle) {
        let idx = handle.0;
        let emptied = {
            let ctx = self.contexts[idx].as_mut().expect("release of empty slot");
            assert!(ctx.residents > 0, "double release");
            ctx.residents -= 1;
            ctx.residents == 0
        };
        if emptied {
            self.live -= 1;
            match self.scheme {
                MappingScheme::PerJob => {
                    // drop the allocation outright
                    self.contexts[idx] = None;
                }
                MappingScheme::Pooled => self.free.push(idx),
                MappingScheme::Batched { .. } => {
                    // shared contexts linger for future arrivals
                }
            }
        }
    }

    /// Contexts currently holding at least one job.
    pub fn live(&self) -> u64 {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_job_allocates_every_time() {
        let mut pool = ContextPool::new(MappingScheme::PerJob);
        for _ in 0..10 {
            let h = pool.acquire();
            pool.release(h);
        }
        assert_eq!(pool.stats().allocations, 10);
        assert_eq!(pool.stats().reuses, 0);
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn pooled_reuses_after_release() {
        let mut pool = ContextPool::new(MappingScheme::Pooled);
        for _ in 0..10 {
            let h = pool.acquire();
            pool.release(h);
        }
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().reuses, 9);
    }

    #[test]
    fn pooled_allocates_under_concurrency() {
        let mut pool = ContextPool::new(MappingScheme::Pooled);
        let hs: Vec<_> = (0..5).map(|_| pool.acquire()).collect();
        assert_eq!(pool.stats().allocations, 5);
        assert_eq!(pool.stats().peak_live, 5);
        for h in hs {
            pool.release(h);
        }
        let _h = pool.acquire();
        assert_eq!(pool.stats().allocations, 5, "reuse after drain");
    }

    #[test]
    fn batched_shares_contexts() {
        let mut pool = ContextPool::new(MappingScheme::Batched {
            jobs_per_context: 4,
        });
        let hs: Vec<_> = (0..8).map(|_| pool.acquire()).collect();
        assert_eq!(pool.stats().allocations, 2, "8 jobs / 4 per context");
        // all 8 share 2 live contexts
        assert_eq!(pool.live(), 2);
        for h in hs {
            pool.release(h);
        }
        assert_eq!(pool.live(), 0);
    }

    #[test]
    fn batched_respects_capacity() {
        let mut pool = ContextPool::new(MappingScheme::Batched {
            jobs_per_context: 2,
        });
        let _h1 = pool.acquire();
        let _h2 = pool.acquire();
        let _h3 = pool.acquire();
        assert_eq!(pool.stats().allocations, 2);
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let mut pool = ContextPool::new(MappingScheme::Pooled);
        let h = pool.acquire();
        pool.release(h);
        pool.release(h);
    }
}
