//! The process scheduler: runs active objects on the event-driven engine.

use super::mapping::{ContextHandle, ContextPool, ContextStats, MappingScheme};
use super::{Action, Process, ProcessId};
use crate::engine::{Ctx, EventDriven, Model, RunStats};
use crate::queue::{BinaryHeapQueue, EventQueue};
use crate::time::SimTime;

/// Aggregate process statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Processes spawned.
    pub spawned: u64,
    /// Processes that returned [`Action::Done`].
    pub completed: u64,
    /// Resume calls delivered.
    pub resumes: u64,
}

struct Slot {
    proc: Box<dyn Process>,
    /// Acquired lazily at the first resume, so context lifetime tracks
    /// *simulated* concurrency, not spawn-registration order.
    ctx: Option<ContextHandle>,
}

/// The internal model driving processes with resume events.
struct ProcModel {
    slots: Vec<Option<Slot>>,
    free_slots: Vec<usize>,
    pool: ContextPool,
    stats: ProcessStats,
}

/// Engine event: resume the process in a slot. Public only because it
/// appears in [`ProcessEngine`]'s queue-type parameter; not constructible
/// outside this module.
#[derive(Debug, Clone, Copy)]
pub struct Resume {
    slot: usize,
    pid: u64,
}

impl ProcModel {
    fn spawn(&mut self, proc: Box<dyn Process>, _pid: u64) -> usize {
        let slot = Slot { proc, ctx: None };
        self.stats.spawned += 1;
        match self.free_slots.pop() {
            Some(i) => {
                debug_assert!(self.slots[i].is_none());
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }
}

impl Model for ProcModel {
    type Event = Resume;

    fn handle(&mut self, ev: Resume, ctx: &mut Ctx<'_, Resume>) {
        if self.slots[ev.slot].is_none() {
            return; // process finished before a stale resume arrived
        }
        // first resume binds an execution context per the mapping scheme
        if self.slots[ev.slot]
            .as_ref()
            .is_some_and(|s| s.ctx.is_none())
        {
            let handle = self.pool.acquire();
            self.slots[ev.slot].as_mut().expect("slot vanished").ctx = Some(handle);
        }
        let slot = self.slots[ev.slot].as_mut().expect("slot vanished");
        self.stats.resumes += 1;
        self.pool.switch(slot.ctx.expect("context bound above"));
        match slot.proc.resume(ctx.now()) {
            Action::Hold(dt) => {
                assert!(dt >= 0.0 && dt.is_finite(), "invalid hold {dt}");
                ctx.schedule_in(dt, ev);
            }
            Action::Done => {
                let slot = self.slots[ev.slot].take().expect("slot vanished");
                self.pool.release(slot.ctx.expect("context bound above"));
                self.free_slots.push(ev.slot);
                self.stats.completed += 1;
                let _ = ev.pid;
            }
        }
    }
}

/// Process-oriented simulation engine ("active objects").
///
/// ```
/// use lsds_core::process::{ProcessEngine, MappingScheme, Action};
/// use lsds_core::SimTime;
///
/// let mut sim = ProcessEngine::new(MappingScheme::Pooled);
/// // a three-phase job: compute 2s, compute 3s, finish
/// for _ in 0..10 {
///     let mut phase = 0;
///     sim.spawn_at(SimTime::ZERO, move |_now| {
///         phase += 1;
///         match phase {
///             1 => Action::Hold(2.0),
///             2 => Action::Hold(3.0),
///             _ => Action::Done,
///         }
///     });
/// }
/// sim.run_until(SimTime::new(100.0));
/// assert_eq!(sim.stats().completed, 10);
/// ```
pub struct ProcessEngine<Q: EventQueue<Resume> = BinaryHeapQueue<Resume>> {
    inner: EventDriven<ProcModel, Q>,
    next_pid: u64,
}

impl ProcessEngine<BinaryHeapQueue<Resume>> {
    /// Creates a process engine with the given job→context mapping scheme.
    pub fn new(scheme: MappingScheme) -> Self {
        ProcessEngine {
            inner: EventDriven::new(ProcModel {
                slots: Vec::new(),
                free_slots: Vec::new(),
                pool: ContextPool::new(scheme),
                stats: ProcessStats::default(),
            }),
            next_pid: 0,
        }
    }
}

impl<Q: EventQueue<Resume>> ProcessEngine<Q> {
    /// Spawns a process whose first `resume` happens at time `at`.
    pub fn spawn_at(&mut self, at: SimTime, proc: impl Process + 'static) -> ProcessId {
        let pid = self.next_pid;
        self.next_pid += 1;
        let slot = self.inner.model_mut().spawn(Box::new(proc), pid);
        self.inner.schedule(at, Resume { slot, pid });
        ProcessId(pid)
    }

    /// Runs until all processes finish or `t_end` is reached.
    pub fn run_until(&mut self, t_end: SimTime) -> RunStats {
        self.inner.run_until(t_end)
    }

    /// Runs until all processes finish.
    pub fn run(&mut self) -> RunStats {
        self.inner.run()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// Process counters.
    pub fn stats(&self) -> ProcessStats {
        self.inner.model().stats
    }

    /// Context-pool counters (allocations, reuses, peak live).
    pub fn context_stats(&self) -> ContextStats {
        self.inner.model().pool.stats()
    }

    /// Processes currently alive.
    pub fn live(&self) -> usize {
        self.inner.model().slots.iter().flatten().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n_phase_job(phases: u32, hold: f64) -> impl Process {
        let mut left = phases;
        move |_now: SimTime| {
            if left == 0 {
                Action::Done
            } else {
                left -= 1;
                Action::Hold(hold)
            }
        }
    }

    #[test]
    fn completes_all_jobs() {
        let mut sim = ProcessEngine::new(MappingScheme::Pooled);
        for i in 0..100 {
            sim.spawn_at(SimTime::new(i as f64 * 0.1), n_phase_job(3, 1.0));
        }
        sim.run();
        assert_eq!(sim.stats().spawned, 100);
        assert_eq!(sim.stats().completed, 100);
        // each job resumes 4 times: 3 holds + 1 done
        assert_eq!(sim.stats().resumes, 400);
        assert_eq!(sim.live(), 0);
    }

    #[test]
    fn finish_time_is_sum_of_holds() {
        let mut sim = ProcessEngine::new(MappingScheme::PerJob);
        sim.spawn_at(SimTime::new(2.0), n_phase_job(4, 1.5));
        let stats = sim.run();
        assert!((stats.end_time.seconds() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn slots_are_recycled() {
        let mut sim = ProcessEngine::new(MappingScheme::Pooled);
        // sequential jobs: at most 1 alive at a time
        for i in 0..50 {
            sim.spawn_at(SimTime::new(i as f64 * 10.0), n_phase_job(2, 1.0));
        }
        sim.run();
        assert_eq!(sim.context_stats().peak_live, 1);
        assert_eq!(sim.context_stats().allocations, 1);
    }

    #[test]
    fn per_job_allocates_per_job() {
        let mut sim = ProcessEngine::new(MappingScheme::PerJob);
        for i in 0..50 {
            sim.spawn_at(SimTime::new(i as f64 * 10.0), n_phase_job(2, 1.0));
        }
        sim.run();
        assert_eq!(sim.context_stats().allocations, 50);
    }

    #[test]
    fn batched_bounds_contexts_under_concurrency() {
        let mut sim = ProcessEngine::new(MappingScheme::Batched {
            jobs_per_context: 10,
        });
        for _ in 0..100 {
            sim.spawn_at(SimTime::ZERO, n_phase_job(5, 1.0));
        }
        sim.run();
        assert_eq!(sim.context_stats().allocations, 10);
    }

    #[test]
    fn run_until_leaves_processes_live() {
        let mut sim = ProcessEngine::new(MappingScheme::Pooled);
        sim.spawn_at(SimTime::ZERO, n_phase_job(100, 1.0));
        sim.run_until(SimTime::new(10.5));
        assert_eq!(sim.stats().completed, 0);
        assert_eq!(sim.live(), 1);
        sim.run();
        assert_eq!(sim.stats().completed, 1);
    }

    #[test]
    fn closure_process_trait_impl() {
        let mut sim = ProcessEngine::new(MappingScheme::Pooled);
        let mut ticks = 0u32;
        sim.spawn_at(SimTime::ZERO, move |_| {
            ticks += 1;
            if ticks > 2 {
                Action::Done
            } else {
                Action::Hold(0.5)
            }
        });
        let stats = sim.run();
        assert!((stats.end_time.seconds() - 1.0).abs() < 1e-12);
    }
}
