//! Scheduled events and deterministic tie-breaking.

use crate::time::SimTime;

/// Monotone sequence number assigned at scheduling time.
///
/// Events with equal timestamps are delivered in scheduling order, which
/// makes every engine in this workspace deterministic: "repeating the same
/// simulation will always return the same simulation results" (§3).
pub type EventSeq = u64;

/// An event stamped with its due time and scheduling sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Simulated time at which the event fires.
    pub time: SimTime,
    /// Scheduling sequence number; ties on `time` are broken by `seq`.
    pub seq: EventSeq,
    /// The model-defined payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    /// Bundles a payload with its due time and sequence number.
    pub fn new(time: SimTime, seq: EventSeq, event: E) -> Self {
        ScheduledEvent { time, seq, event }
    }

    /// The `(time, seq)` priority key.
    #[inline]
    pub fn key(&self) -> (SimTime, EventSeq) {
        (self.time, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = ScheduledEvent::new(SimTime::new(1.0), 5, ());
        let b = ScheduledEvent::new(SimTime::new(1.0), 6, ());
        let c = ScheduledEvent::new(SimTime::new(2.0), 1, ());
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }
}
