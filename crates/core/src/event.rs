//! Scheduled events and deterministic tie-breaking.

use crate::time::SimTime;

/// Monotone sequence number assigned at scheduling time.
///
/// Events with equal timestamps are delivered in scheduling order, which
/// makes every engine in this workspace deterministic: "repeating the same
/// simulation will always return the same simulation results" (§3).
pub type EventSeq = u64;

/// Sentinel parent for events scheduled from outside any handler (initial
/// events, replayed trace records). Matches `lsds_obs::NO_PARENT`.
pub const NO_PARENT: EventSeq = lsds_obs::NO_PARENT;

/// An event stamped with its due time and scheduling sequence number.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// Simulated time at which the event fires.
    pub time: SimTime,
    /// Scheduling sequence number; ties on `time` are broken by `seq`.
    pub seq: EventSeq,
    /// Seq of the event whose handler scheduled this one, or
    /// [`NO_PARENT`]. Threads causality through the engines so the
    /// tracing layer can reconstruct the event DAG.
    pub parent: EventSeq,
    /// The model-defined payload.
    pub event: E,
}

impl<E> ScheduledEvent<E> {
    /// Bundles a payload with its due time and sequence number, with no
    /// recorded cause (externally scheduled).
    pub fn new(time: SimTime, seq: EventSeq, event: E) -> Self {
        Self::with_parent(time, seq, NO_PARENT, event)
    }

    /// Bundles a payload with its due time, sequence number, and the seq
    /// of the event that caused it.
    pub fn with_parent(time: SimTime, seq: EventSeq, parent: EventSeq, event: E) -> Self {
        ScheduledEvent {
            time,
            seq,
            parent,
            event,
        }
    }

    /// The `(time, seq)` priority key.
    #[inline]
    pub fn key(&self) -> (SimTime, EventSeq) {
        (self.time, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_seq() {
        let a = ScheduledEvent::new(SimTime::new(1.0), 5, ());
        let b = ScheduledEvent::new(SimTime::new(1.0), 6, ());
        let c = ScheduledEvent::new(SimTime::new(2.0), 1, ());
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
    }
}
