//! Calendar queue (R. Brown, 1988) — amortized `O(1)` event list.
//!
//! Events are hashed by due time into an array of day "buckets" spanning one
//! "year"; dequeue walks the calendar from the current day, popping events
//! whose time falls inside the current year. The bucket count and width
//! adapt to the queue size and event-time density, giving amortized `O(1)`
//! insert/pop on well-behaved workloads — the `O(1)` structure the paper
//! contrasts with `O(log n)` heaps (§3). Skewed event-time distributions
//! degrade it, which is exactly the "they all tend to behave different
//! depending on various parameters" caveat experiment E2 demonstrates.

use super::EventQueue;
use crate::event::ScheduledEvent;
use crate::time::SimTime;
use std::collections::VecDeque;

/// Self-resizing calendar queue.
pub struct CalendarQueue<E> {
    /// One sorted deque per day; length always a power of two.
    buckets: Vec<VecDeque<ScheduledEvent<E>>>,
    /// Width of one day in simulated seconds.
    width: f64,
    /// Index of the day currently being dequeued.
    cursor: usize,
    /// Absolute day number the cursor is scanning. An event is due exactly
    /// when `day_of(t) <= day`, with `day_of` the same `t / width`
    /// truncation that buckets it — one rounding, shared by both sides.
    /// The alternative (a `bucket_top` bound accumulated with `+= width`)
    /// drifts: repeated addition of a width like 0.1 rounds differently
    /// from the division, and an event sitting exactly on a day boundary
    /// gets classified into the wrong day, breaking dequeue order.
    day: u64,
    /// Priority of the last dequeued event (dequeue lower bound).
    last_prio: f64,
    /// Total number of pending events.
    size: usize,
}

const INIT_BUCKETS: usize = 2;
const INIT_WIDTH: f64 = 1.0;
/// Resize sample size used to re-estimate bucket width (Brown's heuristic).
const SAMPLE: usize = 25;

impl<E> CalendarQueue<E> {
    /// Creates an empty calendar queue.
    pub fn new() -> Self {
        CalendarQueue {
            buckets: (0..INIT_BUCKETS).map(|_| VecDeque::new()).collect(),
            width: INIT_WIDTH,
            cursor: 0,
            day: 0,
            last_prio: 0.0,
            size: 0,
        }
    }

    /// Absolute day an event time belongs to — the single rounding that
    /// both bucketing and dueness checks share.
    #[inline]
    fn day_of(&self, t: f64) -> u64 {
        (t / self.width) as u64
    }

    #[inline]
    fn bucket_of(&self, t: f64) -> usize {
        (self.day_of(t) % self.buckets.len() as u64) as usize
    }

    /// Diagnostic: (nbuckets, width, max bucket len, nonempty buckets).
    pub fn debug_shape(&self) -> (usize, f64, usize, usize) {
        let maxb = self.buckets.iter().map(|b| b.len()).max().unwrap_or(0);
        let ne = self.buckets.iter().filter(|b| !b.is_empty()).count();
        (self.buckets.len(), self.width, maxb, ne)
    }

    /// Points the dequeue cursor at the day containing priority `t`.
    fn seek(&mut self, t: f64) {
        self.day = self.day_of(t);
        self.cursor = (self.day % self.buckets.len() as u64) as usize;
        self.last_prio = t;
    }

    /// Re-estimates the day width from a sample of the earliest events.
    fn estimate_width(&mut self) -> f64 {
        if self.size < 2 {
            return INIT_WIDTH;
        }
        // Collect the SAMPLE earliest event times: buckets are sorted, so
        // the union of each bucket's first SAMPLE entries contains the
        // global SAMPLE minima exactly. (Sampling fewer per bucket is a
        // trap: a transiently too-wide calendar concentrates events in a
        // handful of buckets, a sparse head sample then overestimates the
        // gaps, and the oversized width becomes self-reinforcing.)
        let mut times: Vec<f64> = self
            .buckets
            .iter()
            .flat_map(|b| b.iter().take(SAMPLE).map(|ev| ev.time.seconds()))
            .collect();
        times.sort_by(f64::total_cmp);
        times.truncate(SAMPLE);
        if times.len() < 2 {
            return self.width;
        }
        let span = times[times.len() - 1] - times[0];
        let avg_gap = span / (times.len() - 1) as f64;
        if avg_gap <= 0.0 || !avg_gap.is_finite() {
            self.width
        } else {
            3.0 * avg_gap
        }
    }

    fn resize(&mut self, new_len: usize) {
        let new_width = self.estimate_width();
        let old = std::mem::take(&mut self.buckets);
        self.width = new_width;
        self.buckets = (0..new_len).map(|_| VecDeque::new()).collect();
        let mut min_key: Option<(SimTime, u64)> = None;
        for b in old {
            for ev in b {
                if min_key.is_none_or(|k| ev.key() < k) {
                    min_key = Some(ev.key());
                }
                let i = self.bucket_of(ev.time.seconds());
                insert_sorted(&mut self.buckets[i], ev);
            }
        }
        if let Some((t, _)) = min_key {
            self.seek(t.seconds());
        }
    }

    /// Locates the globally minimal event (used when a full-year scan finds
    /// nothing in the current year — the "direct search" of Brown's paper).
    fn direct_search_min(&self) -> Option<(SimTime, u64)> {
        self.buckets
            .iter()
            .filter_map(|b| b.front().map(|ev| ev.key()))
            .min()
    }
}

fn insert_sorted<E>(bucket: &mut VecDeque<ScheduledEvent<E>>, ev: ScheduledEvent<E>) {
    let pos = bucket.partition_point(|x| x.key() <= ev.key());
    bucket.insert(pos, ev);
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn insert(&mut self, ev: ScheduledEvent<E>) {
        let t = ev.time.seconds();
        let i = self.bucket_of(t);
        insert_sorted(&mut self.buckets[i], ev);
        self.size += 1;
        if t < self.last_prio {
            // earlier than the dequeue point: rewind the cursor
            self.seek(t);
        }
        if self.size > 2 * self.buckets.len() {
            let n = self.buckets.len() * 2;
            self.resize(n);
        }
    }

    fn pop_min(&mut self) -> Option<ScheduledEvent<E>> {
        if self.size == 0 {
            return None;
        }
        let n = self.buckets.len();
        for _ in 0..n {
            let due = self.buckets[self.cursor]
                .front()
                .is_some_and(|first| self.day_of(first.time.seconds()) <= self.day);
            if due {
                let Some(ev) = self.buckets[self.cursor].pop_front() else {
                    debug_assert!(false, "due bucket head vanished");
                    return None;
                };
                self.last_prio = ev.time.seconds();
                self.size -= 1;
                if self.size > 0
                    && self.size < self.buckets.len() / 2
                    && self.buckets.len() > INIT_BUCKETS
                {
                    let n = (self.buckets.len() / 2).max(INIT_BUCKETS);
                    self.resize(n);
                }
                return Some(ev);
            }
            self.day += 1;
            self.cursor = (self.day % n as u64) as usize;
        }
        // Nothing due this year: jump straight to the global minimum.
        let Some((t, _)) = self.direct_search_min() else {
            debug_assert!(false, "size > 0 but no events");
            return None;
        };
        self.seek(t.seconds());
        // The global minimum has time `t`, and every event with time `t`
        // hashes to the cursor's bucket, whose head is its `(time, seq)`
        // minimum — so the head of the cursor bucket is the global minimum.
        let bucket = &mut self.buckets[self.cursor];
        debug_assert_eq!(bucket.front().map(|ev| ev.time), Some(t));
        let Some(ev) = bucket.pop_front() else {
            debug_assert!(false, "cursor bucket head vanished after seek");
            return None;
        };
        self.last_prio = ev.time.seconds();
        self.size -= 1;
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.size == 0 {
            return None;
        }
        // Fast path: earliest event in the cursor's day of this year.
        let bucket = &self.buckets[self.cursor];
        if let Some(first) = bucket.front() {
            if self.day_of(first.time.seconds()) <= self.day {
                return Some(first.time);
            }
        }
        self.direct_search_min().map(|(t, _)| t)
    }

    fn len(&self) -> usize {
        self.size
    }

    fn name(&self) -> &'static str {
        "calendar"
    }
}

#[cfg(test)]
mod tests {
    use super::super::conformance;
    use super::*;
    use lsds_stats::SimRng;

    #[test]
    fn fifo_same_time() {
        conformance::fifo_within_same_time(CalendarQueue::new());
    }

    #[test]
    fn ordered() {
        conformance::ordered_output(CalendarQueue::new(), 5000, 21);
    }

    #[test]
    fn hold() {
        conformance::interleaved_hold_model(CalendarQueue::new(), 22);
    }

    #[test]
    fn peek() {
        conformance::peek_agrees_with_pop(CalendarQueue::new(), 23);
    }

    #[test]
    fn empty() {
        conformance::empty_behaviour(CalendarQueue::<u32>::new());
    }

    #[test]
    fn clustered() {
        conformance::clustered_times(CalendarQueue::new(), 24);
    }

    #[test]
    fn sparse_far_future_events() {
        // events many "years" apart exercise the direct-search path
        let mut q = CalendarQueue::new();
        for (s, t) in [(0u64, 1.0e6), (1, 3.0), (2, 5.0e9), (3, 7.0)] {
            q.insert(ScheduledEvent::new(SimTime::new(t), s, s));
        }
        assert_eq!(q.pop_min().unwrap().event, 1);
        assert_eq!(q.pop_min().unwrap().event, 3);
        assert_eq!(q.pop_min().unwrap().event, 0);
        assert_eq!(q.pop_min().unwrap().event, 2);
        assert!(q.pop_min().is_none());
    }

    #[test]
    fn grows_and_shrinks() {
        let mut q = CalendarQueue::new();
        let mut rng = SimRng::new(7);
        for s in 0..10_000u64 {
            q.insert(ScheduledEvent::new(
                SimTime::new(rng.next_f64() * 100.0),
                s,
                s,
            ));
        }
        assert!(q.buckets.len() >= 1024, "should have grown");
        let mut last = SimTime::ZERO;
        for _ in 0..9_990 {
            let ev = q.pop_min().unwrap();
            assert!(ev.time >= last);
            last = ev.time;
        }
        assert!(
            q.buckets.len() <= 64,
            "should have shrunk, {} buckets",
            q.buckets.len()
        );
        assert_eq!(q.len(), 10);
    }

    impl<E> CalendarQueue<E> {
        /// Test-only: pin the calendar shape so a test can exercise a
        /// specific width without the adaptive resizing interfering.
        fn force_shape(&mut self, width: f64, nbuckets: usize) {
            assert_eq!(self.size, 0, "force_shape requires an empty queue");
            self.width = width;
            self.buckets = (0..nbuckets).map(|_| VecDeque::new()).collect();
            self.cursor = 0;
            self.day = 0;
            self.last_prio = 0.0;
        }
    }

    /// Regression test for float drift at day boundaries: 0.1 is not
    /// exactly representable, so a `bucket_top += width` upper bound (or
    /// any bound computed separately from the bucketing division) rounds
    /// differently from `t / width`, and events sitting exactly on day
    /// boundaries get classified into the wrong day. The fixed queue
    /// decides dueness with the *same* `t / width` truncation that chose
    /// the bucket, keeping boundary events ordered across thousands of
    /// days.
    #[test]
    fn boundary_times_with_inexact_width_stay_ordered() {
        let mut q = CalendarQueue::new();
        q.force_shape(0.1, 1024);
        let mut rng = SimRng::new(41);
        // sparse events exactly on day boundaries, spanning many years
        let mut times: Vec<f64> = (0..900u64).map(|k| (k * 13) as f64 * 0.1).collect();
        rng.shuffle(&mut times);
        for (s, &t) in times.iter().enumerate() {
            q.insert(ScheduledEvent::new(SimTime::new(t), s as u64, s as u64));
        }
        let mut popped = Vec::with_capacity(times.len());
        while let Some(ev) = q.pop_min() {
            popped.push(ev.time.seconds());
        }
        times.sort_by(f64::total_cmp);
        assert_eq!(popped, times);
    }

    #[test]
    fn insert_earlier_than_cursor() {
        let mut q = CalendarQueue::new();
        for s in 0..100u64 {
            q.insert(ScheduledEvent::new(SimTime::new(50.0 + s as f64), s, s));
        }
        // consume some, then insert an earlier event
        for _ in 0..10 {
            q.pop_min();
        }
        q.insert(ScheduledEvent::new(SimTime::new(55.0), 1000, 999));
        let ev = q.pop_min().unwrap();
        assert_eq!(ev.event, 999);
    }
}
